/**
 * @file
 * Transaction command vocabulary of the 6xx memory bus.
 *
 * These are the commands the MemorIES address-filter FPGA sees when it
 * snoops the host bus. The set is modelled on the PowerPC 6xx bus
 * commands of the S70-class machines: cacheable reads (with or without
 * intent to modify), ownership claims, write-backs, and the non-memory
 * operations (I/O, interrupts, synchronisation) the filter discards.
 */

#ifndef MEMORIES_BUS_BUSOP_HH
#define MEMORIES_BUS_BUSOP_HH

#include <cstdint>
#include <string_view>

namespace memories::bus
{

/** Command type of one 6xx bus transaction. */
enum class BusOp : std::uint8_t
{
    /** Cacheable data read (load miss). */
    Read = 0,
    /** Instruction fetch read. */
    ReadIfetch,
    /** Read With Intent To Modify (store miss fetching exclusive). */
    Rwitm,
    /** Data Claim: upgrade S->M without a data transfer. */
    DClaim,
    /** Cast-out of a modified line (write-back to memory). */
    WriteBack,
    /** Write with kill (full-line DMA-style write, invalidating). */
    WriteKill,
    /** Cache-management flush (dcbf-like). */
    Flush,
    /** Cache-management clean (dcbst-like). */
    Clean,
    /** Line invalidate broadcast (dcbi/kill-like). */
    Kill,
    /** I/O-space register read: filtered by the board. */
    IoRead,
    /** I/O-space register write: filtered by the board. */
    IoWrite,
    /** Interrupt-related bus operation: filtered by the board. */
    Interrupt,
    /** Memory-barrier operation (sync/eieio): filtered by the board. */
    Sync,

    NumOps
};

/** Number of distinct bus commands. */
inline constexpr std::size_t numBusOps =
    static_cast<std::size_t>(BusOp::NumOps);

/** True for commands that reference cacheable memory. */
constexpr bool
isMemoryOp(BusOp op)
{
    switch (op) {
      case BusOp::Read:
      case BusOp::ReadIfetch:
      case BusOp::Rwitm:
      case BusOp::DClaim:
      case BusOp::WriteBack:
      case BusOp::WriteKill:
      case BusOp::Flush:
      case BusOp::Clean:
      case BusOp::Kill:
        return true;
      default:
        return false;
    }
}

/** True for commands that read data from the memory system. */
constexpr bool
isReadOp(BusOp op)
{
    return op == BusOp::Read || op == BusOp::ReadIfetch ||
           op == BusOp::Rwitm;
}

/** True for commands that (will) modify the line. */
constexpr bool
isWriteIntentOp(BusOp op)
{
    return op == BusOp::Rwitm || op == BusOp::DClaim ||
           op == BusOp::WriteKill;
}

/** True for commands the address filter discards (non-emulation ops). */
constexpr bool
isFilteredOp(BusOp op)
{
    return !isMemoryOp(op);
}

/** Short mnemonic for tables and traces. */
std::string_view busOpName(BusOp op);

/** Parse a mnemonic produced by busOpName(); fatal() on unknown text. */
BusOp busOpFromName(std::string_view name);

} // namespace memories::bus

#endif // MEMORIES_BUS_BUSOP_HH
