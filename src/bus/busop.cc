#include "bus/busop.hh"

#include <array>

#include "common/logging.hh"

namespace memories::bus
{

namespace
{

constexpr std::array<std::string_view, numBusOps> opNames = {
    "READ",   "IFETCH",  "RWITM", "DCLAIM", "WB",   "WKILL", "FLUSH",
    "CLEAN",  "KILL",    "IORD",  "IOWR",   "INTR", "SYNC",
};

} // namespace

std::string_view
busOpName(BusOp op)
{
    auto idx = static_cast<std::size_t>(op);
    if (idx >= numBusOps)
        MEMORIES_PANIC("bad BusOp ", idx);
    return opNames[idx];
}

BusOp
busOpFromName(std::string_view name)
{
    for (std::size_t i = 0; i < numBusOps; ++i) {
        if (opNames[i] == name)
            return static_cast<BusOp>(i);
    }
    fatal("unknown bus op mnemonic '", std::string(name), "'");
}

} // namespace memories::bus
