/**
 * @file
 * A split-transaction snooping memory bus in the style of the PowerPC 6xx
 * bus used by RS/6000 S70-class servers.
 *
 * The bus is the seam between the host machine (which issues
 * transactions) and every snooping agent, including the MemorIES board.
 * Agents attach as BusSnooper devices; each transaction is broadcast to
 * all of them and their snoop responses are combined with 6xx priority
 * (Retry > Modified > Shared > None).
 *
 * Timing model: one address tenure occupies the address bus for one
 * cycle (the bus is pipelined and split-transaction). The issuing side
 * advances bus time explicitly with tick()/advanceTo(), so utilization
 * (tenures / elapsed cycles) is under the caller's control — the paper's
 * case studies run at 2-20% utilization.
 */

#ifndef MEMORIES_BUS_BUS6XX_HH
#define MEMORIES_BUS_BUS6XX_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/transaction.hh"
#include "common/types.hh"
#include "telemetry/sampler.hh"
#include "trace/lifecycle.hh"

namespace memories::bus
{

/** Interface every bus agent implements to observe address tenures. */
class BusSnooper
{
  public:
    virtual ~BusSnooper() = default;

    /**
     * Observe one transaction and drive a snoop response.
     * Passive agents (like the MemorIES board in normal operation)
     * return SnoopResponse::None; they may return Retry only under
     * buffer overflow.
     */
    virtual SnoopResponse snoop(const BusTransaction &txn) = 0;

    /** Name for diagnostics. */
    virtual std::string snooperName() const = 0;
};

/**
 * Second-phase interface: sees each tenure together with its combined
 * snoop response (the 6xx response window). Passive monitors like the
 * MemorIES board use this to discard tenures that were retried and will
 * be replayed.
 */
class BusObserver
{
  public:
    virtual ~BusObserver() = default;

    /** Called once per tenure, after all snoop responses combined. */
    virtual void observeResult(const BusTransaction &txn,
                               SnoopResponse combined) = 0;
};

/** Aggregate statistics the bus itself maintains. */
struct BusStats
{
    std::uint64_t tenures = 0;        //!< address tenures issued
    std::uint64_t memoryOps = 0;      //!< cacheable-memory tenures
    std::uint64_t filteredOps = 0;    //!< I/O, interrupt, sync tenures
    std::uint64_t retries = 0;        //!< tenures answered with Retry
    std::uint64_t sharedResponses = 0;
    std::uint64_t modifiedResponses = 0;
    /** Data-bus beats consumed by data-bearing transfers. */
    std::uint64_t dataCycles = 0;

    /** Mean address-bus utilization over elapsed cycles. */
    double utilization(Cycle elapsed) const;

    /**
     * Mean data-bus utilization over elapsed cycles — the figure the
     * paper's "2% to 20%" measurements correspond to (a 128B transfer
     * occupies the data bus for several beats while the address bus is
     * busy one cycle).
     */
    double dataUtilization(Cycle elapsed) const;
};

/** The host machine's snooping memory bus. */
class Bus6xx
{
  public:
    Bus6xx() = default;

    /** Attach a snooping agent. The caller retains ownership. */
    void attach(BusSnooper *agent);

    /** Detach a previously attached agent (no-op if absent). */
    void detach(BusSnooper *agent);

    /** Attach a second-phase observer. The caller retains ownership. */
    void attachObserver(BusObserver *observer);

    /** Detach an observer (no-op if absent). */
    void detachObserver(BusObserver *observer);

    /**
     * Broadcast one transaction at the current bus cycle.
     *
     * The transaction's cycle field is stamped by the bus. Returns the
     * combined snoop response; on Retry the tenure still happened (and
     * counts toward utilization) but the requester must re-issue.
     */
    SnoopResponse issue(BusTransaction txn);

    /** Advance bus time by @p cycles idle cycles. */
    void tick(Cycle cycles)
    {
        now_ += cycles;
        if (sampler_)
            sampler_->advanceTo(now_);
    }

    /** Advance bus time to an absolute cycle (no-op if in the past). */
    void advanceTo(Cycle cycle);

    /** Current bus cycle. */
    Cycle now() const { return now_; }

    const BusStats &stats() const { return stats_; }

    /** Reset statistics (time keeps running). */
    void clearStats() { stats_ = BusStats{}; }

    /** Number of attached snoopers. */
    std::size_t snooperCount() const { return snoopers_.size(); }

    /**
     * Number of attached second-phase observers. Observers are the
     * bus's tap hook: they see every tenure with its combined response
     * but can never drive one, so attaching an observer (e.g. an
     * ExperimentFleet tap) cannot perturb the host stream.
     */
    std::size_t observerCount() const { return observers_.size(); }

    /**
     * Width of the data bus in bytes per beat (6xx: 16B). Data-bearing
     * transactions consume size/width data beats, tracked in
     * BusStats::dataCycles. The address bus stays one cycle per tenure
     * (split-transaction).
     */
    void setDataBusBytesPerBeat(unsigned bytes);
    unsigned dataBusBytesPerBeat() const { return dataBeatBytes_; }

    /**
     * Attach a telemetry sampler. The bus becomes the sampler's clock
     * (every tick/advance drives window closes on emulated bus time,
     * never wall clock) and registers its own counters — tenures,
     * memory ops, retries, data-bus cycles — plus a per-window
     * address-bus utilization histogram. The sampler must outlive the
     * bus or be detached first. Costs one null-check per tick when not
     * attached.
     */
    void attachSampler(telemetry::Sampler &sampler);

    /** Stop driving the sampler (registered sources stay registered). */
    void detachSampler() { sampler_ = nullptr; }

    /**
     * Attach a flight recorder. Every tenure then emits lifecycle
     * events — BusIssue, one SnoopReply per attached snooper, and the
     * Combine — tagged with the tenure's trace id, and a combined Retry
     * response raises a BusRetry anomaly. Costs one null-check per
     * issue when detached. The recorder must outlive the bus or be
     * detached first.
     */
    void attachFlightRecorder(trace::FlightRecorder &recorder)
    {
        recorder_ = &recorder;
    }

    /** Stop emitting lifecycle events. */
    void detachFlightRecorder() { recorder_ = nullptr; }

    /** Currently attached flight recorder (nullptr when detached). */
    trace::FlightRecorder *flightRecorder() const { return recorder_; }

  private:
    std::vector<BusSnooper *> snoopers_;
    std::vector<BusObserver *> observers_;
    Cycle now_ = 0;
    unsigned dataBeatBytes_ = 16;
    BusStats stats_;
    telemetry::Sampler *sampler_ = nullptr;
    /** Per-window address-bus utilization in percent (0-100+). */
    std::unique_ptr<telemetry::Histogram> utilizationHist_;
    trace::FlightRecorder *recorder_ = nullptr;
    /** Next trace id to stamp (ids are 1-based; 0 = never issued). */
    std::uint32_t nextTraceId_ = 1;
};

} // namespace memories::bus

#endif // MEMORIES_BUS_BUS6XX_HH
