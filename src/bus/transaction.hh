/**
 * @file
 * One transaction as observed on the 6xx bus, and the snoop responses
 * other bus agents can drive in reply.
 */

#ifndef MEMORIES_BUS_TRANSACTION_HH
#define MEMORIES_BUS_TRANSACTION_HH

#include <cstdint>

#include "bus/busop.hh"
#include "checkpoint/codec.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace memories::bus
{

/**
 * Snoop response lines of the 6xx bus, in increasing priority order.
 * When several agents respond, the bus presents the strongest response.
 */
enum class SnoopResponse : std::uint8_t
{
    /** No agent holds the line. */
    None = 0,
    /** Some agent holds a clean/shared copy. */
    Shared,
    /** Some agent holds the line modified and will intervene. */
    Modified,
    /** An agent cannot service the snoop now: requester must retry. */
    Retry,
};

/** Short mnemonic for a snoop response. */
constexpr const char *
snoopResponseName(SnoopResponse r)
{
    switch (r) {
      case SnoopResponse::None:     return "none";
      case SnoopResponse::Shared:   return "shared";
      case SnoopResponse::Modified: return "modified";
      case SnoopResponse::Retry:    return "retry";
    }
    return "?";
}

/** Combine two snoop responses: the stronger (higher priority) wins. */
constexpr SnoopResponse
combineSnoop(SnoopResponse a, SnoopResponse b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
               ? a : b;
}

/** One address-bus tenure on the 6xx bus. */
struct BusTransaction
{
    /** Physical address (byte granularity; the board aligns to lines). */
    Addr addr = 0;
    /** Bus cycle at which the address tenure occurred. */
    Cycle cycle = 0;
    /** Command. */
    BusOp op = BusOp::Read;
    /** Bus ID of the requesting processor. */
    CpuId cpu = 0;
    /** Transfer size in bytes (host L2 line for cacheable ops). */
    std::uint16_t size = 128;
    /** True when this tenure is a retry replay of an earlier one. */
    bool isRetryReplay = false;
    /**
     * Stable per-tenure trace id, stamped by Bus6xx::issue (1-based; 0
     * means "never issued"). Follows the tenure through capture,
     * transaction buffers and fleet broadcast so lifecycle events from
     * every stage of its life can be correlated (trace/lifecycle.hh).
     * A retry replay gets a fresh id; the replay's BusIssue event
     * carries isRetryReplay so the two tenures remain linkable by
     * address. Last so brace-initialized literals stay unchanged.
     */
    std::uint32_t traceId = 0;
};

/** StateCodec: append one tenure to @p sink (fixed 25-byte layout). */
inline void
saveTransaction(ckpt::Sink &sink, const BusTransaction &txn)
{
    sink.u64(txn.addr);
    sink.u64(txn.cycle);
    sink.u8(static_cast<std::uint8_t>(txn.op));
    sink.u8(txn.cpu);
    sink.u16(txn.size);
    sink.u8(txn.isRetryReplay ? 1 : 0);
    sink.u32(txn.traceId);
}

/** StateCodec: decode a tenure written by saveTransaction(); fatal()
 *  on an unknown bus op or malformed flag. */
inline BusTransaction
decodeTransaction(ckpt::Source &source)
{
    BusTransaction txn;
    txn.addr = source.u64();
    txn.cycle = source.u64();
    const std::uint8_t op = source.u8();
    if (op >= numBusOps)
        fatal(source.context(), ": unknown bus op ", unsigned{op});
    txn.op = static_cast<BusOp>(op);
    txn.cpu = source.u8();
    txn.size = source.u16();
    const std::uint8_t replay = source.u8();
    if (replay > 1)
        fatal(source.context(), ": retry-replay flag must be 0 or 1");
    txn.isRetryReplay = replay != 0;
    txn.traceId = source.u32();
    return txn;
}

} // namespace memories::bus

#endif // MEMORIES_BUS_TRANSACTION_HH
