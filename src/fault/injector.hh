/**
 * @file
 * The fault injector: a FaultPlan executed against a tenure stream.
 *
 * One injector serves one board (or one live bus) and owns one seeded
 * generator, so every decision is a pure function of (plan, seed,
 * tenure stream) — same inputs, byte-identical fault sequence. It
 * plugs into the existing attach points:
 *
 *  - On a live bus it is just another BusSnooper: SpuriousRetry specs
 *    make it post Retry responses for real tenures (never for replays,
 *    so an unlucky seed cannot livelock the host).
 *  - A MemoriesBoard holding an injector calls onTenure() on every
 *    snooped/fed tenure — DropReply makes the board miss the tenure,
 *    DelayReply shifts its arrival cycle, AddressFlip corrupts the
 *    snooped address — and onCommit() as a tenure enters the
 *    transaction buffer, where TagFlip, SlotLoss, and RetirementStall
 *    fire (slot loss lands *after* the snoop-time capacity check, so
 *    it exercises the board's lost-in-flight recovery path the
 *    hardware could never test).
 *
 * An empty plan draws nothing and mutates nothing: a board with a
 * null-plan injector attached is bit-exact to one without (enforced by
 * tests/fault/null_equivalence_test.cc).
 */

#ifndef MEMORIES_FAULT_INJECTOR_HH
#define MEMORIES_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "bus/bus6xx.hh"
#include "checkpoint/codec.hh"
#include "common/counters.hh"
#include "common/random.hh"
#include "fault/faultplan.hh"
#include "trace/lifecycle.hh"

namespace memories::fault
{

/** Executes one FaultPlan deterministically. */
class FaultInjector final : public bus::BusSnooper
{
  public:
    explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 1);

    /** Live-bus side: spurious retries (attach via Bus6xx::attach). */
    bus::SnoopResponse snoop(const bus::BusTransaction &txn) override;
    std::string snooperName() const override
    {
        return "fault-injector";
    }

    /** What the stream-side faults did to one observed tenure. */
    struct StreamFaults
    {
        /** DropReply fired: the board never sees this tenure. */
        bool drop = false;
    };

    /**
     * Board hook, one call per snooped/fed memory tenure. May mutate
     * @p txn in place (AddressFlip, DelayReply); returns the drop
     * decision.
     */
    StreamFaults onTenure(bus::BusTransaction &txn);

    /** What the commit-time faults ask the board to apply. */
    struct CommitFaults
    {
        /** RetirementStall: no drain credits until this bus cycle. */
        Cycle stallUntil = 0;
        bool stall = false;
        /** SlotLoss: lose this many buffer slots until slotsUntil. */
        std::size_t slots = 0;
        Cycle slotsUntil = 0;
        bool slotLoss = false;
        /** TagFlip: corrupt the current line's tag state at a node. */
        std::uint8_t tagNode = 0;
        unsigned tagBit = 0;
        bool tagFlip = false;
    };

    /** Board hook, one call per tenure entering the txn buffer. */
    CommitFaults onCommit(const bus::BusTransaction &txn);

    /**
     * Record a FaultInjected lifecycle event (plus a FaultInjection
     * anomaly) for every fault that fires. A board attaching both a
     * recorder and an injector forwards the recorder here itself.
     */
    void setFlightRecorder(trace::FlightRecorder *recorder,
                           std::uint8_t board = trace::lifecycleNoOwner)
    {
        recorder_ = recorder;
        boardId_ = board;
    }

    /**
     * Batch-journaling override: while set, fault events and
     * anomalies go to these sinks instead of the recorder, so a board
     * replaying a batched journal can splice them into the recorder
     * in admission order (MemoriesBoard::feedBatch). Pass two empty
     * functions to clear.
     */
    void setEventSinks(
        std::function<void(const trace::LifecycleEvent &)> event,
        std::function<void(trace::AnomalyKind, Cycle, std::uint32_t)>
            anomaly)
    {
        eventSink_ = std::move(event);
        anomalySink_ = std::move(anomaly);
    }

    const FaultPlan &plan() const { return plan_; }
    std::uint64_t seed() const { return seed_; }

    /** Injection counters, one "faults.<kind>" per fault kind. */
    const CounterBank &counters() const { return counters_; }

    /** Faults of @p kind injected so far. */
    std::uint64_t injected(FaultKind kind) const
    {
        return counters_.value(
            hKind_[static_cast<std::size_t>(kind)]);
    }

    /** Total faults injected across every kind. */
    std::uint64_t totalInjected() const;

    /** Register the injection counters with a telemetry sampler. */
    void attachTelemetry(telemetry::Sampler &sampler,
                         const std::string &prefix = "faults");

    /** One-line-per-kind console rendering ("fault status"). */
    std::string dumpStats() const;

    /**
     * StateCodec: append the injector's dynamic state — seed and plan
     * identity (for cross-checking at restore), the Bernoulli RNG
     * stream position, the three opportunity counts, and the injection
     * counters — to @p sink. The plan itself is not serialized; a
     * restore requires the same plan to be attached and cross-checks
     * it by hash.
     */
    void saveState(ckpt::Sink &sink) const;

    /** Decoded-but-unapplied injector state (see decodeState). */
    struct State
    {
        std::array<std::uint64_t, 4> rng{};
        std::uint64_t busTenures = 0;
        std::uint64_t streamTenures = 0;
        std::uint64_t commits = 0;
        std::vector<std::uint64_t> counters;
    };

    /**
     * Validate-only half of loadState: fatal() when the saved seed or
     * plan hash differs from this injector's (the checkpointed fault
     * schedule would not resume deterministically), no mutation.
     */
    State decodeState(ckpt::Source &source) const;

    /** Apply a state staged by decodeState(). */
    void restoreState(const State &state);

    /** StateCodec: decodeState + restoreState in one step. */
    void loadState(ckpt::Source &source) { restoreState(decodeState(source)); }

  private:
    /**
     * Should @p spec fire at opportunity @p index (1-based count of
     * the relevant hook's calls)? Scheduled specs compare the index;
     * probabilistic specs consume one Bernoulli draw — every
     * opportunity of every probabilistic spec draws exactly once, in
     * plan order, so the stream of draws is independent of what fired.
     */
    bool fires(const FaultSpec &spec, std::uint64_t index);

    /** Count the fault and emit its lifecycle/anomaly events. */
    void note(const FaultSpec &spec, const bus::BusTransaction &txn);

    FaultPlan plan_;
    std::uint64_t seed_;
    Rng rng_;
    std::uint64_t busTenures_ = 0;    //!< snoop() opportunities
    std::uint64_t streamTenures_ = 0; //!< onTenure() opportunities
    std::uint64_t commits_ = 0;       //!< onCommit() opportunities

    CounterBank counters_;
    CounterBank::Handle hKind_[numFaultKinds];

    trace::FlightRecorder *recorder_ = nullptr;
    std::uint8_t boardId_ = trace::lifecycleNoOwner;
    std::function<void(const trace::LifecycleEvent &)> eventSink_;
    std::function<void(trace::AnomalyKind, Cycle, std::uint32_t)>
        anomalySink_;
};

} // namespace memories::fault

#endif // MEMORIES_FAULT_INJECTOR_HH
