/**
 * @file
 * Deterministic fault plans: what to break, when, and how often.
 *
 * The paper's board had exactly one failure behaviour — a bus Retry on
 * transaction-buffer overflow (section 3.3) — and it was "never
 * observed in practice", so the hardware's degraded paths went
 * essentially unexercised. The software reproduction can do what the
 * lab could not: inject the failures on purpose, reproducibly. A
 * FaultPlan is a list of FaultSpecs, each either *scheduled* (fires at
 * the Nth opportunity of its hook) or *probabilistic* (an independent
 * Bernoulli draw per opportunity from one seeded generator), so the
 * same plan and seed replay the exact same fault sequence against the
 * same tenure stream.
 *
 * Plans are plain text, one fault per line ('#' starts a comment):
 *
 *     retry prob 0.01            # spurious snooper retries on the bus
 *     dropreply prob 0.005       # board misses a snooped tenure
 *     delayreply prob 0.01 cycles 50
 *     addrflip prob 0.001 bit 7  # corrupt the snooped address stream
 *     tagflip at 5000 node 0 bit 3
 *     slotloss at 2000 slots 128 cycles 5000
 *     stall at 3000 cycles 2000  # SDRAM retirement stall
 */

#ifndef MEMORIES_FAULT_FAULTPLAN_HH
#define MEMORIES_FAULT_FAULTPLAN_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace memories::fault
{

/** One way the emulation fabric can misbehave. */
enum class FaultKind : std::uint8_t
{
    /** A snooper posts a spurious Retry for a live bus tenure. */
    SpuriousRetry = 0,
    /** The board fails to observe a snooped tenure entirely. */
    DropReply,
    /** The board observes a tenure late (its bus cycle is delayed). */
    DelayReply,
    /** One address bit flips on the snooped stream. */
    AddressFlip,
    /** A tag-SRAM bit flips in one node's directory (parity-checked). */
    TagFlip,
    /** The transaction buffer transiently loses slots. */
    SlotLoss,
    /** The SDRAM drain earns no retirement credits for a while. */
    RetirementStall,

    NumKinds
};

/** Number of distinct fault kinds. */
inline constexpr std::size_t numFaultKinds =
    static_cast<std::size_t>(FaultKind::NumKinds);

/** Plan-file mnemonic for a fault kind ("retry", "tagflip", ...). */
std::string_view faultKindName(FaultKind kind);

/** One scheduled or probabilistic fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::SpuriousRetry;
    /**
     * Fire exactly once, at the Nth opportunity of this fault's hook
     * (1-based: the Nth bus tenure snooped, board tenure observed, or
     * commit, depending on the kind). 0 means not scheduled.
     */
    std::uint64_t atTenure = 0;
    /** Per-opportunity Bernoulli probability (used when atTenure==0). */
    double probability = 0.0;
    /** Bit to flip (AddressFlip: address bit; TagFlip: state bit). */
    unsigned bit = 0;
    /** Duration/delay in bus cycles (delay, slot loss, stall). */
    Cycle cycles = 0;
    /** Buffer slots lost (SlotLoss). */
    std::size_t slots = 0;
    /** Target node-controller index (TagFlip; wraps modulo nodes). */
    std::uint8_t node = 0;

    /** One-line plan-file rendering of this spec. */
    std::string describe() const;

    bool operator==(const FaultSpec &) const = default;
};

/** An ordered list of faults; the unit of arming and of determinism. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }
    std::size_t size() const { return faults.size(); }

    /**
     * Parse the text plan format (see file comment). fatal() with the
     * offending line on any syntax or range error.
     */
    static FaultPlan parse(std::string_view text);

    /** Parse a plan file from disk; fatal() if unreadable. */
    static FaultPlan load(const std::string &path);

    /** Render back to the plan-file format (round-trips via parse). */
    std::string describe() const;

    bool operator==(const FaultPlan &) const = default;
};

} // namespace memories::fault

#endif // MEMORIES_FAULT_FAULTPLAN_HH
