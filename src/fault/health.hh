/**
 * @file
 * Per-board health state machine: graceful degradation instead of
 * silent loss.
 *
 * The hardware board had one answer to overload — post a bus Retry and
 * hope (section 3.3). A software board can do better: under sustained
 * buffer pressure it *degrades* to set-sampling (keeping a statistically
 * useful 1-in-2^shift sample of tenures instead of dropping an
 * unprincipled tail), a retry-storm watchdog applies bounded
 * exponential backoff (retry once, then shed 2^k tenures before
 * retrying again), and a board stuck in storms is *quarantined* — it
 * stops emulating until an operator resyncs its directories from a
 * healthy board via the checkpoint/restore path.
 *
 *          sustained pressure / overflow      storm limit
 *   Healthy ---------------------------> Degraded ------> Quarantined
 *      ^                                    |                  |
 *      +------- recoverWindow calm admits --+   resync() ------+
 *
 * The machine is pure bookkeeping: it never touches the buffer or the
 * bus itself; the board asks it what to do and applies the answer, so
 * every decision is deterministic in the tenure stream. Disabled
 * (the default) every query returns the pass-through answer and the
 * board behaves bit-exactly like one without a monitor.
 */

#ifndef MEMORIES_FAULT_HEALTH_HH
#define MEMORIES_FAULT_HEALTH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "checkpoint/codec.hh"
#include "common/types.hh"

namespace memories::fault
{

/** Tunables of the board health machine. All thresholds in tenures. */
struct HealthPolicy
{
    /** Off by default: an unconfigured board is bit-exact to PR 3. */
    bool enabled = false;
    /** Occupancy (percent of capacity) that counts as pressure. */
    unsigned degradeOccupancyPercent = 75;
    /** Consecutive pressured admits before Healthy -> Degraded. */
    unsigned degradeWindow = 64;
    /** Consecutive calm admits before Degraded -> Healthy. */
    unsigned recoverWindow = 4096;
    /** Set-sampling shift applied while Degraded (keep 1 in 2^shift). */
    unsigned degradedSamplingShift = 1;
    /** Max backoff exponent: shed at most 2^limit tenures per retry. */
    unsigned backoffLimit = 6;
    /** Retry storms before Degraded -> Quarantined (0 = never). */
    unsigned quarantineStorms = 8;
};

/** Where a board sits on the degradation ladder. */
enum class HealthState : std::uint8_t
{
    Healthy = 0,
    Degraded,
    Quarantined,
};

/** Mnemonic for a health state ("healthy", ...). */
std::string_view healthStateName(HealthState state);

/**
 * The bounded exponential-backoff step shared by the retry-storm
 * watchdog and the campaign scheduler: after @p attempt consecutive
 * failures, hold off for 2^min(attempt, limit) units of work (shed
 * tenures here, skipped scheduling rounds in src/campaign).
 */
inline std::uint64_t
backoffUnits(unsigned attempt, unsigned limit)
{
    return std::uint64_t{1} << (attempt < limit ? attempt : limit);
}

/** The watchdog's verdict when the transaction buffer is full. */
enum class OverflowAction : std::uint8_t
{
    /** Post the bus retry (live) / report the drop (fed), as today. */
    Retry = 0,
    /** Backoff: shed this tenure without retrying. */
    Shed,
};

/** Decision engine driven by the board's admit/overflow stream. */
class HealthMonitor
{
  public:
    HealthMonitor() = default;
    explicit HealthMonitor(const HealthPolicy &policy) : policy_(policy)
    {}

    const HealthPolicy &policy() const { return policy_; }
    bool enabled() const { return policy_.enabled; }
    HealthState state() const { return state_; }

    /**
     * Hook fired on every state change, synchronously, before the call
     * that caused it returns — the board's place to bump counters and
     * record HealthTransition lifecycle events.
     */
    using TransitionHook =
        std::function<void(HealthState from, HealthState to)>;
    void onTransition(TransitionHook hook) { hook_ = std::move(hook); }

    /**
     * Degraded-mode set sampling: true when @p addr (with lines of
     * 2^@p line_shift bytes) falls outside the retained 1-in-2^shift
     * sample and the tenure should be skipped. Always false unless
     * the board is Degraded.
     */
    bool sampledOut(Addr addr, unsigned line_shift) const
    {
        if (state_ != HealthState::Degraded)
            return false;
        const Addr mask =
            (Addr{1} << policy_.degradedSamplingShift) - 1;
        return ((addr >> line_shift) & mask) != 0;
    }

    /**
     * Feedback after a tenure cleared the capacity check: @p occupancy
     * of @p capacity slots were in use. Ends any retry storm and moves
     * the pressure/recovery windows.
     */
    void onAdmit(std::size_t occupancy, std::size_t capacity);

    /** The buffer is full: retry (pass-through) or shed (backoff)? */
    OverflowAction onOverflow();

    /**
     * Directories were resynced from a healthy board: return to
     * Healthy and restart every window.
     */
    void resync();

    /** One-line console rendering ("health status"). */
    std::string describe() const;

    /**
     * StateCodec: append the machine position (ladder state plus the
     * pressure/recovery/storm/backoff counters) to @p sink. The policy
     * itself is board configuration (fingerprinted in the checkpoint
     * header), so only the dynamic state is serialized.
     */
    void saveState(ckpt::Sink &sink) const;

    /** Decoded-but-unapplied monitor state (see decodeState). */
    struct State
    {
        HealthState state = HealthState::Healthy;
        unsigned pressured = 0;
        unsigned calm = 0;
        unsigned storms = 0;
        std::uint64_t shedRemaining = 0;
    };

    /** Validate-only half of loadState; fatal() on an unknown ladder
     *  state, no mutation. */
    State decodeState(ckpt::Source &source) const;

    /**
     * Apply a state staged by decodeState(). Sets the ladder position
     * directly — restoring a checkpoint resumes a run rather than
     * transitioning within one, so the transition hook does NOT fire.
     */
    void restoreState(const State &state);

    /** StateCodec: decodeState + restoreState in one step. */
    void loadState(ckpt::Source &source) { restoreState(decodeState(source)); }

  private:
    void moveTo(HealthState to);

    HealthPolicy policy_;
    HealthState state_ = HealthState::Healthy;
    unsigned pressured_ = 0;       //!< consecutive pressured admits
    unsigned calm_ = 0;            //!< consecutive calm admits
    unsigned storms_ = 0;          //!< retries since last admit
    std::uint64_t shedRemaining_ = 0; //!< backoff tenures left to shed
    TransitionHook hook_;
};

} // namespace memories::fault

#endif // MEMORIES_FAULT_HEALTH_HH
