#include "fault/health.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace memories::fault
{

std::string_view
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Healthy:     return "healthy";
      case HealthState::Degraded:    return "degraded";
      case HealthState::Quarantined: return "quarantined";
    }
    return "?";
}

void
HealthMonitor::moveTo(HealthState to)
{
    if (state_ == to)
        return;
    const HealthState from = state_;
    state_ = to;
    if (hook_)
        hook_(from, to);
}

void
HealthMonitor::onAdmit(std::size_t occupancy, std::size_t capacity)
{
    if (!policy_.enabled || state_ == HealthState::Quarantined)
        return;
    // A successful admit ends any retry storm.
    storms_ = 0;
    shedRemaining_ = 0;

    const bool pressured =
        occupancy * 100 >= capacity * policy_.degradeOccupancyPercent;
    if (state_ == HealthState::Healthy) {
        pressured_ = pressured ? pressured_ + 1 : 0;
        if (pressured_ >= policy_.degradeWindow) {
            pressured_ = 0;
            calm_ = 0;
            moveTo(HealthState::Degraded);
        }
    } else { // Degraded
        calm_ = pressured ? 0 : calm_ + 1;
        if (calm_ >= policy_.recoverWindow) {
            calm_ = 0;
            pressured_ = 0;
            moveTo(HealthState::Healthy);
        }
    }
}

OverflowAction
HealthMonitor::onOverflow()
{
    if (!policy_.enabled)
        return OverflowAction::Retry;
    if (state_ == HealthState::Quarantined)
        return OverflowAction::Shed;
    if (shedRemaining_ > 0) {
        --shedRemaining_;
        return OverflowAction::Shed;
    }
    ++storms_;
    // An overflow is conclusive pressure: degrade immediately rather
    // than waiting out the occupancy window.
    if (state_ == HealthState::Healthy) {
        pressured_ = 0;
        calm_ = 0;
        moveTo(HealthState::Degraded);
    }
    if (policy_.quarantineStorms != 0 &&
        storms_ >= policy_.quarantineStorms) {
        moveTo(HealthState::Quarantined);
        return OverflowAction::Shed;
    }
    shedRemaining_ = backoffUnits(storms_, policy_.backoffLimit);
    return OverflowAction::Retry;
}

void
HealthMonitor::resync()
{
    pressured_ = 0;
    calm_ = 0;
    storms_ = 0;
    shedRemaining_ = 0;
    moveTo(HealthState::Healthy);
}

void
HealthMonitor::saveState(ckpt::Sink &sink) const
{
    sink.u8(static_cast<std::uint8_t>(state_));
    sink.u32(pressured_);
    sink.u32(calm_);
    sink.u32(storms_);
    sink.u64(shedRemaining_);
}

HealthMonitor::State
HealthMonitor::decodeState(ckpt::Source &source) const
{
    State state;
    const std::uint8_t ladder = source.u8();
    if (ladder > static_cast<std::uint8_t>(HealthState::Quarantined))
        fatal(source.context(), ": unknown health state ", unsigned{ladder});
    state.state = static_cast<HealthState>(ladder);
    state.pressured = source.u32();
    state.calm = source.u32();
    state.storms = source.u32();
    state.shedRemaining = source.u64();
    return state;
}

void
HealthMonitor::restoreState(const State &state)
{
    state_ = state.state;
    pressured_ = state.pressured;
    calm_ = state.calm;
    storms_ = state.storms;
    shedRemaining_ = state.shedRemaining;
}

std::string
HealthMonitor::describe() const
{
    std::ostringstream os;
    os << healthStateName(state_);
    if (!policy_.enabled)
        return os.str() + " (monitor disabled)";
    os << " (degrade at " << policy_.degradeOccupancyPercent
       << "% occupancy for " << policy_.degradeWindow
       << " tenures, sampling shift " << policy_.degradedSamplingShift
       << ", recover after " << policy_.recoverWindow
       << ", backoff limit 2^" << policy_.backoffLimit
       << ", quarantine after " << policy_.quarantineStorms
       << " storms)";
    return os.str();
}

} // namespace memories::fault
