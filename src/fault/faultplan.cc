#include "fault/faultplan.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace memories::fault
{

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SpuriousRetry:    return "retry";
      case FaultKind::DropReply:        return "dropreply";
      case FaultKind::DelayReply:       return "delayreply";
      case FaultKind::AddressFlip:      return "addrflip";
      case FaultKind::TagFlip:          return "tagflip";
      case FaultKind::SlotLoss:         return "slotloss";
      case FaultKind::RetirementStall:  return "stall";
      case FaultKind::NumKinds:         break;
    }
    return "?";
}

namespace
{

bool
kindFromName(std::string_view name, FaultKind &out)
{
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (faultKindName(kind) == name) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::uint64_t
parseU64(const std::string &token, const std::string &line)
{
    std::uint64_t v = 0;
    std::size_t used = 0;
    try {
        v = std::stoull(token, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != token.size())
        fatal("fault plan: bad integer '", token, "' in '", line, "'");
    return v;
}

double
parseProb(const std::string &token, const std::string &line)
{
    double v = 0.0;
    std::size_t used = 0;
    try {
        v = std::stod(token, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != token.size() || v < 0.0 || v > 1.0)
        fatal("fault plan: probability '", token, "' in '", line,
              "' must be in [0, 1]");
    return v;
}

FaultSpec
parseLine(const std::string &line)
{
    std::istringstream is(line);
    std::string kind_name;
    is >> kind_name;

    FaultSpec spec;
    if (!kindFromName(kind_name, spec.kind))
        fatal("fault plan: unknown fault kind '", kind_name, "' in '",
              line, "'");

    bool has_trigger = false;
    std::string key;
    while (is >> key) {
        std::string value;
        if (!(is >> value))
            fatal("fault plan: key '", key, "' missing a value in '",
                  line, "'");
        if (key == "at") {
            spec.atTenure = parseU64(value, line);
            if (spec.atTenure == 0)
                fatal("fault plan: 'at' is 1-based; got 0 in '", line,
                      "'");
            has_trigger = true;
        } else if (key == "prob") {
            spec.probability = parseProb(value, line);
            has_trigger = true;
        } else if (key == "bit") {
            const std::uint64_t bit = parseU64(value, line);
            if (bit > 63)
                fatal("fault plan: bit ", bit, " out of range in '",
                      line, "'");
            spec.bit = static_cast<unsigned>(bit);
        } else if (key == "cycles") {
            spec.cycles = parseU64(value, line);
        } else if (key == "slots") {
            spec.slots = static_cast<std::size_t>(parseU64(value, line));
        } else if (key == "node") {
            const std::uint64_t node = parseU64(value, line);
            if (node > 0xff)
                fatal("fault plan: node ", node, " out of range in '",
                      line, "'");
            spec.node = static_cast<std::uint8_t>(node);
        } else {
            fatal("fault plan: unknown key '", key, "' in '", line, "'");
        }
    }
    if (!has_trigger)
        fatal("fault plan: '", line,
              "' needs a trigger ('at N' or 'prob P')");
    if (spec.atTenure != 0 && spec.probability != 0.0)
        fatal("fault plan: '", line,
              "' may use 'at' or 'prob', not both");

    switch (spec.kind) {
      case FaultKind::DelayReply:
      case FaultKind::RetirementStall:
        if (spec.cycles == 0)
            fatal("fault plan: ", faultKindName(spec.kind),
                  " needs 'cycles N' in '", line, "'");
        break;
      case FaultKind::SlotLoss:
        if (spec.slots == 0 || spec.cycles == 0)
            fatal("fault plan: slotloss needs 'slots N' and 'cycles N' "
                  "in '", line, "'");
        break;
      default:
        break;
    }
    return spec;
}

} // namespace

std::string
FaultSpec::describe() const
{
    std::ostringstream os;
    os << faultKindName(kind);
    if (atTenure != 0)
        os << " at " << atTenure;
    else
        os << " prob " << probability;
    switch (kind) {
      case FaultKind::AddressFlip:
        os << " bit " << bit;
        break;
      case FaultKind::TagFlip:
        os << " node " << static_cast<unsigned>(node) << " bit " << bit;
        break;
      case FaultKind::DelayReply:
      case FaultKind::RetirementStall:
        os << " cycles " << cycles;
        break;
      case FaultKind::SlotLoss:
        os << " slots " << slots << " cycles " << cycles;
        break;
      default:
        break;
    }
    return os.str();
}

FaultPlan
FaultPlan::parse(std::string_view text)
{
    FaultPlan plan;
    std::istringstream is{std::string(text)};
    std::string line;
    while (std::getline(is, line)) {
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        // Skip blank (or comment-only) lines.
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        plan.faults.push_back(parseLine(line));
    }
    return plan;
}

FaultPlan
FaultPlan::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open fault plan '", path, "'");
    std::ostringstream text;
    text << is.rdbuf();
    return parse(text.str());
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    for (const FaultSpec &spec : faults)
        os << spec.describe() << "\n";
    return os.str();
}

} // namespace memories::fault
