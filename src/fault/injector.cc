#include "fault/injector.hh"

#include <sstream>

#include "bus/busop.hh"
#include "common/logging.hh"

namespace memories::fault
{

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed), rng_(seed)
{
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        hKind_[k] = counters_.add(
            "faults." +
            std::string(faultKindName(static_cast<FaultKind>(k))));
    }
}

bool
FaultInjector::fires(const FaultSpec &spec, std::uint64_t index)
{
    if (spec.atTenure != 0)
        return index == spec.atTenure;
    return rng_.nextBool(spec.probability);
}

void
FaultInjector::note(const FaultSpec &spec,
                    const bus::BusTransaction &txn)
{
    counters_.bump(hKind_[static_cast<std::size_t>(spec.kind)]);
    if (!recorder_ && !eventSink_)
        return;
    trace::LifecycleEvent ev;
    ev.kind = trace::EventKind::FaultInjected;
    ev.cycle = txn.cycle;
    ev.addr = txn.addr;
    ev.traceId = txn.traceId;
    ev.board = boardId_;
    ev.cpu = txn.cpu;
    ev.op = txn.op;
    ev.arg0 = static_cast<std::uint8_t>(spec.kind);
    if (eventSink_) {
        // Batch journaling: the board splices these into the recorder
        // in admission order when the batch ends.
        eventSink_(ev);
        anomalySink_(trace::AnomalyKind::FaultInjection, txn.cycle,
                     txn.traceId);
        return;
    }
    recorder_->record(ev);
    recorder_->notifyAnomaly(trace::AnomalyKind::FaultInjection,
                             txn.cycle, txn.traceId);
}

bus::SnoopResponse
FaultInjector::snoop(const bus::BusTransaction &txn)
{
    if (bus::isFilteredOp(txn.op) || txn.isRetryReplay)
        return bus::SnoopResponse::None;
    ++busTenures_;
    auto response = bus::SnoopResponse::None;
    for (const FaultSpec &spec : plan_.faults) {
        if (spec.kind != FaultKind::SpuriousRetry)
            continue;
        if (fires(spec, busTenures_)) {
            note(spec, txn);
            response = bus::SnoopResponse::Retry;
        }
    }
    return response;
}

FaultInjector::StreamFaults
FaultInjector::onTenure(bus::BusTransaction &txn)
{
    ++streamTenures_;
    StreamFaults out;
    for (const FaultSpec &spec : plan_.faults) {
        switch (spec.kind) {
          case FaultKind::DropReply:
            if (fires(spec, streamTenures_)) {
                note(spec, txn);
                out.drop = true;
            }
            break;
          case FaultKind::DelayReply:
            if (fires(spec, streamTenures_)) {
                note(spec, txn);
                txn.cycle += spec.cycles;
            }
            break;
          case FaultKind::AddressFlip:
            if (fires(spec, streamTenures_)) {
                note(spec, txn);
                txn.addr ^= Addr{1} << spec.bit;
            }
            break;
          default:
            break;
        }
    }
    return out;
}

FaultInjector::CommitFaults
FaultInjector::onCommit(const bus::BusTransaction &txn)
{
    ++commits_;
    CommitFaults out;
    for (const FaultSpec &spec : plan_.faults) {
        switch (spec.kind) {
          case FaultKind::TagFlip:
            if (fires(spec, commits_)) {
                note(spec, txn);
                out.tagFlip = true;
                out.tagNode = spec.node;
                out.tagBit = spec.bit;
            }
            break;
          case FaultKind::SlotLoss:
            if (fires(spec, commits_)) {
                note(spec, txn);
                out.slotLoss = true;
                out.slots = spec.slots;
                out.slotsUntil = txn.cycle + spec.cycles;
            }
            break;
          case FaultKind::RetirementStall:
            if (fires(spec, commits_)) {
                note(spec, txn);
                out.stall = true;
                out.stallUntil = txn.cycle + spec.cycles;
            }
            break;
          default:
            break;
        }
    }
    return out;
}

namespace
{

/** FNV-1a over the plan's canonical text rendering. */
std::uint64_t
planHash(const FaultPlan &plan)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : plan.describe()) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

void
FaultInjector::saveState(ckpt::Sink &sink) const
{
    sink.u64(seed_);
    sink.u64(planHash(plan_));
    for (std::uint64_t w : rng_.state())
        sink.u64(w);
    sink.u64(busTenures_);
    sink.u64(streamTenures_);
    sink.u64(commits_);
    counters_.saveState(sink);
}

FaultInjector::State
FaultInjector::decodeState(ckpt::Source &source) const
{
    const std::uint64_t seed = source.u64();
    if (seed != seed_) {
        fatal(source.context(), ": checkpoint was taken with injector seed ",
              seed, " but this injector uses ", seed_);
    }
    const std::uint64_t hash = source.u64();
    if (hash != planHash(plan_)) {
        fatal(source.context(),
              ": checkpointed fault plan differs from the attached plan — "
              "the fault schedule would not resume deterministically");
    }
    State state;
    std::uint64_t ored = 0;
    for (unsigned w = 0; w < 4; ++w) {
        state.rng[w] = source.u64();
        ored |= state.rng[w];
    }
    if (ored == 0) {
        fatal(source.context(),
              ": injector RNG stream is the invalid all-zero state");
    }
    state.busTenures = source.u64();
    state.streamTenures = source.u64();
    state.commits = source.u64();
    state.counters = counters_.decodeState(source);
    return state;
}

void
FaultInjector::restoreState(const State &state)
{
    rng_.setState(state.rng);
    busTenures_ = state.busTenures;
    streamTenures_ = state.streamTenures;
    commits_ = state.commits;
    counters_.restoreState(state.counters);
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < numFaultKinds; ++k)
        total += counters_.value(hKind_[k]);
    return total;
}

void
FaultInjector::attachTelemetry(telemetry::Sampler &sampler,
                               const std::string &prefix)
{
    sampler.addBank(prefix, counters_);
}

std::string
FaultInjector::dumpStats() const
{
    std::ostringstream os;
    os << "fault injector: seed " << seed_ << ", " << plan_.size()
       << " spec" << (plan_.size() == 1 ? "" : "s") << ", "
       << totalInjected() << " injected\n";
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        const auto count = counters_.value(hKind_[k]);
        if (count == 0)
            continue;
        os << "  " << faultKindName(static_cast<FaultKind>(k)) << " "
           << count << "\n";
    }
    return os.str();
}

} // namespace memories::fault
