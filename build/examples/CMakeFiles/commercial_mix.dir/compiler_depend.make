# Empty compiler generated dependencies file for commercial_mix.
# This may be replaced when dependencies are built.
