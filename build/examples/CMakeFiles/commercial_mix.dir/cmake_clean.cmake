file(REMOVE_RECURSE
  "CMakeFiles/commercial_mix.dir/commercial_mix.cpp.o"
  "CMakeFiles/commercial_mix.dir/commercial_mix.cpp.o.d"
  "commercial_mix"
  "commercial_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commercial_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
