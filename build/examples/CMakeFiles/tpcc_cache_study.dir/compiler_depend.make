# Empty compiler generated dependencies file for tpcc_cache_study.
# This may be replaced when dependencies are built.
