file(REMOVE_RECURSE
  "CMakeFiles/tpcc_cache_study.dir/tpcc_cache_study.cpp.o"
  "CMakeFiles/tpcc_cache_study.dir/tpcc_cache_study.cpp.o.d"
  "tpcc_cache_study"
  "tpcc_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
