# Empty dependencies file for console_session.
# This may be replaced when dependencies are built.
