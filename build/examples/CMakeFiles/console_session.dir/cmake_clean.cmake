file(REMOVE_RECURSE
  "CMakeFiles/console_session.dir/console_session.cpp.o"
  "CMakeFiles/console_session.dir/console_session.cpp.o.d"
  "console_session"
  "console_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/console_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
