# Empty dependencies file for tracetool.
# This may be replaced when dependencies are built.
