file(REMOVE_RECURSE
  "CMakeFiles/positioning.dir/positioning.cpp.o"
  "CMakeFiles/positioning.dir/positioning.cpp.o.d"
  "positioning"
  "positioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
