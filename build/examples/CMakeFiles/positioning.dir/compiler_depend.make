# Empty compiler generated dependencies file for positioning.
# This may be replaced when dependencies are built.
