# Empty dependencies file for splash_scaling.
# This may be replaced when dependencies are built.
