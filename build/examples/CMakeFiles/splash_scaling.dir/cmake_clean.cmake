file(REMOVE_RECURSE
  "CMakeFiles/splash_scaling.dir/splash_scaling.cpp.o"
  "CMakeFiles/splash_scaling.dir/splash_scaling.cpp.o.d"
  "splash_scaling"
  "splash_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
