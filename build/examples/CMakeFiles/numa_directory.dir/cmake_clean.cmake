file(REMOVE_RECURSE
  "CMakeFiles/numa_directory.dir/numa_directory.cpp.o"
  "CMakeFiles/numa_directory.dir/numa_directory.cpp.o.d"
  "numa_directory"
  "numa_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
