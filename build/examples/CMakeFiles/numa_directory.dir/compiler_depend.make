# Empty compiler generated dependencies file for numa_directory.
# This may be replaced when dependencies are built.
