file(REMOVE_RECURSE
  "libmemories_bus.a"
)
