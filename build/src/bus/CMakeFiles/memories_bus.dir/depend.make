# Empty dependencies file for memories_bus.
# This may be replaced when dependencies are built.
