file(REMOVE_RECURSE
  "CMakeFiles/memories_bus.dir/bus6xx.cc.o"
  "CMakeFiles/memories_bus.dir/bus6xx.cc.o.d"
  "CMakeFiles/memories_bus.dir/busop.cc.o"
  "CMakeFiles/memories_bus.dir/busop.cc.o.d"
  "libmemories_bus.a"
  "libmemories_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
