
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ies/analysis.cc" "src/ies/CMakeFiles/memories_ies.dir/analysis.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/analysis.cc.o.d"
  "/root/repo/src/ies/board.cc" "src/ies/CMakeFiles/memories_ies.dir/board.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/board.cc.o.d"
  "/root/repo/src/ies/boardconfig.cc" "src/ies/CMakeFiles/memories_ies.dir/boardconfig.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/boardconfig.cc.o.d"
  "/root/repo/src/ies/busprofiler.cc" "src/ies/CMakeFiles/memories_ies.dir/busprofiler.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/busprofiler.cc.o.d"
  "/root/repo/src/ies/commandmap.cc" "src/ies/CMakeFiles/memories_ies.dir/commandmap.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/commandmap.cc.o.d"
  "/root/repo/src/ies/console.cc" "src/ies/CMakeFiles/memories_ies.dir/console.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/console.cc.o.d"
  "/root/repo/src/ies/hotspot.cc" "src/ies/CMakeFiles/memories_ies.dir/hotspot.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/hotspot.cc.o.d"
  "/root/repo/src/ies/nodecontroller.cc" "src/ies/CMakeFiles/memories_ies.dir/nodecontroller.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/nodecontroller.cc.o.d"
  "/root/repo/src/ies/numa.cc" "src/ies/CMakeFiles/memories_ies.dir/numa.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/numa.cc.o.d"
  "/root/repo/src/ies/txnbuffer.cc" "src/ies/CMakeFiles/memories_ies.dir/txnbuffer.cc.o" "gcc" "src/ies/CMakeFiles/memories_ies.dir/txnbuffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/memories_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/memories_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/memories_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
