file(REMOVE_RECURSE
  "libmemories_ies.a"
)
