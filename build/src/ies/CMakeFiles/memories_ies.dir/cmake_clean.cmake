file(REMOVE_RECURSE
  "CMakeFiles/memories_ies.dir/analysis.cc.o"
  "CMakeFiles/memories_ies.dir/analysis.cc.o.d"
  "CMakeFiles/memories_ies.dir/board.cc.o"
  "CMakeFiles/memories_ies.dir/board.cc.o.d"
  "CMakeFiles/memories_ies.dir/boardconfig.cc.o"
  "CMakeFiles/memories_ies.dir/boardconfig.cc.o.d"
  "CMakeFiles/memories_ies.dir/busprofiler.cc.o"
  "CMakeFiles/memories_ies.dir/busprofiler.cc.o.d"
  "CMakeFiles/memories_ies.dir/commandmap.cc.o"
  "CMakeFiles/memories_ies.dir/commandmap.cc.o.d"
  "CMakeFiles/memories_ies.dir/console.cc.o"
  "CMakeFiles/memories_ies.dir/console.cc.o.d"
  "CMakeFiles/memories_ies.dir/hotspot.cc.o"
  "CMakeFiles/memories_ies.dir/hotspot.cc.o.d"
  "CMakeFiles/memories_ies.dir/nodecontroller.cc.o"
  "CMakeFiles/memories_ies.dir/nodecontroller.cc.o.d"
  "CMakeFiles/memories_ies.dir/numa.cc.o"
  "CMakeFiles/memories_ies.dir/numa.cc.o.d"
  "CMakeFiles/memories_ies.dir/txnbuffer.cc.o"
  "CMakeFiles/memories_ies.dir/txnbuffer.cc.o.d"
  "libmemories_ies.a"
  "libmemories_ies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_ies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
