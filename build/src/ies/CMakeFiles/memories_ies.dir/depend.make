# Empty dependencies file for memories_ies.
# This may be replaced when dependencies are built.
