# CMake generated Testfile for 
# Source directory: /root/repo/src/ies
# Build directory: /root/repo/build/src/ies
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
