# Empty compiler generated dependencies file for memories_workload.
# This may be replaced when dependencies are built.
