file(REMOVE_RECURSE
  "libmemories_workload.a"
)
