
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dss.cc" "src/workload/CMakeFiles/memories_workload.dir/dss.cc.o" "gcc" "src/workload/CMakeFiles/memories_workload.dir/dss.cc.o.d"
  "/root/repo/src/workload/mix.cc" "src/workload/CMakeFiles/memories_workload.dir/mix.cc.o" "gcc" "src/workload/CMakeFiles/memories_workload.dir/mix.cc.o.d"
  "/root/repo/src/workload/oltp.cc" "src/workload/CMakeFiles/memories_workload.dir/oltp.cc.o" "gcc" "src/workload/CMakeFiles/memories_workload.dir/oltp.cc.o.d"
  "/root/repo/src/workload/splash.cc" "src/workload/CMakeFiles/memories_workload.dir/splash.cc.o" "gcc" "src/workload/CMakeFiles/memories_workload.dir/splash.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/memories_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/memories_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/web.cc" "src/workload/CMakeFiles/memories_workload.dir/web.cc.o" "gcc" "src/workload/CMakeFiles/memories_workload.dir/web.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
