file(REMOVE_RECURSE
  "CMakeFiles/memories_workload.dir/dss.cc.o"
  "CMakeFiles/memories_workload.dir/dss.cc.o.d"
  "CMakeFiles/memories_workload.dir/mix.cc.o"
  "CMakeFiles/memories_workload.dir/mix.cc.o.d"
  "CMakeFiles/memories_workload.dir/oltp.cc.o"
  "CMakeFiles/memories_workload.dir/oltp.cc.o.d"
  "CMakeFiles/memories_workload.dir/splash.cc.o"
  "CMakeFiles/memories_workload.dir/splash.cc.o.d"
  "CMakeFiles/memories_workload.dir/synthetic.cc.o"
  "CMakeFiles/memories_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/memories_workload.dir/web.cc.o"
  "CMakeFiles/memories_workload.dir/web.cc.o.d"
  "libmemories_workload.a"
  "libmemories_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
