file(REMOVE_RECURSE
  "CMakeFiles/memories_common.dir/counters.cc.o"
  "CMakeFiles/memories_common.dir/counters.cc.o.d"
  "CMakeFiles/memories_common.dir/logging.cc.o"
  "CMakeFiles/memories_common.dir/logging.cc.o.d"
  "CMakeFiles/memories_common.dir/random.cc.o"
  "CMakeFiles/memories_common.dir/random.cc.o.d"
  "CMakeFiles/memories_common.dir/stats.cc.o"
  "CMakeFiles/memories_common.dir/stats.cc.o.d"
  "CMakeFiles/memories_common.dir/units.cc.o"
  "CMakeFiles/memories_common.dir/units.cc.o.d"
  "libmemories_common.a"
  "libmemories_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
