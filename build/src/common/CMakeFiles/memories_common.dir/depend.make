# Empty dependencies file for memories_common.
# This may be replaced when dependencies are built.
