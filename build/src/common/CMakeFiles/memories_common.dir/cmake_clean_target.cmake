file(REMOVE_RECURSE
  "libmemories_common.a"
)
