file(REMOVE_RECURSE
  "libmemories_trace.a"
)
