# Empty dependencies file for memories_trace.
# This may be replaced when dependencies are built.
