file(REMOVE_RECURSE
  "CMakeFiles/memories_trace.dir/capture.cc.o"
  "CMakeFiles/memories_trace.dir/capture.cc.o.d"
  "CMakeFiles/memories_trace.dir/record.cc.o"
  "CMakeFiles/memories_trace.dir/record.cc.o.d"
  "CMakeFiles/memories_trace.dir/tracefile.cc.o"
  "CMakeFiles/memories_trace.dir/tracefile.cc.o.d"
  "CMakeFiles/memories_trace.dir/tracestats.cc.o"
  "CMakeFiles/memories_trace.dir/tracestats.cc.o.d"
  "libmemories_trace.a"
  "libmemories_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
