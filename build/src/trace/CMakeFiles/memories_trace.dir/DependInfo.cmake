
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/capture.cc" "src/trace/CMakeFiles/memories_trace.dir/capture.cc.o" "gcc" "src/trace/CMakeFiles/memories_trace.dir/capture.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/trace/CMakeFiles/memories_trace.dir/record.cc.o" "gcc" "src/trace/CMakeFiles/memories_trace.dir/record.cc.o.d"
  "/root/repo/src/trace/tracefile.cc" "src/trace/CMakeFiles/memories_trace.dir/tracefile.cc.o" "gcc" "src/trace/CMakeFiles/memories_trace.dir/tracefile.cc.o.d"
  "/root/repo/src/trace/tracestats.cc" "src/trace/CMakeFiles/memories_trace.dir/tracestats.cc.o" "gcc" "src/trace/CMakeFiles/memories_trace.dir/tracestats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
