# Empty dependencies file for memories_sim.
# This may be replaced when dependencies are built.
