
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/detailed.cc" "src/sim/CMakeFiles/memories_sim.dir/detailed.cc.o" "gcc" "src/sim/CMakeFiles/memories_sim.dir/detailed.cc.o.d"
  "/root/repo/src/sim/execdriven.cc" "src/sim/CMakeFiles/memories_sim.dir/execdriven.cc.o" "gcc" "src/sim/CMakeFiles/memories_sim.dir/execdriven.cc.o.d"
  "/root/repo/src/sim/projection.cc" "src/sim/CMakeFiles/memories_sim.dir/projection.cc.o" "gcc" "src/sim/CMakeFiles/memories_sim.dir/projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/memories_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/memories_host.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/memories_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/memories_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memories_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
