file(REMOVE_RECURSE
  "CMakeFiles/memories_sim.dir/detailed.cc.o"
  "CMakeFiles/memories_sim.dir/detailed.cc.o.d"
  "CMakeFiles/memories_sim.dir/execdriven.cc.o"
  "CMakeFiles/memories_sim.dir/execdriven.cc.o.d"
  "CMakeFiles/memories_sim.dir/projection.cc.o"
  "CMakeFiles/memories_sim.dir/projection.cc.o.d"
  "libmemories_sim.a"
  "libmemories_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
