file(REMOVE_RECURSE
  "libmemories_sim.a"
)
