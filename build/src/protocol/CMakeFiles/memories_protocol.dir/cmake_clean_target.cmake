file(REMOVE_RECURSE
  "libmemories_protocol.a"
)
