file(REMOVE_RECURSE
  "CMakeFiles/memories_protocol.dir/protocols.cc.o"
  "CMakeFiles/memories_protocol.dir/protocols.cc.o.d"
  "CMakeFiles/memories_protocol.dir/state.cc.o"
  "CMakeFiles/memories_protocol.dir/state.cc.o.d"
  "CMakeFiles/memories_protocol.dir/table.cc.o"
  "CMakeFiles/memories_protocol.dir/table.cc.o.d"
  "libmemories_protocol.a"
  "libmemories_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
