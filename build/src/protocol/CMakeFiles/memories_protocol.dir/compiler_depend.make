# Empty compiler generated dependencies file for memories_protocol.
# This may be replaced when dependencies are built.
