
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/protocols.cc" "src/protocol/CMakeFiles/memories_protocol.dir/protocols.cc.o" "gcc" "src/protocol/CMakeFiles/memories_protocol.dir/protocols.cc.o.d"
  "/root/repo/src/protocol/state.cc" "src/protocol/CMakeFiles/memories_protocol.dir/state.cc.o" "gcc" "src/protocol/CMakeFiles/memories_protocol.dir/state.cc.o.d"
  "/root/repo/src/protocol/table.cc" "src/protocol/CMakeFiles/memories_protocol.dir/table.cc.o" "gcc" "src/protocol/CMakeFiles/memories_protocol.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
