file(REMOVE_RECURSE
  "CMakeFiles/memories_host.dir/hostcache.cc.o"
  "CMakeFiles/memories_host.dir/hostcache.cc.o.d"
  "CMakeFiles/memories_host.dir/iobridge.cc.o"
  "CMakeFiles/memories_host.dir/iobridge.cc.o.d"
  "CMakeFiles/memories_host.dir/machine.cc.o"
  "CMakeFiles/memories_host.dir/machine.cc.o.d"
  "CMakeFiles/memories_host.dir/timing.cc.o"
  "CMakeFiles/memories_host.dir/timing.cc.o.d"
  "libmemories_host.a"
  "libmemories_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
