# Empty compiler generated dependencies file for memories_host.
# This may be replaced when dependencies are built.
