
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/hostcache.cc" "src/host/CMakeFiles/memories_host.dir/hostcache.cc.o" "gcc" "src/host/CMakeFiles/memories_host.dir/hostcache.cc.o.d"
  "/root/repo/src/host/iobridge.cc" "src/host/CMakeFiles/memories_host.dir/iobridge.cc.o" "gcc" "src/host/CMakeFiles/memories_host.dir/iobridge.cc.o.d"
  "/root/repo/src/host/machine.cc" "src/host/CMakeFiles/memories_host.dir/machine.cc.o" "gcc" "src/host/CMakeFiles/memories_host.dir/machine.cc.o.d"
  "/root/repo/src/host/timing.cc" "src/host/CMakeFiles/memories_host.dir/timing.cc.o" "gcc" "src/host/CMakeFiles/memories_host.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/memories_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/memories_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memories_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
