file(REMOVE_RECURSE
  "libmemories_host.a"
)
