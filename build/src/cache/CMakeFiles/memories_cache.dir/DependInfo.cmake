
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/config.cc" "src/cache/CMakeFiles/memories_cache.dir/config.cc.o" "gcc" "src/cache/CMakeFiles/memories_cache.dir/config.cc.o.d"
  "/root/repo/src/cache/tagstore.cc" "src/cache/CMakeFiles/memories_cache.dir/tagstore.cc.o" "gcc" "src/cache/CMakeFiles/memories_cache.dir/tagstore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
