file(REMOVE_RECURSE
  "libmemories_cache.a"
)
