# Empty dependencies file for memories_cache.
# This may be replaced when dependencies are built.
