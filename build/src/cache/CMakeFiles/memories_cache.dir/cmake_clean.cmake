file(REMOVE_RECURSE
  "CMakeFiles/memories_cache.dir/config.cc.o"
  "CMakeFiles/memories_cache.dir/config.cc.o.d"
  "CMakeFiles/memories_cache.dir/tagstore.cc.o"
  "CMakeFiles/memories_cache.dir/tagstore.cc.o.d"
  "libmemories_cache.a"
  "libmemories_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
