# Empty compiler generated dependencies file for ies_test.
# This may be replaced when dependencies are built.
