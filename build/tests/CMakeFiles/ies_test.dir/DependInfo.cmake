
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ies/analysis_test.cc" "tests/CMakeFiles/ies_test.dir/ies/analysis_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/analysis_test.cc.o.d"
  "/root/repo/tests/ies/board_test.cc" "tests/CMakeFiles/ies_test.dir/ies/board_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/board_test.cc.o.d"
  "/root/repo/tests/ies/busprofiler_test.cc" "tests/CMakeFiles/ies_test.dir/ies/busprofiler_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/busprofiler_test.cc.o.d"
  "/root/repo/tests/ies/checkpoint_test.cc" "tests/CMakeFiles/ies_test.dir/ies/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/checkpoint_test.cc.o.d"
  "/root/repo/tests/ies/commandmap_test.cc" "tests/CMakeFiles/ies_test.dir/ies/commandmap_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/commandmap_test.cc.o.d"
  "/root/repo/tests/ies/console_fuzz_test.cc" "tests/CMakeFiles/ies_test.dir/ies/console_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/console_fuzz_test.cc.o.d"
  "/root/repo/tests/ies/console_script_test.cc" "tests/CMakeFiles/ies_test.dir/ies/console_script_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/console_script_test.cc.o.d"
  "/root/repo/tests/ies/console_test.cc" "tests/CMakeFiles/ies_test.dir/ies/console_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/console_test.cc.o.d"
  "/root/repo/tests/ies/dirscheme_test.cc" "tests/CMakeFiles/ies_test.dir/ies/dirscheme_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/dirscheme_test.cc.o.d"
  "/root/repo/tests/ies/hotspot_test.cc" "tests/CMakeFiles/ies_test.dir/ies/hotspot_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/hotspot_test.cc.o.d"
  "/root/repo/tests/ies/nodecontroller_test.cc" "tests/CMakeFiles/ies_test.dir/ies/nodecontroller_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/nodecontroller_test.cc.o.d"
  "/root/repo/tests/ies/numa_test.cc" "tests/CMakeFiles/ies_test.dir/ies/numa_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/numa_test.cc.o.d"
  "/root/repo/tests/ies/sampling_test.cc" "tests/CMakeFiles/ies_test.dir/ies/sampling_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/sampling_test.cc.o.d"
  "/root/repo/tests/ies/txnbuffer_test.cc" "tests/CMakeFiles/ies_test.dir/ies/txnbuffer_test.cc.o" "gcc" "tests/CMakeFiles/ies_test.dir/ies/txnbuffer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ies/CMakeFiles/memories_ies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memories_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/memories_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/memories_host.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/memories_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/memories_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memories_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
