file(REMOVE_RECURSE
  "CMakeFiles/ies_test.dir/ies/analysis_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/analysis_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/board_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/board_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/busprofiler_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/busprofiler_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/checkpoint_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/checkpoint_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/commandmap_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/commandmap_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/console_fuzz_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/console_fuzz_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/console_script_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/console_script_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/console_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/console_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/dirscheme_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/dirscheme_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/hotspot_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/hotspot_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/nodecontroller_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/nodecontroller_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/numa_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/numa_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/sampling_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/sampling_test.cc.o.d"
  "CMakeFiles/ies_test.dir/ies/txnbuffer_test.cc.o"
  "CMakeFiles/ies_test.dir/ies/txnbuffer_test.cc.o.d"
  "ies_test"
  "ies_test.pdb"
  "ies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
