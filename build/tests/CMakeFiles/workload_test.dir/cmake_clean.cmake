file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/determinism_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/determinism_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/dss_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/dss_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/mix_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/mix_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/oltp_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/oltp_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/splash_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/splash_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/synthetic_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/synthetic_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/web_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/web_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
