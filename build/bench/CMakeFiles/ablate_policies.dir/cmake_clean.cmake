file(REMOVE_RECURSE
  "CMakeFiles/ablate_policies.dir/ablate_policies.cc.o"
  "CMakeFiles/ablate_policies.dir/ablate_policies.cc.o.d"
  "ablate_policies"
  "ablate_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
