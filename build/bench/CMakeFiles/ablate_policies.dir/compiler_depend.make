# Empty compiler generated dependencies file for ablate_policies.
# This may be replaced when dependencies are built.
