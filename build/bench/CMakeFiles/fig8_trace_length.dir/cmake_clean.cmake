file(REMOVE_RECURSE
  "CMakeFiles/fig8_trace_length.dir/fig8_trace_length.cc.o"
  "CMakeFiles/fig8_trace_length.dir/fig8_trace_length.cc.o.d"
  "fig8_trace_length"
  "fig8_trace_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_trace_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
