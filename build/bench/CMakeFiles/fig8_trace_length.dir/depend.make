# Empty dependencies file for fig8_trace_length.
# This may be replaced when dependencies are built.
