# Empty dependencies file for fig11_l3_missratio.
# This may be replaced when dependencies are built.
