file(REMOVE_RECURSE
  "CMakeFiles/fig11_l3_missratio.dir/fig11_l3_missratio.cc.o"
  "CMakeFiles/fig11_l3_missratio.dir/fig11_l3_missratio.cc.o.d"
  "fig11_l3_missratio"
  "fig11_l3_missratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_l3_missratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
