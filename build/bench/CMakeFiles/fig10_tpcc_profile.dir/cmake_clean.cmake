file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpcc_profile.dir/fig10_tpcc_profile.cc.o"
  "CMakeFiles/fig10_tpcc_profile.dir/fig10_tpcc_profile.cc.o.d"
  "fig10_tpcc_profile"
  "fig10_tpcc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpcc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
