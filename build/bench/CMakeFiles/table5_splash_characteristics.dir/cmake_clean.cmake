file(REMOVE_RECURSE
  "CMakeFiles/table5_splash_characteristics.dir/table5_splash_characteristics.cc.o"
  "CMakeFiles/table5_splash_characteristics.dir/table5_splash_characteristics.cc.o.d"
  "table5_splash_characteristics"
  "table5_splash_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_splash_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
