# Empty compiler generated dependencies file for table5_splash_characteristics.
# This may be replaced when dependencies are built.
