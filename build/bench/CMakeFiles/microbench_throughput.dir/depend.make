# Empty dependencies file for microbench_throughput.
# This may be replaced when dependencies are built.
