file(REMOVE_RECURSE
  "CMakeFiles/microbench_throughput.dir/microbench_throughput.cc.o"
  "CMakeFiles/microbench_throughput.dir/microbench_throughput.cc.o.d"
  "microbench_throughput"
  "microbench_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
