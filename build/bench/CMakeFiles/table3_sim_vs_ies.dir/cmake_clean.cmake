file(REMOVE_RECURSE
  "CMakeFiles/table3_sim_vs_ies.dir/table3_sim_vs_ies.cc.o"
  "CMakeFiles/table3_sim_vs_ies.dir/table3_sim_vs_ies.cc.o.d"
  "table3_sim_vs_ies"
  "table3_sim_vs_ies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sim_vs_ies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
