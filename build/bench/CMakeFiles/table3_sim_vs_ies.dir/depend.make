# Empty dependencies file for table3_sim_vs_ies.
# This may be replaced when dependencies are built.
