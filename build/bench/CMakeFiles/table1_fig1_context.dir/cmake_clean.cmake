file(REMOVE_RECURSE
  "CMakeFiles/table1_fig1_context.dir/table1_fig1_context.cc.o"
  "CMakeFiles/table1_fig1_context.dir/table1_fig1_context.cc.o.d"
  "table1_fig1_context"
  "table1_fig1_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fig1_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
