# Empty dependencies file for table1_fig1_context.
# This may be replaced when dependencies are built.
