# Empty compiler generated dependencies file for ablate_io.
# This may be replaced when dependencies are built.
