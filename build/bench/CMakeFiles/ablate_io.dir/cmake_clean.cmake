file(REMOVE_RECURSE
  "CMakeFiles/ablate_io.dir/ablate_io.cc.o"
  "CMakeFiles/ablate_io.dir/ablate_io.cc.o.d"
  "ablate_io"
  "ablate_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
