# Empty dependencies file for table6_miss_rates.
# This may be replaced when dependencies are built.
