file(REMOVE_RECURSE
  "CMakeFiles/table6_miss_rates.dir/table6_miss_rates.cc.o"
  "CMakeFiles/table6_miss_rates.dir/table6_miss_rates.cc.o.d"
  "table6_miss_rates"
  "table6_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
