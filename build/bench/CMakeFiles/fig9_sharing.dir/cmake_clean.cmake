file(REMOVE_RECURSE
  "CMakeFiles/fig9_sharing.dir/fig9_sharing.cc.o"
  "CMakeFiles/fig9_sharing.dir/fig9_sharing.cc.o.d"
  "fig9_sharing"
  "fig9_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
