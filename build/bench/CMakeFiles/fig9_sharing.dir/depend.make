# Empty dependencies file for fig9_sharing.
# This may be replaced when dependencies are built.
