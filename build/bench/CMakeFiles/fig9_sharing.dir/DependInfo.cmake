
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_sharing.cc" "bench/CMakeFiles/fig9_sharing.dir/fig9_sharing.cc.o" "gcc" "bench/CMakeFiles/fig9_sharing.dir/fig9_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ies/CMakeFiles/memories_ies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memories_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/memories_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/memories_host.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/memories_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/memories_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/memories_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memories_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memories_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
