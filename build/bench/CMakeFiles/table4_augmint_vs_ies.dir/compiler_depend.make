# Empty compiler generated dependencies file for table4_augmint_vs_ies.
# This may be replaced when dependencies are built.
