file(REMOVE_RECURSE
  "CMakeFiles/table4_augmint_vs_ies.dir/table4_augmint_vs_ies.cc.o"
  "CMakeFiles/table4_augmint_vs_ies.dir/table4_augmint_vs_ies.cc.o.d"
  "table4_augmint_vs_ies"
  "table4_augmint_vs_ies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_augmint_vs_ies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
