# Empty compiler generated dependencies file for ablate_directory.
# This may be replaced when dependencies are built.
