# Empty compiler generated dependencies file for ablate_buffering.
# This may be replaced when dependencies are built.
