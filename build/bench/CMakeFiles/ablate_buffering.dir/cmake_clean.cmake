file(REMOVE_RECURSE
  "CMakeFiles/ablate_buffering.dir/ablate_buffering.cc.o"
  "CMakeFiles/ablate_buffering.dir/ablate_buffering.cc.o.d"
  "ablate_buffering"
  "ablate_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
