/**
 * @file
 * Concurrent-clients determinism: N clients hammer one daemon at
 * once, each streaming its own seeded workload into its own session.
 * Whatever the thread interleaving, every session's final board must
 * be byte-identical to that workload's solo golden run — sessions
 * share a daemon but not state. CI runs this binary directly in the
 * ThreadSanitizer legs (see .github/workflows/ci.yml), so the
 * daemon's slot table, telemetry, and counters are raced on purpose.
 */

#include <gtest/gtest.h>

#include "servicetest.hh"

#include <thread>

namespace memories::service
{
namespace
{

using namespace testing;

constexpr std::size_t kClients = 8;

TEST(ServiceConcurrentTest, EightClientsMatchTheirSoloGoldenRuns)
{
    // Two board shapes across the tenants, so sessions with different
    // configs (not just different streams) share the daemon.
    std::vector<std::vector<std::string>> scripts(kClients,
                                                  configScript());
    for (std::size_t i = 1; i < kClients; i += 2)
        scripts[i][4] = "buffer 32";

    std::vector<std::vector<bus::BusTransaction>> streams;
    std::vector<RunSignature> goldens;
    std::uint64_t total_refs = 0;
    for (std::size_t i = 0; i < kClients; ++i) {
        streams.push_back(stream(/*seed=*/41 + i, /*count=*/6'000));
        goldens.push_back(
            goldenRun(scripts[i], canonical(streams[i])));
        total_refs += streams[i].size();
    }

    TestDaemon daemon(/*max_sessions=*/kClients,
                      /*window_requests=*/32);
    std::vector<RunSignature> results(kClients);
    std::vector<std::string> failures(kClients);

    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            ServiceClient client;
            if (!client.connect(daemon.socket())) {
                failures[i] = "connect failed";
                return;
            }
            for (const auto &line : scripts[i]) {
                const auto reply = client.exec(line);
                if (!reply.ok) {
                    failures[i] = "config: " + reply.text();
                    return;
                }
            }
            // Small batches maximize cross-session interleaving.
            const auto totals = client.feedAll(streams[i],
                                               /*batch=*/97);
            if (totals.accepted != totals.offered) {
                failures[i] = "accepted " +
                              std::to_string(totals.accepted) +
                              " of " +
                              std::to_string(totals.offered);
                return;
            }
            if (!client.exec("drain").ok) {
                failures[i] = "drain failed";
                return;
            }
            results[i] = sessionSignature(client);
        });
    }
    for (auto &t : clients)
        t.join();

    for (std::size_t i = 0; i < kClients; ++i) {
        ASSERT_EQ(failures[i], "") << "client " << i;
        results[i].expectEqual(goldens[i],
                               "client " + std::to_string(i));
    }

    EXPECT_EQ(daemon.get().sessionsOpened(), kClients);
    EXPECT_EQ(daemon.get().refsAccepted(), total_refs);
    EXPECT_EQ(daemon.get().sessionsEvicted(), 0u);
}

TEST(ServiceConcurrentTest, RenameDuringEvictLookupIsRaceFree)
{
    // `server evict <name>` walks every live session's name from the
    // admin's serve thread while the other tenant renames itself —
    // the name must be published under a lock (TSan regression).
    TestDaemon daemon;
    ServiceClient renamer, admin;
    ASSERT_TRUE(renamer.connect(daemon.socket()));
    ASSERT_TRUE(admin.connect(daemon.socket()));

    std::thread t([&] {
        for (int i = 0; i < 200; ++i)
            if (!renamer.exec("session name r" + std::to_string(i)).ok)
                break;
    });
    for (int i = 0; i < 200; ++i)
        admin.exec("server evict no-such-session");
    t.join();

    EXPECT_TRUE(renamer.exec("session status").ok);
    EXPECT_EQ(daemon.get().sessionsEvicted(), 0u);

    // Renames are visible to the lookup: evicting the final name lands.
    ASSERT_TRUE(renamer.exec("session name victim").ok);
    const auto reply = admin.exec("server evict victim");
    EXPECT_TRUE(reply.ok) << reply.text();
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsEvicted() == 1; }));
}

TEST(ServiceConcurrentTest, SessionLimitRejectsTheOverflowClient)
{
    TestDaemon daemon(/*max_sessions=*/2);
    ServiceClient a, b;
    ASSERT_TRUE(a.connect(daemon.socket()));
    ASSERT_TRUE(b.connect(daemon.socket()));

    // The third tenant is refused with a framed error, not ignored.
    ServiceClient c;
    EXPECT_FALSE(c.connect(daemon.socket(), /*retry_ms=*/200));
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsRejected() >= 1; }));

    // A slot frees up when a tenant leaves; the next connect works.
    a.close();
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsActive() == 1; }));
    ServiceClient d;
    EXPECT_TRUE(d.connect(daemon.socket()));
    EXPECT_TRUE(d.exec("session status").ok);
}

} // namespace
} // namespace memories::service
