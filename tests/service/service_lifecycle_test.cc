/**
 * @file
 * Session-lifecycle conformance tier: a stream fed through a live
 * daemon session (connect / configure / feed / drain — and across
 * checkpoint-suspend-resume) must leave the board byte-identical to
 * the same stream pushed through feedBatch in-process. The signature
 * is counters text + stats text + IESCKPT container bytes, so any
 * divergence in counters, directories, buffer, or health state fails.
 */

#include <gtest/gtest.h>

#include "servicetest.hh"

#include "checkpoint/io.hh"
#include "service/session.hh"

namespace memories::service
{
namespace
{

using namespace testing;

TEST(ServiceLifecycleTest, PacedSessionMatchesGoldenFeedBatch)
{
    const auto raw = stream(/*seed=*/11, /*count=*/20'000);
    const auto canon = canonical(raw);
    const auto golden = goldenRun(configScript(), canon);

    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    configureSession(client, configScript());

    const auto totals = client.feedAll(raw, /*batch=*/256);
    EXPECT_EQ(totals.accepted, totals.offered)
        << "paced sessions back-pressure, never drop";
    ASSERT_TRUE(client.exec("drain").ok);

    sessionSignature(client).expectEqual(golden, "paced session");
}

TEST(ServiceLifecycleTest, ConformanceIsBatchSizeInvariant)
{
    const auto raw = stream(/*seed=*/12, /*count=*/12'000);
    const auto golden = goldenRun(configScript(), canonical(raw));

    for (const std::size_t batch : {17, 256, 4096}) {
        TestDaemon daemon;
        ServiceClient client;
        ASSERT_TRUE(client.connect(daemon.socket()));
        configureSession(client, configScript());
        client.feedAll(raw, batch);
        ASSERT_TRUE(client.exec("drain").ok);
        sessionSignature(client).expectEqual(
            golden, "batch " + std::to_string(batch));
    }
}

TEST(ServiceLifecycleTest, RawModeMatchesGoldenIncludingOverflowDrops)
{
    // A bursty stream against a tiny buffer overflows in batch mode;
    // `stream pace off` must reproduce those drops exactly (raw mode
    // is the upload path for pre-paced trace files).
    oracle::StimulusParams p;
    p.seed = 13;
    p.count = 8'000;
    p.pBurst = 0.9;
    p.maxGap = 2;
    const auto raw = oracle::StimulusGen(p).generate();
    const auto canon = canonical(raw);

    auto script = configScript();
    script[4] = "buffer 8"; // replaces "buffer 64"
    const auto golden = goldenRun(script, canon);

    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    configureSession(client, script);
    ASSERT_TRUE(client.exec("stream pace off").ok);

    const auto totals = client.feedAll(raw, /*batch=*/256);
    EXPECT_EQ(totals.offered, raw.size());
    EXPECT_LT(totals.accepted, totals.offered)
        << "expected overflow drops from this stream";
    ASSERT_TRUE(client.exec("drain").ok);

    sessionSignature(client).expectEqual(golden, "raw mode");
}

TEST(ServiceLifecycleTest, SuspendResumeMatchesStraightThroughRun)
{
    const auto raw = stream(/*seed=*/14, /*count=*/16'000);
    const auto golden = goldenRun(configScript(), canonical(raw));

    const std::vector<bus::BusTransaction> first(raw.begin(),
                                                 raw.begin() + 9'000);
    const std::vector<bus::BusTransaction> second(raw.begin() + 9'000,
                                                  raw.end());

    TestDaemon daemon;
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(daemon.socket()));
        configureSession(client, configScript());
        ASSERT_TRUE(client.exec("session name alpha").ok);
        const auto totals = client.feedAll(first, /*batch=*/256);
        ASSERT_EQ(totals.accepted, first.size());

        const auto reply = client.exec("session suspend");
        ASSERT_TRUE(reply.ok) << reply.text();
        EXPECT_NE(reply.text().find("suspended 'alpha'"),
                  std::string::npos)
            << reply.text();
        // The daemon closes a suspended session; the connection dies.
        EXPECT_FALSE(client.exec("session status").ok);
    }
    EXPECT_EQ(daemon.get().sessionsSuspended(), 1u);
    EXPECT_TRUE(ckpt::fileExists(
        Session::manifestPath(daemon.options.stateDir, "alpha")));

    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(daemon.socket()));
        const auto reply = client.exec("session resume alpha");
        ASSERT_TRUE(reply.ok) << reply.text();
        EXPECT_NE(reply.text().find("resumed 'alpha'"),
                  std::string::npos)
            << reply.text();

        // The daemon's cycle chain resumed mid-stream; match it.
        client.setChainCycle(first.back().cycle);
        const auto totals = client.feedAll(second, /*batch=*/256);
        ASSERT_EQ(totals.accepted, second.size());
        ASSERT_TRUE(client.exec("drain").ok);

        sessionSignature(client).expectEqual(golden, "resumed session");
    }
}

TEST(ServiceLifecycleTest, ScriptConfiguredSessionSuspendsAndResumes)
{
    // Config delivered via `script <path>` must be captured line by
    // line, so a scripted session suspends AND resumes — replay may
    // not fall back to a default board (geometry mismatch).
    const auto raw = stream(/*seed=*/16, /*count=*/8'000);
    const auto golden = goldenRun(configScript(), canonical(raw));

    const std::string scriptPath = uniquePath("iesserv-script") + ".ies";
    {
        std::ofstream out(scriptPath);
        out << "# service config via script file\n";
        for (const auto &line : configScript())
            out << line << "\n";
    }

    const std::vector<bus::BusTransaction> first(raw.begin(),
                                                 raw.begin() + 4'000);
    const std::vector<bus::BusTransaction> second(raw.begin() + 4'000,
                                                  raw.end());

    TestDaemon daemon;
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(daemon.socket()));
        const auto scripted = client.exec("script " + scriptPath);
        ASSERT_TRUE(scripted.ok) << scripted.text();
        EXPECT_EQ(scripted.text().find("error:"), std::string::npos)
            << scripted.text();
        ASSERT_TRUE(client.exec("session name scripted").ok);
        const auto totals = client.feedAll(first, /*batch=*/256);
        ASSERT_EQ(totals.accepted, first.size());
        const auto reply = client.exec("session suspend");
        ASSERT_TRUE(reply.ok) << reply.text();
    }
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(daemon.socket()));
        const auto reply = client.exec("session resume scripted");
        ASSERT_TRUE(reply.ok) << reply.text();

        client.setChainCycle(first.back().cycle);
        const auto totals = client.feedAll(second, /*batch=*/256);
        ASSERT_EQ(totals.accepted, second.size());
        ASSERT_TRUE(client.exec("drain").ok);
        sessionSignature(client).expectEqual(golden, "scripted resume");
    }
    std::remove(scriptPath.c_str());
}

TEST(ServiceLifecycleTest, TamperedManifestFailsClosedOnResume)
{
    // A manifest counter tampered to exceed uint64 must produce an
    // "error:" reply on resume — the fail-closed promise — not an
    // escaping std::out_of_range that kills the daemon.
    TestDaemon daemon;
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(daemon.socket()));
        configureSession(client, configScript());
        ASSERT_TRUE(client.exec("session name tamper").ok);
        client.feedAll(stream(/*seed=*/17, /*count=*/1'000),
                       /*batch=*/256);
        ASSERT_TRUE(client.exec("session suspend").ok);
    }
    const auto path =
        Session::manifestPath(daemon.options.stateDir, "tamper");
    std::string manifest = readFileBytes(path);
    const auto pos = manifest.find("offered ");
    ASSERT_NE(pos, std::string::npos);
    const auto eol = manifest.find('\n', pos);
    manifest.replace(pos, eol - pos,
                     "offered 99999999999999999999999");
    std::ofstream(path, std::ios::binary) << manifest;

    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    const auto reply = client.exec("session resume tamper");
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.text().find("out of range"), std::string::npos)
        << reply.text();
    // The daemon survived and the session is still usable.
    EXPECT_TRUE(client.exec("session status").ok);
}

TEST(ServiceLifecycleTest, TwinFleetTracksTheMainBoard)
{
    const auto raw = stream(/*seed=*/15, /*count=*/6'000);

    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    configureSession(client, configScript());
    ASSERT_TRUE(client.exec("fleet add shadow 7").ok);

    client.feedAll(raw, /*batch=*/256);
    ASSERT_TRUE(client.exec("drain").ok);

    const auto list = client.exec("fleet list");
    ASSERT_TRUE(list.ok);
    EXPECT_NE(list.text().find("'shadow' seed 7 health healthy"),
              std::string::npos)
        << list.text();

    // Same config, same stream: the twin's stats must equal the main
    // board's (that equality is what makes it a valid resync donor).
    const auto main_stats = client.exec("stats");
    const auto twin_stats = client.exec("fleet stats 0");
    ASSERT_TRUE(main_stats.ok);
    ASSERT_TRUE(twin_stats.ok);
    EXPECT_EQ(main_stats.text(), twin_stats.text());
}

TEST(ServiceLifecycleTest, ResumeOfUnknownSessionFailsClosed)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    const auto reply = client.exec("session resume never-saved");
    EXPECT_FALSE(reply.ok);
    // The session is still usable after the failed resume.
    configureSession(client, configScript());
    EXPECT_TRUE(client.exec("session status").ok);
}

} // namespace
} // namespace memories::service
