/**
 * @file
 * One grammar everywhere: every extension family a service session
 * registers (stream ingest, campaign, session lifecycle, daemon
 * control) must appear in `help`, in-process and over the wire, so
 * interactive, campaign, and service consoles cannot drift apart.
 */

#include <gtest/gtest.h>

#include "servicetest.hh"

#include "service/session.hh"

namespace memories::service
{
namespace
{

using namespace testing;

void
expectFamilies(const std::string &help,
               const std::vector<std::string> &families,
               const std::string &what)
{
    for (const auto &family : families)
        EXPECT_NE(help.find(family), std::string::npos)
            << what << ": family '" << family
            << "' missing from help: " << help;
}

TEST(ServiceConsoleTest, SessionHelpListsAllRegisteredFamilies)
{
    SessionOptions options;
    options.stateDir = uniquePath("iesserv-console-state");
    Session session(options, "t0");
    const auto help = session.execute("help");
    // Built-ins first (the console's own grammar)...
    expectFamilies(help, {"node", "buffer", "throughput", "init",
                          "stats", "counters", "save-state"},
                   "builtins");
    // ...then every family Session plugs in via registerCommand.
    expectFamilies(help,
                   {"campaign", "drain", "feed", "fleet", "session",
                    "stream"},
                   "session extensions");
}

TEST(ServiceConsoleTest, WireHelpAddsTheServerFamily)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    EXPECT_NE(client.greeting().find("iesserv ready session"),
              std::string::npos)
        << client.greeting();

    const auto help = client.exec("help");
    ASSERT_TRUE(help.ok);
    // The daemon serves the session grammar PLUS its own control
    // family; nothing a session registered may be shadowed or lost.
    expectFamilies(help.text(),
                   {"campaign", "drain", "feed", "fleet", "server",
                    "session", "stream"},
                   "wire");
}

TEST(ServiceConsoleTest, BuiltinsCannotBeShadowedOverTheWire)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    // `init` before any node config is a builtin-path error, proving
    // the request went to the builtin, not to any extension.
    const auto reply = client.exec("init");
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.text().find("error:"), std::string::npos);
}

TEST(ServiceConsoleTest, ServerStatusAndMetricsRespond)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));

    const auto status = client.exec("server status");
    ASSERT_TRUE(status.ok) << status.text();
    EXPECT_NE(status.text().find("sessions"), std::string::npos);

    // Metrics need a closed telemetry window; issue enough requests.
    for (int i = 0; i < 20; ++i)
        client.exec("session status");
    const auto metrics = client.exec("server metrics");
    ASSERT_TRUE(metrics.ok) << metrics.text();
    EXPECT_NE(metrics.text().find("serv.sessions.opened"),
              std::string::npos)
        << metrics.text();
}

} // namespace
} // namespace memories::service
