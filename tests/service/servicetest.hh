/**
 * @file
 * Shared fixtures for the IESSERV test tier: a daemon on a unique
 * /tmp socket, the canonical v2 wire stream (pack/unpack round trip),
 * and the golden-run signature a session-fed board must match
 * byte-for-byte (counters text, stats text, checkpoint bytes).
 */

#ifndef MEMORIES_TESTS_SERVICE_SERVICETEST_HH
#define MEMORIES_TESTS_SERVICE_SERVICETEST_HH

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bus/bus6xx.hh"
#include "bus/transaction.hh"
#include "ies/console.hh"
#include "oracle/stimulus.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "trace/record.hh"

namespace memories::service::testing
{

/** A /tmp path unique to this process and call site. */
inline std::string
uniquePath(const std::string &stem)
{
    static int counter = 0;
    return "/tmp/" + stem + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(++counter);
}

/** The board configuration every service test speaks over the wire. */
inline std::vector<std::string>
configScript()
{
    return {
        "node 0 cache 2MB 4 128B LRU",
        "node 0 cpus 0,1,2,3",
        "node 1 cache 2MB 4 128B LRU",
        "node 1 cpus 4,5,6,7",
        "buffer 64",
        "throughput 42",
        "init",
    };
}

/** Seeded stimulus stream (128B-aligned addrs, nondecreasing cycles). */
inline std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count, unsigned cpus = 8)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = cpus;
    return oracle::StimulusGen(p).generate();
}

/**
 * The canonical v2 stream: what a board actually sees after the wire
 * pack/unpack round trip (traceIds dropped, cycles rebuilt from the
 * delta chain). Stimulus streams survive this losslessly except for
 * traceId, but the golden run must feed EXACTLY the bytes the session
 * feeds, so both sides go through the same canonicalization.
 */
inline std::vector<bus::BusTransaction>
canonical(const std::vector<bus::BusTransaction> &txns, Cycle base = 0)
{
    std::vector<bus::BusTransaction> out;
    out.reserve(txns.size());
    Cycle prev = base;
    for (const auto &txn : txns) {
        const auto rec = trace::BusRecord::pack(txn, prev);
        prev = txn.cycle;
        out.push_back(rec.unpack(out.empty() ? base
                                             : out.back().cycle));
    }
    return out;
}

/**
 * Strip one trailing newline: the wire frame is line-based, so a
 * console reply's terminating '\n' is framing, not content.
 */
inline std::string
chomp(std::string text)
{
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    return text;
}

inline std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * Byte-level witness of a board's post-run state: the console's
 * `counters` and `stats` text plus the IESCKPT container bytes
 * (counters, directories, buffer, health — see docs/FORMATS.md).
 * Two boards with equal signatures went through identical histories.
 */
struct RunSignature
{
    std::string counters;
    std::string stats;
    std::string ckptBytes;

    void expectEqual(const RunSignature &other,
                     const std::string &what) const
    {
        EXPECT_EQ(counters, other.counters) << what << ": counters";
        EXPECT_EQ(stats, other.stats) << what << ": stats";
        EXPECT_EQ(ckptBytes == other.ckptBytes, true)
            << what << ": checkpoint bytes differ";
    }
};

/**
 * Golden run: the in-process batch path. Configure a console with the
 * same script a session sends, feedBatch the canonical stream in one
 * call, drain, and capture the signature.
 */
inline RunSignature
goldenRun(const std::vector<std::string> &script,
          const std::vector<bus::BusTransaction> &canon)
{
    bus::Bus6xx bus;
    ies::Console console(bus);
    for (const auto &line : script) {
        const auto reply = console.execute(line);
        EXPECT_EQ(reply.rfind("error:", 0), std::string::npos)
            << "golden config failed: " << line << " -> " << reply;
    }
    console.board()->feedBatch(canon);
    console.board()->drainAll();

    RunSignature sig;
    sig.counters = chomp(console.execute("counters"));
    sig.stats = chomp(console.execute("stats"));
    const auto path = uniquePath("iesserv-golden") + ".ckpt";
    console.execute("save-state " + path);
    sig.ckptBytes = readFileBytes(path);
    std::remove(path.c_str());
    EXPECT_FALSE(sig.ckptBytes.empty()) << "golden checkpoint missing";
    return sig;
}

/** The same signature, taken over the wire from a live session. */
inline RunSignature
sessionSignature(ServiceClient &client)
{
    RunSignature sig;
    sig.counters = chomp(client.exec("counters").text());
    sig.stats = chomp(client.exec("stats").text());
    const auto path = uniquePath("iesserv-session") + ".ckpt";
    const auto saved = client.exec("save-state " + path);
    EXPECT_TRUE(saved.ok) << saved.text();
    sig.ckptBytes = readFileBytes(path);
    std::remove(path.c_str());
    EXPECT_FALSE(sig.ckptBytes.empty()) << "session checkpoint missing";
    return sig;
}

/** Send a config script over the wire, asserting every line is ok. */
inline void
configureSession(ServiceClient &client,
                 const std::vector<std::string> &script)
{
    for (const auto &line : script) {
        const auto reply = client.exec(line);
        ASSERT_TRUE(reply.ok)
            << "config line rejected: " << line << " -> "
            << reply.text();
    }
}

/** Poll @p pred every 5ms until true or @p timeout_ms elapses. */
template <typename Pred>
inline bool
waitFor(Pred pred, int timeout_ms = 5000)
{
    for (int waited = 0; waited < timeout_ms; waited += 5) {
        if (pred())
            return true;
        ::usleep(5000);
    }
    return pred();
}

/** A daemon on a unique socket, started in the ctor, torn down after. */
struct TestDaemon
{
    DaemonOptions options;
    std::unique_ptr<Daemon> daemon;

    explicit TestDaemon(std::size_t max_sessions = 16,
                        std::size_t window_requests = 8)
    {
        options.socketPath = uniquePath("iesserv-test") + ".sock";
        options.stateDir = uniquePath("iesserv-state");
        options.maxSessions = max_sessions;
        options.windowRequests = window_requests;
        daemon = std::make_unique<Daemon>(options);
        daemon->start();
    }

    ~TestDaemon()
    {
        daemon->stop();
    }

    Daemon &get() { return *daemon; }
    const std::string &socket() const { return options.socketPath; }
};

} // namespace memories::service::testing

#endif // MEMORIES_TESTS_SERVICE_SERVICETEST_HH
