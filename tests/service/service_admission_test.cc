/**
 * @file
 * Admission-control tier: paced sessions price every feed line with
 * the credit-paced buffer's admission probe. An over-rate client is
 * back-pressured — credits exhaust, the daemon clamps or refuses the
 * line, nothing is dropped, lost_inflight stays 0 — while a
 * concurrent in-rate session is entirely unaffected (its board stays
 * byte-identical to its solo golden run).
 */

#include <gtest/gtest.h>

#include "servicetest.hh"

#include <thread>

#include "trace/record.hh"

namespace memories::service
{
namespace
{

using namespace testing;

std::vector<std::string>
tinyBufferScript()
{
    return {
        "node 0 cache 2MB 4 128B LRU",
        "node 0 cpus 0,1,2,3",
        "buffer 4",
        "throughput 42",
        "init",
    };
}

/** One feed line of records at the given cycles, chained from prev. */
std::string
feedLine(const std::vector<Cycle> &cycles, Cycle &prev)
{
    std::string line = "feed";
    std::uint64_t addr = 0x10000;
    for (const Cycle c : cycles) {
        bus::BusTransaction txn;
        txn.addr = addr += 128;
        txn.cycle = c;
        txn.op = bus::BusOp::Read;
        txn.cpu = 0;
        line += ' ';
        line += encodeRecordHex(trace::BusRecord::pack(txn, prev).raw);
        prev = c;
    }
    return line;
}

TEST(ServiceAdmissionTest, CreditsExhaustThenRecoverWithoutDrops)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    configureSession(client, tinyBufferScript());

    Cycle prev = 0;
    // Fill the 4-slot buffer with a same-cycle burst: all admitted.
    auto reply = client.exec(feedLine({0, 0, 0, 0}, prev));
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.lines[0], "fed 4 accepted 4 of 4");

    // Buffer full, no credits earned at cycle 0: the probe refuses the
    // line outright. Nothing was pushed, so nothing can be dropped.
    reply = client.exec(feedLine({0}, prev));
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.lines[0], "fed 0 accepted 0 of 1");

    // 240 cycles at 42% bank enough credit to retire the backlog; the
    // re-sent record is admitted on the next offer.
    reply = client.exec(feedLine({240}, prev));
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.lines[0], "fed 1 accepted 1 of 1");

    const auto status = client.exec("stream status");
    ASSERT_TRUE(status.ok);
    EXPECT_NE(status.text().find("offered 6 attempted 5 accepted 5"),
              std::string::npos)
        << status.text();
    EXPECT_NE(status.text().find(
                  "backpressure 1 overflow-drops 0 feed-lines 3"),
              std::string::npos)
        << status.text();

    // The board-side invariant behind "back-pressured, never dropped".
    const auto stats = client.exec("stats");
    ASSERT_TRUE(stats.ok);
    EXPECT_NE(stats.text().find("lost-inflight 0"), std::string::npos)
        << stats.text();
}

TEST(ServiceAdmissionTest, OverRateClientDoesNotPerturbInRatePeer)
{
    const auto overrate = stream(/*seed=*/21, /*count=*/8'000);
    const auto inrate = stream(/*seed=*/22, /*count=*/8'000);
    const auto golden = goldenRun(configScript(), canonical(inrate));

    TestDaemon daemon;

    // Session A: a tiny buffer and huge offered batches — every line
    // is clamped to what admission allows at the head cycle.
    auto tight = configScript();
    tight[4] = "buffer 12";
    ServiceClient a;
    ASSERT_TRUE(a.connect(daemon.socket()));
    configureSession(a, tight);

    // Session B: the standard in-rate configuration.
    ServiceClient b;
    ASSERT_TRUE(b.connect(daemon.socket()));
    configureSession(b, configScript());

    FeedTotals ta, tb;
    std::thread feedA([&] { ta = a.feedAll(overrate, /*batch=*/512); });
    std::thread feedB([&] { tb = b.feedAll(inrate, /*batch=*/256); });
    feedA.join();
    feedB.join();

    // A was throttled hard (many more lines than offered/batch), yet
    // everything eventually landed and nothing was dropped.
    EXPECT_EQ(ta.accepted, ta.offered);
    EXPECT_GT(ta.feedLines, 4 * (overrate.size() / 512))
        << "expected heavy admission clamping";
    const auto status = a.exec("stream status");
    ASSERT_TRUE(status.ok);
    EXPECT_NE(status.text().find("overflow-drops 0"),
              std::string::npos)
        << status.text();
    const auto stats = a.exec("stats");
    ASSERT_TRUE(stats.ok);
    EXPECT_NE(stats.text().find("lost-inflight 0"), std::string::npos);

    // B never noticed: byte-identical to its solo golden run.
    EXPECT_EQ(tb.accepted, tb.offered);
    ASSERT_TRUE(b.exec("drain").ok);
    sessionSignature(b).expectEqual(golden, "in-rate peer");
}

} // namespace
} // namespace memories::service
