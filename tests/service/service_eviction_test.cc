/**
 * @file
 * Eviction tier: sessions die every way a tenant can die — abrupt
 * socket drop, SIGKILLed client process, operator `server evict`, and
 * the health ladder's quarantine-without-donor — and in every case
 * the daemon reclaims the boards, concurrent sessions stay
 * byte-exact, and a checkpointed session still resumes identically
 * after reconnecting. The quarantine-with-donor path must instead
 * resync in place and keep serving.
 */

#include <gtest/gtest.h>

#include "servicetest.hh"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "trace/record.hh"

namespace memories::service
{
namespace
{

using namespace testing;

TEST(ServiceEvictionTest, SocketDropReclaimsBoardsAndPeersStayExact)
{
    const auto survivor_stream = stream(/*seed=*/31, /*count=*/12'000);
    const auto golden =
        goldenRun(configScript(), canonical(survivor_stream));

    TestDaemon daemon;

    // Session C: feed half, checkpoint-suspend. It must survive the
    // chaos below and resume byte-identically.
    const std::vector<bus::BusTransaction> c_first(
        survivor_stream.begin(), survivor_stream.begin() + 6'000);
    const std::vector<bus::BusTransaction> c_second(
        survivor_stream.begin() + 6'000, survivor_stream.end());
    {
        ServiceClient c;
        ASSERT_TRUE(c.connect(daemon.socket()));
        configureSession(c, configScript());
        ASSERT_TRUE(c.exec("session name keeper").ok);
        ASSERT_EQ(c.feedAll(c_first, 256).accepted, c_first.size());
        ASSERT_TRUE(c.exec("session suspend").ok);
    }

    // Session A dies mid-stream: no quit, the fd just vanishes.
    ServiceClient a;
    ASSERT_TRUE(a.connect(daemon.socket()));
    configureSession(a, configScript());
    a.feedAll(stream(/*seed=*/32, /*count=*/2'000), 256);
    a.drop();

    // Session B runs its whole stream to completion regardless.
    ServiceClient b;
    ASSERT_TRUE(b.connect(daemon.socket()));
    configureSession(b, configScript());
    ASSERT_EQ(b.feedAll(survivor_stream, 256).accepted,
              survivor_stream.size());
    ASSERT_TRUE(b.exec("drain").ok);
    sessionSignature(b).expectEqual(golden, "survivor B");
    b.close();

    // The daemon noticed the drop and reclaimed A's slot.
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsActive() == 0; }))
        << "dropped session never reclaimed; active="
        << daemon.get().sessionsActive();
    EXPECT_EQ(daemon.get().sessionsOpened(), 3u);

    // The checkpointed session resumes identically after reconnect.
    ServiceClient c;
    ASSERT_TRUE(c.connect(daemon.socket()));
    ASSERT_TRUE(c.exec("session resume keeper").ok);
    c.setChainCycle(c_first.back().cycle);
    ASSERT_EQ(c.feedAll(c_second, 256).accepted, c_second.size());
    ASSERT_TRUE(c.exec("drain").ok);
    sessionSignature(c).expectEqual(golden, "resumed keeper");
}

TEST(ServiceEvictionTest, SigkilledClientIsReclaimedAndDaemonServesOn)
{
    // Generated before fork so the child only packs and sends.
    const auto victim_stream = stream(/*seed=*/33, /*count=*/200'000);

    TestDaemon daemon;
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: never return into gtest (_exit skips destructors,
        // exactly like a real client machine going away).
        ServiceClient victim;
        if (!victim.connect(daemon.socket()))
            ::_exit(2);
        for (const auto &line : configScript())
            if (!victim.exec(line).ok)
                ::_exit(3);
        victim.feedAll(victim_stream, /*batch=*/64);
        ::_exit(0);
    }

    // Wait until the child is provably mid-stream, then kill -9 it.
    ASSERT_TRUE(waitFor([&] { return daemon.get().refsAccepted() > 0; }))
        << "child never started feeding";
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child finished the stream before the kill landed";

    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsActive() == 0; }))
        << "killed session never reclaimed";

    // The daemon is unharmed: a fresh session works end to end.
    const auto raw = stream(/*seed=*/34, /*count=*/4'000);
    const auto golden = goldenRun(configScript(), canonical(raw));
    ServiceClient after;
    ASSERT_TRUE(after.connect(daemon.socket()));
    configureSession(after, configScript());
    ASSERT_EQ(after.feedAll(raw, 256).accepted, raw.size());
    ASSERT_TRUE(after.exec("drain").ok);
    sessionSignature(after).expectEqual(golden, "post-kill session");
}

TEST(ServiceEvictionTest, ServerEvictDisconnectsVictimAndFreesSlot)
{
    TestDaemon daemon;

    ServiceClient victim;
    ASSERT_TRUE(victim.connect(daemon.socket()));
    configureSession(victim, configScript());
    ASSERT_TRUE(victim.exec("session name victim").ok);
    victim.feedAll(stream(/*seed=*/35, /*count=*/2'000), 256);

    ServiceClient admin;
    ASSERT_TRUE(admin.connect(daemon.socket()));
    const auto reply = admin.exec("server evict victim");
    ASSERT_TRUE(reply.ok) << reply.text();
    EXPECT_NE(reply.text().find("evicting session 'victim'"),
              std::string::npos)
        << reply.text();

    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsEvicted() == 1; }));
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsActive() == 1; }));
    // The victim's connection is gone.
    EXPECT_FALSE(victim.exec("session status").ok);
    // Evicting an unknown session is an error, not a crash.
    EXPECT_FALSE(admin.exec("server evict nobody-here").ok);
    EXPECT_TRUE(admin.exec("server status").ok);
}

/**
 * The quarantine recipe from the board-fault tier: a 4-entry buffer
 * with the health machine armed so two overflow storms quarantine the
 * board. Raw mode (pace off) lets the overflows actually happen.
 */
std::vector<std::string>
quarantineScript()
{
    return {
        "node 0 cache 2MB 4 128B LRU",
        "node 0 cpus 0,1,2,3",
        "buffer 4",
        "throughput 42",
        "health on",
        "health degrade-window 100",
        "health backoff-limit 1",
        "health quarantine-storms 2",
        "init",
    };
}

/** One same-cycle record at an even line index (never sampled out). */
std::string
overflowFeedLine(std::uint64_t index, Cycle &prev)
{
    bus::BusTransaction txn;
    txn.addr = index * 256;
    txn.cycle = 0;
    txn.op = bus::BusOp::Read;
    txn.cpu = 0;
    std::string line = "feed ";
    line += encodeRecordHex(trace::BusRecord::pack(txn, prev).raw);
    prev = txn.cycle;
    return line;
}

TEST(ServiceEvictionTest, QuarantineWithHealthyTwinResyncsInPlace)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    configureSession(client, quarantineScript());
    ASSERT_TRUE(client.exec("stream pace off").ok);

    Cycle prev = 0;
    std::uint64_t index = 0;
    // Fill the buffer, then storm once: the board degrades.
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(client.exec(overflowFeedLine(index++, prev)).ok);

    // A donor twin added NOW starts with an empty buffer, so the
    // remaining overflows hurt only the main board.
    ASSERT_TRUE(client.exec("fleet add donor 1").ok);

    // Two sheds, then storm two: quarantine — and the ladder resyncs
    // from the healthy twin instead of evicting.
    std::string last;
    for (int i = 0; i < 3; ++i) {
        const auto reply = client.exec(overflowFeedLine(index++, prev));
        ASSERT_TRUE(reply.ok) << reply.text();
        last = reply.text();
    }
    EXPECT_NE(last.find("resynced from twin 0 'donor'"),
              std::string::npos)
        << last;

    const auto status = client.exec("stream status");
    ASSERT_TRUE(status.ok);
    EXPECT_NE(status.text().find("resyncs 1"), std::string::npos)
        << status.text();
    // Back on the ladder's Healthy rung; the session keeps serving.
    const auto health = client.exec("health status");
    ASSERT_TRUE(health.ok);
    EXPECT_NE(health.text().find("healthy"), std::string::npos)
        << health.text();
    EXPECT_EQ(daemon.get().sessionsEvicted(), 0u);
}

TEST(ServiceEvictionTest, QuarantineWithoutTwinEvictsTheSession)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));
    configureSession(client, quarantineScript());
    ASSERT_TRUE(client.exec("stream pace off").ok);

    Cycle prev = 0;
    std::uint64_t index = 0;
    // Storm to quarantine with no donor: the feed that tips the board
    // over comes back as an error naming the eviction.
    std::string last;
    bool evicted_reply = false;
    for (int i = 0; i < 12 && !evicted_reply; ++i) {
        const auto reply = client.exec(overflowFeedLine(index++, prev));
        last = reply.text();
        evicted_reply = !reply.ok;
    }
    ASSERT_TRUE(evicted_reply) << "board never quarantined: " << last;
    EXPECT_NE(last.find("quarantined"), std::string::npos) << last;
    EXPECT_NE(last.find("evicted"), std::string::npos) << last;

    // The daemon closed the session and counted the eviction.
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsEvicted() == 1; }));
    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsActive() == 0; }));
    EXPECT_FALSE(client.exec("stats").ok);

    // Other tenants are untouched: a new session still works.
    ServiceClient after;
    ASSERT_TRUE(after.connect(daemon.socket()));
    configureSession(after, configScript());
    EXPECT_TRUE(after.exec("stats").ok);
}

} // namespace
} // namespace memories::service
