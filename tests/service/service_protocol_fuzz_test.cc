/**
 * @file
 * Wire-protocol fuzz: the console fuzz corpus (and seeded token soup
 * spiked with the service families) fired at a live daemon over a
 * real socket. Every request must come back as a correctly framed
 * reply on a still-usable connection; oversize lines may cost the
 * offender its connection but never the daemon; and after all of it a
 * clean configure-feed-drain session still works.
 */

#include <gtest/gtest.h>

#include "servicetest.hh"

#include <sys/socket.h>

#include "common/random.hh"

namespace memories::service
{
namespace
{

using namespace testing;

TEST(ServiceProtocolFuzzTest, GarbageRequestsAlwaysGetFramedReplies)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));

    // The console fuzz corpus, plus service-grammar abuse the
    // in-process tier cannot express (feed framing, session/server
    // misuse, hex garbage).
    const std::string garbage[] = {
        "",
        "   ",
        "node",
        "node x cache",
        "node 0 cache huge 4 128B",
        "node 99999999 cache 2MB 4 128B",
        "node 0 cpus",
        "node 0 cpus ,,,",
        "buffer",
        "buffer -1",
        "throughput 0",
        "capture",
        "init init init",
        "stats now please",
        "dump-trace",
        "save-state",
        "load-state /definitely/not/there",
        "ckpt",
        "ckpt save",
        "ckpt frobnicate state.ckpt",
        "script",
        "\t\tnode\t0",
        "unknown-command with args",
        "fault arm not-a-seed",
        "health mystery-knob 7",
        "prof start not-a-count",
        "campaign start somedir notanumber 500",
        // Service-family abuse.
        "feed",
        "feed zzzz",
        "feed 0123",
        "feed 0123456789abcdeg",
        "feed 0123456789ABCDEF", // upper case is rejected
        "feed 0123456789abcdef extra-garbage",
        "drain now",
        "stream",
        "stream pace sideways",
        "stream replay /definitely/not/there.ies",
        "stream frobnicate",
        "fleet add a b c d",
        "fleet counters 99",
        "fleet resync",
        // Digits-only but > uint64: must come back as a framed error,
        // never as a std::out_of_range escaping the serve thread.
        "fleet counters 99999999999999999999999",
        "fleet stats 99999999999999999999999",
        "fleet add twin 99999999999999999999999",
        "buffer 99999999999999999999999",
        "throughput 99999999999999999999999",
        "prof start 99999999999999999999999",
        "session",
        "session name",
        "session name ../escape",
        "session name " + std::string(100, 'x'),
        "session suspend", // no board yet: fails, stays connected
        "session resume",
        "session resume /definitely/not/there",
        "session frobnicate",
        "server evict",
        "server evict nobody",
        "server frobnicate",
    };
    for (const auto &cmd : garbage) {
        const Reply reply = client.exec(cmd);
        ASSERT_TRUE(client.connected())
            << "connection died on: " << cmd;
        // Framed err or ok — a transport failure would have reported
        // a "transport:" line and dropped the connection above.
        if (!reply.ok) {
            EXPECT_FALSE(reply.lines.empty()) << "cmd: " << cmd;
        }
    }
    EXPECT_TRUE(client.exec("session status").ok);
}

TEST(ServiceProtocolFuzzTest, RandomTokenSoupOverTheSocket)
{
    TestDaemon daemon;
    ServiceClient client;
    ASSERT_TRUE(client.connect(daemon.socket()));

    Rng rng(77);
    const char *words[] = {
        "node",   "0",       "cache",  "2MB",    "4",
        "128B",   "cpus",    "init",   "stats",  "LRU",
        "->",     "*",       "0x10",   "-5",     "reset",
        "fault",  "health",  "arm",    "load",   "on",
        "ckpt",   "info",    "prof",   "start",  "dump",
        "feed",   "drain",   "stream", "fleet",  "session",
        "server", "suspend", "resume", "evict",  "pace",
        "status", "add",     "off",    "replay", "0123456789abcdef",
    };
    for (int i = 0; i < 400; ++i) {
        std::string cmd;
        const auto len = 1 + rng.nextBounded(6);
        for (std::uint64_t w = 0; w < len; ++w) {
            cmd += words[rng.nextBounded(std::size(words))];
            cmd += ' ';
        }
        client.exec(cmd);
        ASSERT_TRUE(client.connected())
            << "connection died on: " << cmd;
    }
    // The daemon survived and the session is still coherent.
    EXPECT_TRUE(client.exec("server status").ok);
}

TEST(ServiceProtocolFuzzTest, OutOfRangeReplyCountIsGarbageFraming)
{
    // A frame head whose count token is digits-only but > uint64 is
    // garbage framing: readReply must return nullopt (its documented
    // contract), not throw std::out_of_range at the caller.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    LineChannel reader(fds[0]);
    LineChannel writer(fds[1]);
    ASSERT_TRUE(writer.writeAll("ok 99999999999999999999999\n"));
    writer.shutdownBoth();
    EXPECT_FALSE(reader.readReply().has_value());
}

TEST(ServiceProtocolFuzzTest, OversizeLineCostsTheConnectionNotTheDaemon)
{
    TestDaemon daemon;
    ServiceClient hog;
    ASSERT_TRUE(hog.connect(daemon.socket()));

    // Over the 1 MiB line bound: the daemon refuses to buffer it and
    // hangs up on the offender.
    const std::string huge = "feed " + std::string(2 * maxLineBytes, 'a');
    const Reply reply = hog.exec(huge);
    EXPECT_FALSE(reply.ok);

    EXPECT_TRUE(waitFor(
        [&] { return daemon.get().sessionsActive() == 0; }));

    // Everyone else is fine.
    ServiceClient after;
    ASSERT_TRUE(after.connect(daemon.socket()));
    configureSession(after, configScript());
    EXPECT_TRUE(after.exec("stats").ok);
}

} // namespace
} // namespace memories::service
