/**
 * @file
 * Property test: MESI coherence invariants across the host machine's
 * L2 caches under randomized shared traffic, checked repeatedly
 * during a run:
 *
 *  - single-writer: at most one hierarchy holds a line
 *    Modified/Exclusive;
 *  - writer exclusion: if some hierarchy holds M or E, no other
 *    hierarchy holds the line in any valid state.
 */

#include <gtest/gtest.h>

#include "host/machine.hh"
#include "protocol/state.hh"
#include "workload/synthetic.hh"

namespace memories
{
namespace
{

using protocol::LineState;

host::HostConfig
tinyHost(unsigned cpus)
{
    host::HostConfig cfg;
    cfg.numCpus = cpus;
    cfg.l1 = cache::CacheConfig{4 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{32 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.cyclesPerRef = 4;
    return cfg;
}

void
checkInvariants(host::HostMachine &machine, std::uint64_t footprint)
{
    for (Addr line = 0; line < footprint; line += 128) {
        const Addr addr = workload::workloadBaseAddr + line;
        unsigned owners = 0;
        unsigned sharers = 0;
        for (unsigned c = 0; c < machine.numCpus(); ++c) {
            const auto state =
                machine.cpu(c).hierarchy().busLevelState(addr);
            if (state == LineState::Modified ||
                state == LineState::Exclusive)
                ++owners;
            else if (state != LineState::Invalid)
                ++sharers;
        }
        ASSERT_LE(owners, 1u) << "multiple owners of line " << line;
        if (owners == 1) {
            ASSERT_EQ(sharers, 0u)
                << "owner coexists with sharers at line " << line;
        }
    }
}

class CoherenceProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, double, int>>
{
};

TEST_P(CoherenceProperty, MesiInvariantsHoldUnderRandomTraffic)
{
    const auto [cpus, write_frac, seed] = GetParam();
    constexpr std::uint64_t footprint = 64 * KiB; // heavy contention
    workload::UniformWorkload wl(
        cpus, footprint, write_frac,
        static_cast<std::uint64_t>(seed));
    host::HostMachine machine(tinyHost(cpus), wl);

    for (int round = 0; round < 8; ++round) {
        machine.run(5000);
        checkInvariants(machine, footprint);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, CoherenceProperty,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(11, 42)));

TEST(CoherencePropertyTest, ReadOnlyTrafficNeverCreatesOwnersAfterShare)
{
    // With two CPUs reading the same region, once both have read a
    // line neither may hold it Exclusive.
    workload::UniformWorkload wl(2, 8 * KiB, 0.0, 5);
    host::HostMachine machine(tinyHost(2), wl);
    machine.run(40000);

    for (Addr line = 0; line < 8 * KiB; line += 128) {
        const Addr addr = workload::workloadBaseAddr + line;
        const auto s0 = machine.cpu(0).hierarchy().busLevelState(addr);
        const auto s1 = machine.cpu(1).hierarchy().busLevelState(addr);
        const bool both_valid = s0 != LineState::Invalid &&
                                s1 != LineState::Invalid;
        if (both_valid) {
            EXPECT_EQ(s0, LineState::Shared);
            EXPECT_EQ(s1, LineState::Shared);
        }
        EXPECT_NE(s0, LineState::Modified);
        EXPECT_NE(s1, LineState::Modified);
    }
}

} // namespace
} // namespace memories
