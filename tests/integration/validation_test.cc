/**
 * @file
 * The paper's validation methodology, §4.1: "A trace-driven C
 * simulator ... was used as one of the methods to validate the
 * MemorIES design." Same trace, same geometry -> the board's node
 * controller and the detailed software simulator must agree exactly
 * on hits, misses, fills and evictions.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ies/board.hh"
#include "sim/detailed.hh"

namespace memories
{
namespace
{

std::vector<bus::BusTransaction>
makeTrace(std::uint64_t n, std::uint64_t seed, double footprint_lines)
{
    std::vector<bus::BusTransaction> trace;
    trace.reserve(n);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < n; ++i) {
        bus::BusTransaction txn;
        txn.addr =
            rng.nextBounded(static_cast<std::uint64_t>(footprint_lines))
            * 128;
        const auto roll = rng.nextBounded(100);
        if (roll < 55)
            txn.op = bus::BusOp::Read;
        else if (roll < 70)
            txn.op = bus::BusOp::ReadIfetch;
        else if (roll < 85)
            txn.op = bus::BusOp::Rwitm;
        else if (roll < 92)
            txn.op = bus::BusOp::DClaim;
        else
            txn.op = bus::BusOp::WriteBack;
        txn.cpu = static_cast<CpuId>(rng.nextBounded(8));
        txn.cycle = 10 * i;
        trace.push_back(txn);
    }
    return trace;
}

class ValidationTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{
};

TEST_P(ValidationTest, BoardMatchesDetailedSimulatorExactly)
{
    const auto [assoc, seed] = GetParam();
    const cache::CacheConfig geometry{2 * MiB, assoc, 128,
                                      cache::ReplacementPolicy::LRU};
    const auto trace = makeTrace(100000, seed + 1000, 1 << 16);

    // Board path: one node owning every CPU, drained unpaced.
    ies::NodeController node(0, [&] {
        ies::NodeConfig cfg;
        cfg.cache = geometry;
        cfg.cpus = {0, 1, 2, 3, 4, 5, 6, 7};
        return cfg;
    }());
    for (const auto &txn : trace)
        node.processLocal(txn, bus::SnoopResponse::None);

    // Detailed simulator path.
    sim::DetailedParams params;
    params.cache = geometry;
    sim::DetailedCacheSimulator simulator(params);
    for (const auto &txn : trace)
        simulator.process(txn);
    simulator.finish();

    // Aggregate the node's per-op hit/miss counters across the ops in
    // the trace.
    std::uint64_t node_hits = 0, node_misses = 0;
    for (auto op : {bus::BusOp::Read, bus::BusOp::ReadIfetch,
                    bus::BusOp::Rwitm, bus::BusOp::DClaim,
                    bus::BusOp::WriteBack}) {
        const std::string name{bus::busOpName(op)};
        node_hits += node.counters().valueByName("node0.local." + name +
                                                 ".hit");
        node_misses += node.counters().valueByName("node0.local." +
                                                   name + ".miss");
    }

    const auto sim_stats = simulator.stats();
    EXPECT_EQ(node_hits, sim_stats.hits);
    EXPECT_EQ(node_misses, sim_stats.misses);
    EXPECT_EQ(node.stats().fills, sim_stats.misses);
    EXPECT_EQ(node.stats().evictionsClean +
                  node.stats().evictionsDirty,
              sim_stats.evictions);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ValidationTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1, 2)));

} // namespace
} // namespace memories
