/**
 * @file
 * Failure injection: a hostile bus agent that randomly retries
 * tenures. The host must make forward progress (retries replay) and
 * the board's accounting invariants must hold — retried tenures are
 * dropped and their replays processed exactly once.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "host/machine.hh"
#include "ies/board.hh"
#include "ies/fanout.hh"
#include "workload/synthetic.hh"

namespace memories
{
namespace
{

/** Randomly retries a fraction of tenures (models a busy device). */
class RandomRetrier : public bus::BusSnooper
{
  public:
    RandomRetrier(double retry_prob, std::uint64_t seed)
        : prob_(retry_prob), rng_(seed)
    {
    }

    bus::SnoopResponse
    snoop(const bus::BusTransaction &txn) override
    {
        // Never retry a replay twice in a row: real devices drain.
        if (!txn.isRetryReplay && rng_.nextBool(prob_)) {
            ++retriesIssued_;
            return bus::SnoopResponse::Retry;
        }
        return bus::SnoopResponse::None;
    }

    std::string snooperName() const override { return "retrier"; }

    std::uint64_t retriesIssued() const { return retriesIssued_; }

  private:
    double prob_;
    Rng rng_;
    std::uint64_t retriesIssued_ = 0;
};

host::HostConfig
smallHost()
{
    host::HostConfig cfg;
    cfg.numCpus = 4;
    cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{64 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.cyclesPerRef = 4;
    return cfg;
}

TEST(RetryStormTest, HostMakesProgressUnderRetries)
{
    workload::UniformWorkload wl(4, 1 * MiB, 0.3, 3);
    host::HostMachine machine(smallHost(), wl);
    RandomRetrier retrier(0.3, 17);
    machine.bus().attach(&retrier);

    machine.run(50000);
    EXPECT_EQ(machine.totalStats().refs, 50000u);
    EXPECT_GT(retrier.retriesIssued(), 100u);
    EXPECT_EQ(machine.bus().stats().retries, retrier.retriesIssued());
}

TEST(RetryStormTest, BoardAccountingSurvivesRetries)
{
    workload::UniformWorkload wl(4, 1 * MiB, 0.3, 7);
    host::HostMachine machine(smallHost(), wl);
    RandomRetrier retrier(0.25, 23);
    machine.bus().attach(&retrier);

    ies::MemoriesBoard board(ies::makeUniformBoard(
        1, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(machine.bus());

    machine.run(50000);
    board.drainAll();

    const auto &g = board.globalCounters();
    const auto dropped =
        g.valueByName("global.tenures.dropped_retry");
    EXPECT_GT(dropped, 0u);
    EXPECT_EQ(g.valueByName("global.tenures.committed") + dropped +
                  g.valueByName("global.retries_posted"),
              g.valueByName("global.tenures.memory"));
}

TEST(RetryStormTest, EmulationMatchesRetryFreeRun)
{
    // Dropped-and-replayed tenures must leave the directories in the
    // same state a retry-free bus would produce: every completed
    // tenure is emulated exactly once.
    auto misses_with_retrier = [](bool with) {
        workload::UniformWorkload wl(4, 512 * KiB, 0.3, 11);
        host::HostMachine machine(smallHost(), wl);
        RandomRetrier retrier(0.3, 29);
        if (with)
            machine.bus().attach(&retrier);
        ies::MemoriesBoard board(ies::makeUniformBoard(
            1, 4,
            cache::CacheConfig{2 * MiB, 4, 128,
                               cache::ReplacementPolicy::LRU}));
        board.plugInto(machine.bus());
        machine.run(50000);
        board.drainAll();
        return board.node(0).stats().localMisses;
    };
    // The two runs see the same logical reference stream; retried
    // tenures replay identically, so directory contents and miss
    // counts match.
    EXPECT_EQ(misses_with_retrier(false), misses_with_retrier(true));
}

cache::CacheConfig
emulatedCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

TEST(RetryStormTest, FleetTapDropsExactlyTheRetriedTenures)
{
    // The fan-out tap must skip precisely the tenures the hostile
    // agent retried — no double-publish of replays, no silent loss.
    workload::UniformWorkload wl(4, 1 * MiB, 0.3, 13);
    host::HostMachine machine(smallHost(), wl);
    RandomRetrier retrier(0.25, 31);
    machine.bus().attach(&retrier);

    ies::ExperimentFleet fleet;
    fleet.addExperiment(ies::makeUniformBoard(1, 4, emulatedCache()), 1,
                        "a");
    fleet.addExperiment(ies::makeUniformBoard(1, 4, emulatedCache()), 2,
                        "b");
    fleet.attach(machine.bus());
    fleet.start(2);
    machine.run(50000);
    fleet.finish();

    EXPECT_GT(retrier.retriesIssued(), 100u);
    EXPECT_EQ(fleet.tapRetryDropped(), retrier.retriesIssued());
    // Every completed memory tenure was published exactly once.
    EXPECT_EQ(fleet.eventsPublished() + fleet.tapFiltered() +
                  fleet.tapRetryDropped(),
              machine.bus().stats().tenures);
}

TEST(RetryStormTest, FleetBoardMatchesSerialBoardUnderRetries)
{
    // Same host run twice with the identical retrier seed: once with a
    // board snooping the bus directly, once with the board behind the
    // fan-out tap. The replayed reference stream is identical, so the
    // emulated node must end bit-exact — same per-node counter bank —
    // even though the serial board also saw (and dropped) the retried
    // tenures the tap never forwards.
    auto node_counters = [](bool through_fleet) {
        workload::UniformWorkload wl(4, 512 * KiB, 0.3, 19);
        host::HostMachine machine(smallHost(), wl);
        RandomRetrier retrier(0.3, 37);
        machine.bus().attach(&retrier);

        std::vector<std::pair<std::string, std::uint64_t>> out;
        if (through_fleet) {
            ies::ExperimentFleet fleet;
            fleet.addExperiment(
                ies::makeUniformBoard(1, 4, emulatedCache()), 1, "only");
            fleet.attach(machine.bus());
            fleet.start(1);
            machine.run(50000);
            fleet.finish();
            for (const auto &s :
                 fleet.board(0).node(0).counters().snapshot())
                out.emplace_back(std::string(s.name), s.value);
        } else {
            ies::MemoriesBoard board(
                ies::makeUniformBoard(1, 4, emulatedCache()));
            board.plugInto(machine.bus());
            machine.run(50000);
            board.drainAll();
            for (const auto &s : board.node(0).counters().snapshot())
                out.emplace_back(std::string(s.name), s.value);
        }
        return out;
    };
    EXPECT_EQ(node_counters(false), node_counters(true));
}

} // namespace
} // namespace memories
