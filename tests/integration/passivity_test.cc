/**
 * @file
 * Passivity invariants (paper sections 3.3-3.4): under realistic load
 * the board must be entirely invisible to the host — identical host
 * cache contents and statistics with and without the board attached.
 */

#include <gtest/gtest.h>

#include "host/machine.hh"
#include "ies/board.hh"
#include "workload/synthetic.hh"

namespace memories
{
namespace
{

host::HostConfig
smallHost()
{
    host::HostConfig cfg;
    cfg.numCpus = 4;
    cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{128 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.cyclesPerRef = 4; // keep utilization in the paper's band
    return cfg;
}

host::HierarchyStats
runHost(bool with_board, std::uint64_t refs)
{
    workload::UniformWorkload wl(4, 4 * MiB, 0.3, 99);
    host::HostMachine machine(smallHost(), wl);
    std::unique_ptr<ies::MemoriesBoard> board;
    if (with_board) {
        board = std::make_unique<ies::MemoriesBoard>(
            ies::makeUniformBoard(4, 1,
                                  cache::CacheConfig{
                                      2 * MiB, 4, 128,
                                      cache::ReplacementPolicy::LRU}));
        board->plugInto(machine.bus());
    }
    machine.run(refs);
    if (board)
        board->drainAll();
    return machine.totalStats();
}

TEST(PassivityTest, HostStatsIdenticalWithAndWithoutBoard)
{
    const auto without = runHost(false, 100000);
    const auto with = runHost(true, 100000);
    EXPECT_EQ(without.refs, with.refs);
    EXPECT_EQ(without.l1Hits, with.l1Hits);
    EXPECT_EQ(without.l2Hits, with.l2Hits);
    EXPECT_EQ(without.l2Misses, with.l2Misses);
    EXPECT_EQ(without.l2Upgrades, with.l2Upgrades);
    EXPECT_EQ(without.writebacks, with.writebacks);
    EXPECT_EQ(without.snoopInvalidations, with.snoopInvalidations);
}

TEST(PassivityTest, BoardCannotInvalidateHostCaches)
{
    // Paper 3.4: when a line is replaced in the emulated L3, the board
    // cannot invalidate it below. Force an eviction in a tiny emulated
    // cache and check the host L2 still holds the line.
    workload::UniformWorkload wl(4, 4 * MiB, 0.0, 5);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeUniformBoard(
        1, 4,
        cache::CacheConfig{2 * MiB, 1, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(machine.bus());

    // Two addresses conflicting in the direct-mapped emulated cache
    // but not in the 4-way host L2.
    auto &cpu0 = machine.cpu(0);
    const Addr a = 0x0000, b = 2 * MiB;
    auto access = [&](Addr addr) {
        const auto res = cpu0.hierarchy().access(addr, false);
        if (res.need) {
            bus::BusTransaction txn;
            txn.addr = res.need->lineAddr;
            txn.op = res.need->op;
            txn.cpu = 0;
            const auto resp = machine.bus().issue(txn);
            cpu0.hierarchy().completeFill(*res.need, false, resp);
        }
        machine.bus().tick(100);
    };
    access(a);
    access(b); // evicts a from the emulated DM cache
    board.drainAll();

    EXPECT_EQ(board.node(0).probeState(a), protocol::LineState::Invalid);
    EXPECT_TRUE(cpu0.hierarchy().residentInL2(a)); // host unaffected
}

TEST(PassivityTest, SnoopInterfaceIsConstUnderNormalLoad)
{
    // The board's snoop response is None for every tenure at sane
    // utilization - it never asserts shared/modified lines.
    workload::UniformWorkload wl(4, 4 * MiB, 0.3, 11);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeUniformBoard(
        2, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(machine.bus());
    machine.run(100000);
    board.drainAll();
    EXPECT_EQ(board.retriesPosted(), 0u);
    // Bus-level interventions can only have come from host L2s: the
    // board never contributes shared/modified responses.
    // (Checked indirectly: retries are its only possible response.)
    SUCCEED();
}

} // namespace
} // namespace memories
