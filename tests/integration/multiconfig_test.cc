/**
 * @file
 * Multi-configuration emulation (Figure 4): several cache geometries
 * and protocols evaluated against identical traffic in a single run.
 */

#include <gtest/gtest.h>

#include "host/machine.hh"
#include "ies/board.hh"
#include "workload/oltp.hh"
#include "workload/synthetic.hh"

namespace memories
{
namespace
{

host::HostConfig
smallHost()
{
    host::HostConfig cfg;
    cfg.numCpus = 8;
    cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{128 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.cyclesPerRef = 4; // keep utilization in the paper's band
    return cfg;
}

TEST(MultiConfigTest, AssociativitySweepInOneRun)
{
    workload::UniformWorkload wl(8, 8 * MiB, 0.3, 21);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeMultiConfigBoard(
        {cache::CacheConfig{4 * MiB, 1, 128,
                            cache::ReplacementPolicy::LRU},
         cache::CacheConfig{4 * MiB, 2, 128,
                            cache::ReplacementPolicy::LRU},
         cache::CacheConfig{4 * MiB, 4, 128,
                            cache::ReplacementPolicy::LRU},
         cache::CacheConfig{4 * MiB, 8, 128,
                            cache::ReplacementPolicy::LRU}},
        8));
    board.plugInto(machine.bus());
    machine.run(300000);
    board.drainAll();

    // All four nodes saw identical traffic.
    const auto refs0 = board.node(0).stats().localRefs;
    for (std::size_t n = 1; n < 4; ++n)
        EXPECT_EQ(board.node(n).stats().localRefs, refs0);

    // Higher associativity at equal capacity should not be much worse
    // (uniform traffic: usually slightly better).
    const double dm = board.node(0).stats().missRatio();
    const double w8 = board.node(3).stats().missRatio();
    EXPECT_LE(w8, dm + 0.02);
}

TEST(MultiConfigTest, LineSizeSweep)
{
    // OLTP locality: larger lines prefetch neighbours within a page,
    // cutting the miss ratio at equal capacity.
    workload::OltpParams p;
    p.threads = 8;
    p.dbBytes = 32 * MiB;
    workload::OltpWorkload wl(p);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeMultiConfigBoard(
        {cache::CacheConfig{8 * MiB, 4, 128,
                            cache::ReplacementPolicy::LRU},
         cache::CacheConfig{8 * MiB, 4, 1024,
                            cache::ReplacementPolicy::LRU}},
        8));
    board.plugInto(machine.bus());
    machine.run(400000);
    board.drainAll();

    const double small_line = board.node(0).stats().missRatio();
    const double big_line = board.node(1).stats().missRatio();
    EXPECT_LT(big_line, small_line);
}

TEST(MultiConfigTest, ProtocolSweepChangesInterventionMix)
{
    // MOESI serves dirty lines cache-to-cache repeatedly (Owned);
    // with MESI the first remote read pushes the line to memory-clean
    // state. Two target machines, each with two nodes, same traffic.
    workload::UniformWorkload wl(8, 512 * KiB, 0.5, 33);
    host::HostMachine machine(smallHost(), wl);

    ies::BoardConfig cfg;
    for (unsigned machine_id = 0; machine_id < 2; ++machine_id) {
        for (unsigned n = 0; n < 2; ++n) {
            ies::NodeConfig node;
            node.cache = cache::CacheConfig{
                2 * MiB, 4, 128, cache::ReplacementPolicy::LRU};
            node.protocol = protocol::makeBuiltinTable(
                machine_id == 0 ? "MESI" : "MOESI");
            node.cpus = {static_cast<CpuId>(4 * n),
                         static_cast<CpuId>(4 * n + 1),
                         static_cast<CpuId>(4 * n + 2),
                         static_cast<CpuId>(4 * n + 3)};
            node.targetMachine = machine_id;
            cfg.nodes.push_back(std::move(node));
        }
    }
    ies::MemoriesBoard board(cfg);
    board.plugInto(machine.bus());
    machine.run(400000);
    board.drainAll();

    const auto mesi = board.node(0).stats().suppliedModified +
                      board.node(1).stats().suppliedModified;
    const auto moesi = board.node(2).stats().suppliedModified +
                       board.node(3).stats().suppliedModified;
    EXPECT_GT(moesi, mesi);
}

TEST(MultiConfigTest, ReplacementPolicySweep)
{
    // Zipf-hot traffic rewards LRU over Random at equal geometry.
    workload::ZipfWorkload wl(8, 1 << 16, 4096, 0.9, 0.2, 17);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeMultiConfigBoard(
        {cache::CacheConfig{4 * MiB, 4, 128,
                            cache::ReplacementPolicy::LRU},
         cache::CacheConfig{4 * MiB, 4, 128,
                            cache::ReplacementPolicy::Random}},
        8));
    board.plugInto(machine.bus());
    machine.run(400000);
    board.drainAll();

    const double lru = board.node(0).stats().missRatio();
    const double random = board.node(1).stats().missRatio();
    EXPECT_LT(lru, random + 0.005);
}

} // namespace
} // namespace memories
