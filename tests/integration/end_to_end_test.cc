/**
 * @file
 * End-to-end tests: workload -> host SMP -> 6xx bus -> MemorIES board,
 * checking the cross-module invariants the case studies rely on.
 */

#include <gtest/gtest.h>

#include "host/machine.hh"
#include "ies/board.hh"
#include "workload/oltp.hh"
#include "workload/synthetic.hh"

namespace memories
{
namespace
{

host::HostConfig
smallHost(unsigned cpus = 8)
{
    host::HostConfig cfg;
    cfg.numCpus = cpus;
    cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{128 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    // Four bus cycles per reference keeps utilization in the paper's
    // 2-20% band even with these deliberately small caches.
    cfg.cyclesPerRef = 4;
    return cfg;
}

cache::CacheConfig
l3Cache(std::uint64_t size = 2 * MiB)
{
    return cache::CacheConfig{size, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

TEST(EndToEndTest, BoardSeesExactlyCommittedBusTraffic)
{
    workload::UniformWorkload wl(8, 8 * MiB, 0.3);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeUniformBoard(1, 8, l3Cache()));
    board.plugInto(machine.bus());

    machine.run(50000);
    board.drainAll();

    const auto &g = board.globalCounters();
    EXPECT_EQ(g.valueByName("global.tenures.memory"),
              machine.bus().stats().memoryOps);
    // Every memory tenure is committed, dropped because another agent
    // retried it, or bounced by the board's own buffer-overflow retry.
    EXPECT_EQ(g.valueByName("global.tenures.committed") +
                  g.valueByName("global.tenures.dropped_retry") +
                  g.valueByName("global.retries_posted"),
              g.valueByName("global.tenures.memory"));
}

TEST(EndToEndTest, NodeRefsEqualDataRequestsFromItsCpus)
{
    workload::UniformWorkload wl(8, 8 * MiB, 0.3);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeUniformBoard(2, 4, l3Cache()));
    board.plugInto(machine.bus());

    machine.run(50000);
    board.drainAll();

    // Every L2 miss and upgrade from the host becomes a local ref at
    // exactly one node.
    const auto host_stats = machine.totalStats();
    const std::uint64_t expected =
        host_stats.l2Misses + host_stats.l2Upgrades;
    const std::uint64_t node_refs = board.node(0).stats().localRefs +
                                    board.node(1).stats().localRefs;
    EXPECT_EQ(node_refs, expected);
}

TEST(EndToEndTest, BiggerEmulatedCacheNeverMissesMore)
{
    // The monotonicity behind Figures 8 and 11, measured in one run
    // via the multi-configuration mode of Figure 4.
    workload::OltpParams params;
    params.threads = 8;
    params.dbBytes = 32 * MiB;
    workload::OltpWorkload wl(params);

    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeMultiConfigBoard(
        {l3Cache(1 * GiB), l3Cache(8 * MiB), l3Cache(2 * MiB)}, 8));
    board.plugInto(machine.bus());

    machine.run(400000);
    board.drainAll();

    const double huge = board.node(0).stats().missRatio();
    const double mid = board.node(1).stats().missRatio();
    const double small = board.node(2).stats().missRatio();
    EXPECT_LE(huge, mid + 0.01);
    EXPECT_LE(mid, small + 0.01);
    EXPECT_GT(small, 0.0);
}

TEST(EndToEndTest, EmulatedL3CatchesHostL2Misses)
{
    // A working set larger than the host L2 but smaller than the
    // emulated L3 must show a high L3 hit ratio after warmup.
    workload::UniformWorkload wl(8, 1 * MiB, 0.2);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(
        ies::makeUniformBoard(1, 8, l3Cache(16 * MiB)));
    board.plugInto(machine.bus());

    machine.run(100000); // warmup
    board.drainAll();
    board.clearCounters();

    machine.run(200000);
    board.drainAll();

    const auto s = board.node(0).stats();
    EXPECT_GT(s.localRefs, 1000u);
    EXPECT_GT(1.0 - s.missRatio(), 0.85);
}

TEST(EndToEndTest, BoardRetriesNeverFireAtRealisticLoad)
{
    // Section 3.3's claim, end-to-end: with real L2 filtering the bus
    // never sustains anything close to 42%, so the board never
    // retries.
    workload::UniformWorkload wl(8, 16 * MiB, 0.3);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeUniformBoard(4, 2, l3Cache()));
    board.plugInto(machine.bus());

    machine.run(200000);
    board.drainAll();

    EXPECT_EQ(board.retriesPosted(), 0u);
    EXPECT_EQ(machine.bus().stats().retries, 0u);
    EXPECT_LT(board.bufferHighWater(), 64u);
}

TEST(EndToEndTest, HotSharingProducesInterventionTraffic)
{
    // Write-shared data across nodes must surface as interventions at
    // the board level (the Figure 12 machinery).
    workload::UniformWorkload wl(8, 256 * KiB, 0.5);
    host::HostMachine machine(smallHost(), wl);
    ies::MemoriesBoard board(ies::makeUniformBoard(2, 4, l3Cache()));
    board.plugInto(machine.bus());

    machine.run(200000);
    board.drainAll();

    const auto s0 = board.node(0).stats();
    const auto s1 = board.node(1).stats();
    EXPECT_GT(s0.satisfiedByModIntervention +
                  s1.satisfiedByModIntervention, 0u);
    EXPECT_GT(s0.suppliedModified + s1.suppliedModified, 0u);
}

TEST(EndToEndTest, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [](std::uint64_t seed) {
        workload::UniformWorkload wl(8, 4 * MiB, 0.3, seed);
        host::HostMachine machine(smallHost(), wl);
        ies::MemoriesBoard board(
            ies::makeUniformBoard(2, 4, l3Cache()));
        board.plugInto(machine.bus());
        machine.run(50000);
        board.drainAll();
        return std::pair{board.node(0).stats().localMisses,
                         board.node(1).stats().localMisses};
    };
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

} // namespace
} // namespace memories
