/**
 * @file
 * Kill-and-resume fuzz: a real campaign process SIGKILLed at
 * randomized wall-clock points — including mid-manifest-rewrite and
 * mid-checkpoint-write, since the kill lands wherever the process
 * happens to be — must, after resuming to completion, produce unit
 * artifacts byte-identical to an uninterrupted run.
 *
 * Each trial forks a child that starts (or resumes) the campaign and
 * _exits 0 on completion; the parent SIGKILLs it after a seeded
 * random delay and goes again until a child survives. Seeds default
 * to a quick smoke count locally; CI raises MEMORIES_CAMP_SEEDS to
 * fuzz at least 20 schedules (see .github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "campaign/manifest.hh"
#include "campaign/plan.hh"
#include "campaign/runner.hh"
#include "checkpoint/io.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "oracle/diff.hh"

namespace memories::campaign
{
namespace
{

std::vector<oracle::LatticeConfig>
testConfigs()
{
    std::vector<oracle::LatticeConfig> picked;
    for (oracle::LatticeConfig &c : oracle::latticeConfigs()) {
        if (c.name == "mesi-2m-4w-lru" || c.name == "mesi-2m-4w-fifo")
            picked.push_back(std::move(c));
    }
    return picked;
}

CampaignPlan
testPlan()
{
    CampaignPlan plan = buildPlan(testConfigs(), /*firstSeed=*/5,
                                  /*numSeeds=*/1, /*txnsPerUnit=*/768,
                                  /*checkpointEvery=*/128);
    plan.fleetWorkers = 2;
    return plan;
}

std::string
freshDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "iescamp_kill_" +
                            std::to_string(::getpid()) + "_" + tag;
    std::filesystem::remove_all(dir);
    ckpt::ensureDir(dir);
    return dir;
}

std::vector<std::vector<std::uint8_t>>
resultArtifacts(const std::string &dir)
{
    const Manifest m = Manifest::open(dir);
    std::vector<std::vector<std::uint8_t>> results;
    for (std::size_t i = 0; i < m.units().size(); ++i)
        results.push_back(
            ckpt::readFileBytes(m.resultPath(i), "unit result"));
    return results;
}

/** Run the campaign at @p dir to completion in a child process. */
pid_t
spawnCampaignChild(const std::string &dir)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    // Child: never return into gtest. _exit skips atexit/destructors,
    // so a clean completion looks exactly like the CLI's exit path.
    try {
        CampaignRunner runner(testConfigs(), dir);
        const CampaignTotals totals =
            ckpt::fileExists(Manifest::manifestPath(dir))
                ? runner.resume()
                : runner.start(testPlan());
        _exit(totals.allDone() ? 0 : 2);
    } catch (...) {
        _exit(3);
    }
}

TEST(CampaignKillFuzzTest, KillAndResumeIsByteIdentical)
{
    // Golden uninterrupted run, same process.
    const std::string goldenDir = freshDir("golden");
    {
        CampaignRunner runner(testConfigs(), goldenDir);
        ASSERT_TRUE(runner.start(testPlan()).allDone());
    }
    const auto golden = resultArtifacts(goldenDir);
    const Manifest goldenManifest = Manifest::open(goldenDir);

    unsigned seeds = 4; // local smoke; CI sets >= 20
    if (const char *env = std::getenv("MEMORIES_CAMP_SEEDS"))
        seeds = static_cast<unsigned>(std::strtoul(env, nullptr, 10));

    for (unsigned seed = 1; seed <= seeds; ++seed) {
        const std::string dir = freshDir("s" + std::to_string(seed));
        Rng rng(seed * 977 + 11);
        unsigned kills = 0;
        for (int attempt = 0;; ++attempt) {
            ASSERT_LT(attempt, 200)
                << "campaign never completed under kill fuzzing";
            const pid_t pid = spawnCampaignChild(dir);
            ASSERT_GT(pid, 0);
            // Sleep 0-60ms: long enough to reach any phase of the
            // run, short enough that kills land mid-flight often.
            ::usleep(static_cast<useconds_t>(rng.nextBounded(60000)));
            ::kill(pid, SIGKILL);
            int status = 0;
            ASSERT_EQ(::waitpid(pid, &status, 0), pid);
            if (WIFEXITED(status)) {
                ASSERT_EQ(WEXITSTATUS(status), 0)
                    << "child failed instead of completing or dying";
                break;
            }
            ASSERT_TRUE(WIFSIGNALED(status));
            ++kills;
        }

        const auto results = resultArtifacts(dir);
        EXPECT_EQ(results, golden)
            << "seed " << seed << " (" << kills
            << " kills) changed the campaign artifacts";
        const Manifest m = Manifest::open(dir);
        for (std::size_t i = 0; i < m.units().size(); ++i) {
            EXPECT_EQ(m.unit(i).retireCrc,
                      goldenManifest.unit(i).retireCrc)
                << "seed " << seed << " changed retirement order of "
                << "unit " << i;
        }
        std::filesystem::remove_all(dir);
    }
    std::filesystem::remove_all(goldenDir);
}

} // namespace
} // namespace memories::campaign
