/**
 * @file
 * IESCAMP crash-tolerance: the campaign must survive a crash at
 * *every* durable operation boundary and still produce byte-identical
 * artifacts.
 *
 * The sweep uses a DiskFaultShim that throws at the N-th
 * atomicWriteFile() call — abandoning the in-flight campaign exactly
 * where a kill -9 between two durable operations would — then resumes
 * and compares every unit result file against a golden uninterrupted
 * run. Transient injected disk faults (ENOSPC, short writes) must be
 * retried per unit without changing the artifacts; persistent faults
 * must quarantine the unit after maxAttempts; latent corruption
 * (bit flips, hand-edited checkpoints) must fail the resume closed.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "campaign/faultshim.hh"
#include "campaign/manifest.hh"
#include "campaign/plan.hh"
#include "campaign/runner.hh"
#include "checkpoint/io.hh"
#include "common/logging.hh"
#include "oracle/diff.hh"

namespace memories::campaign
{
namespace
{

/** Thrown by the shim to abandon the campaign mid-flight. */
struct SimulatedCrash
{
};

/** Crashes (throws) immediately before the target-th atomic write. */
class CrashAtOp final : public ckpt::DiskFaultShim
{
  public:
    explicit CrashAtOp(std::uint64_t target) : target_(target) {}

    ckpt::DiskFault onAtomicWrite(const std::string &) override
    {
        if (ops_++ == target_)
            throw SimulatedCrash{};
        return ckpt::DiskFault{};
    }

    std::uint64_t opsSeen() const { return ops_; }

  private:
    std::uint64_t target_;
    std::uint64_t ops_ = 0;
};

/** Always refuses writes whose path contains @p needle. */
class PoisonPath final : public ckpt::DiskFaultShim
{
  public:
    explicit PoisonPath(std::string needle)
        : needle_(std::move(needle))
    {
    }

    ckpt::DiskFault onAtomicWrite(const std::string &path) override
    {
        if (path.find(needle_) != std::string::npos)
            return {ckpt::DiskFaultKind::NoSpace, 0};
        return ckpt::DiskFault{};
    }

  private:
    std::string needle_;
};

/** Clears the global shim even when a test assertion throws. */
struct ShimGuard
{
    explicit ShimGuard(ckpt::DiskFaultShim *shim)
    {
        ckpt::setDiskFaultShim(shim);
    }
    ~ShimGuard() { ckpt::setDiskFaultShim(nullptr); }
};

std::vector<oracle::LatticeConfig>
testConfigs()
{
    std::vector<oracle::LatticeConfig> picked;
    for (oracle::LatticeConfig &c : oracle::latticeConfigs()) {
        if (c.name == "mesi-2m-4w-lru" || c.name == "msi-2m-4w-lru")
            picked.push_back(std::move(c));
    }
    return picked;
}

CampaignPlan
testPlan(std::uint64_t txns = 512, std::uint32_t every = 128)
{
    CampaignPlan plan =
        buildPlan(testConfigs(), /*firstSeed=*/21, /*numSeeds=*/1,
                  txns, every);
    plan.fleetWorkers = 2;
    return plan;
}

std::string
freshDir(const std::string &tag)
{
    // Namespace by PID: ctest runs each test case as its own process,
    // concurrently, and the golden dir would otherwise be shared.
    const std::string dir = ::testing::TempDir() + "iescamp_resume_" +
                            std::to_string(::getpid()) + "_" + tag;
    std::filesystem::remove_all(dir);
    ckpt::ensureDir(dir);
    return dir;
}

/** Every unit result file, in unit order (missing file = fatal). */
std::vector<std::vector<std::uint8_t>>
resultArtifacts(const std::string &dir)
{
    const Manifest m = Manifest::open(dir);
    std::vector<std::vector<std::uint8_t>> results;
    for (std::size_t i = 0; i < m.units().size(); ++i)
        results.push_back(
            ckpt::readFileBytes(m.resultPath(i), "unit result"));
    return results;
}

/** One golden uninterrupted run per process, reused by every sweep. */
const std::string &
goldenDir()
{
    static const std::string dir = [] {
        const std::string d = freshDir("golden");
        CampaignRunner runner(testConfigs(), d);
        if (!runner.start(testPlan()).allDone())
            fatal("golden campaign did not complete");
        return d;
    }();
    return dir;
}

TEST(CampaignResumeTest, CrashAtEveryDurableOpResumesByteIdentical)
{
    const auto golden = resultArtifacts(goldenDir());
    const Manifest goldenManifest = Manifest::open(goldenDir());

    for (std::uint64_t crashOp = 0;; ++crashOp) {
        const std::string dir =
            freshDir("crash" + std::to_string(crashOp));
        bool crashed = false;
        {
            CrashAtOp shim(crashOp);
            ShimGuard guard(&shim);
            CampaignRunner runner(testConfigs(), dir);
            try {
                runner.start(testPlan());
            } catch (const SimulatedCrash &) {
                crashed = true;
            }
        }
        if (!crashed) {
            // The campaign has fewer durable ops than crashOp: the
            // whole op space has been swept.
            ASSERT_GT(crashOp, 10u)
                << "campaign made suspiciously few durable writes";
            break;
        }

        CampaignRunner again(testConfigs(), dir);
        const CampaignTotals totals =
            crashOp == 0 ? again.start(testPlan()) : again.resume();
        EXPECT_TRUE(totals.allDone())
            << "crash at op " << crashOp << ": " << totals.describe();
        EXPECT_EQ(resultArtifacts(dir), golden)
            << "crash at op " << crashOp
            << " changed the campaign artifacts";
        const Manifest m = Manifest::open(dir);
        for (std::size_t i = 0; i < m.units().size(); ++i) {
            EXPECT_EQ(m.unit(i).retireCrc,
                      goldenManifest.unit(i).retireCrc)
                << "crash at op " << crashOp
                << " changed the retirement order of unit " << i;
            EXPECT_EQ(m.unit(i).consumed,
                      goldenManifest.unit(i).consumed);
            EXPECT_EQ(m.unit(i).overflowDrops,
                      goldenManifest.unit(i).overflowDrops);
        }
        std::filesystem::remove_all(dir);
    }
}

TEST(CampaignResumeTest, DoubleCrashChainsResumeByteIdentical)
{
    const auto golden = resultArtifacts(goldenDir());
    // Crash once during start, again during the first resume, then
    // finish on the third process — the CI drill, deterministically.
    for (const auto &[first, second] :
         {std::pair<std::uint64_t, std::uint64_t>{2, 1},
          {3, 4},
          {5, 0}}) {
        const std::string dir =
            freshDir("double" + std::to_string(first) + "_" +
                     std::to_string(second));
        CampaignRunner runner(testConfigs(), dir);
        {
            CrashAtOp shim(first);
            ShimGuard guard(&shim);
            EXPECT_THROW(runner.start(testPlan()), SimulatedCrash);
        }
        {
            CrashAtOp shim(second);
            ShimGuard guard(&shim);
            EXPECT_THROW(runner.resume(), SimulatedCrash);
        }
        EXPECT_TRUE(runner.resume().allDone());
        EXPECT_EQ(resultArtifacts(dir), golden);
        std::filesystem::remove_all(dir);
    }
}

TEST(CampaignResumeTest, TransientDiskFaultsAreRetriedByteIdentical)
{
    const auto golden = resultArtifacts(goldenDir());
    const std::string dir = freshDir("transient");
    // Ops 2 and 3 are the first segment's unit checkpoint writes
    // (op 0 creates the manifest, op 1 marks the wave running); a
    // short write and an ENOSPC there must each fail only that
    // unit's attempt, and backoff retries must converge on the same
    // artifacts.
    ScriptedDiskFaults shim(
        parseFaultSpec("shortwrite@2:64,enospc@3"));
    ShimGuard guard(&shim);
    CampaignRunner runner(testConfigs(), dir);
    const CampaignTotals totals = runner.start(testPlan());
    EXPECT_TRUE(totals.allDone()) << totals.describe();
    EXPECT_EQ(shim.injected(), 2u);
    EXPECT_EQ(resultArtifacts(dir), golden);
    const Manifest m = Manifest::open(dir);
    EXPECT_GT(m.unit(0).attempts + m.unit(1).attempts, 2u)
        << "injected faults should have cost extra attempts";
    std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, PersistentFaultQuarantinesOnlyThatUnit)
{
    const auto golden = resultArtifacts(goldenDir());
    const std::string dir = freshDir("quarantine");
    PoisonPath shim("unit0.");
    ShimGuard guard(&shim);
    CampaignRunner runner(testConfigs(), dir);
    const CampaignTotals totals = runner.start(testPlan());
    EXPECT_TRUE(totals.complete());
    EXPECT_EQ(totals.quarantined, 1u);
    EXPECT_EQ(totals.done, 1u);
    const Manifest m = Manifest::open(dir);
    EXPECT_EQ(m.unit(0).state, UnitState::Quarantined);
    EXPECT_EQ(m.unit(0).attempts, m.plan().maxAttempts);
    // The healthy unit's artifact must be untouched by its sick
    // neighbour.
    EXPECT_EQ(ckpt::readFileBytes(m.resultPath(1), "unit result"),
              golden[1]);
    std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, LatentCheckpointCorruptionFailsResumeClosed)
{
    const std::string dir = freshDir("latent");
    {
        // Flip a bit in the first unit checkpoint (op 2) — latent
        // corruption the writer cannot see — then crash a few durable
        // ops later, so resume must restore from the corrupt file.
        class FlipThenCrash final : public ckpt::DiskFaultShim
        {
          public:
            ckpt::DiskFault onAtomicWrite(const std::string &) override
            {
                const std::uint64_t op = ops_++;
                if (op == 2)
                    return {ckpt::DiskFaultKind::BitFlip, 501};
                if (op == 7)
                    throw SimulatedCrash{};
                return ckpt::DiskFault{};
            }

          private:
            std::uint64_t ops_ = 0;
        } flip;
        ShimGuard guard(&flip);
        CampaignRunner runner(testConfigs(), dir);
        EXPECT_THROW(runner.start(testPlan()), SimulatedCrash);
    }
    CampaignRunner again(testConfigs(), dir);
    try {
        again.resume();
        FAIL() << "resume accepted a checkpoint whose bytes no longer "
                  "match the manifest hash";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("corrupt checkpoint"),
                  std::string::npos)
            << err.what();
    }
    std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, CorruptResultArtifactFailsResumeClosed)
{
    const std::string dir = freshDir("badresult");
    CampaignRunner runner(testConfigs(), dir);
    ASSERT_TRUE(runner.start(testPlan()).allDone());
    const Manifest m = Manifest::open(dir);
    std::vector<std::uint8_t> bytes =
        ckpt::readFileBytes(m.resultPath(0), "unit result");
    bytes[bytes.size() / 2] ^= 0x10;
    {
        std::FILE *f = std::fopen(m.resultPath(0).c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
    CampaignRunner again(testConfigs(), dir);
    EXPECT_THROW(again.resume(), FatalError);
    std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, ResumeRejectsChangedConfigRegistry)
{
    const std::string dir = freshDir("changedcfg");
    CampaignRunner runner(testConfigs(), dir);
    ASSERT_TRUE(runner.start(testPlan()).allDone());
    // Rerun against a registry whose board geometry changed under the
    // same name: fingerprint validation must refuse.
    std::vector<oracle::LatticeConfig> mutated = testConfigs();
    mutated[0].config.nodes[0].cache.sizeBytes *= 2;
    CampaignRunner again(mutated, dir, {});
    // All units are Done, so resume succeeds without touching configs;
    // force revalidation by clearing one unit back to Pending.
    {
        Manifest m = Manifest::open(dir);
        UnitStatus s = m.unit(0);
        s.state = UnitState::Pending;
        s.position = 0;
        s.ckptCrc = 0;
        m.update(0, s);
    }
    EXPECT_THROW(again.resume(), FatalError);
    std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, WatchdogDeadlineFailsSlowAttempts)
{
    const std::string dir = freshDir("watchdog");
    RunnerOptions opts;
    opts.attemptDeadlineMs = 1; // every wave blows the budget
    CampaignRunner runner(testConfigs(), dir, opts);
    const CampaignTotals totals = runner.start(testPlan(4096, 64));
    EXPECT_TRUE(totals.complete());
    EXPECT_EQ(totals.quarantined, 2u) << totals.describe();
    const Manifest m = Manifest::open(dir);
    EXPECT_NE(m.unit(0).note.find("watchdog"), std::string::npos)
        << m.unit(0).note;
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace memories::campaign
