/**
 * @file
 * Console surface of the campaign engine: registerConsoleCommands
 * plugs `campaign start|resume|status` into an ies::Console via the
 * extension hook, malformed invocations come back as "error: ..."
 * text (never a crash), and status renders the durable manifest
 * state. A tiny end-to-end `campaign start` run over the full
 * lattice exercises the same path the interactive console uses.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "bus/bus6xx.hh"
#include "campaign/console.hh"
#include "campaign/manifest.hh"
#include "campaign/plan.hh"
#include "campaign/runner.hh"
#include "checkpoint/io.hh"
#include "common/logging.hh"
#include "ies/console.hh"
#include "oracle/diff.hh"

namespace memories::campaign
{
namespace
{

class CampaignConsoleTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = ::testing::TempDir() + "iescamp_console_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        registerConsoleCommands(console_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    bus::Bus6xx bus_;
    ies::Console console_{bus_};
    std::string dir_;
};

TEST_F(CampaignConsoleTest, RegisteredCommandAppearsInHelp)
{
    const std::string help = console_.execute("help");
    EXPECT_NE(help.find("campaign"), std::string::npos);
}

TEST_F(CampaignConsoleTest, MalformedInvocationsReturnErrorText)
{
    // Every bad shape must come back as "error: ..." console text —
    // the extension hook catches FatalError just like built-ins.
    const char *bad[] = {
        "campaign",
        "campaign start",
        "campaign start somedir",
        "campaign start somedir 1",
        "campaign start somedir notanumber 500",
        "campaign start somedir 1 500 64 extra",
        "campaign resume",
        "campaign resume a b",
        "campaign status",
        "campaign frobnicate x",
    };
    for (const char *cmd : bad) {
        const std::string reply = console_.execute(cmd);
        EXPECT_EQ(reply.rfind("error: ", 0), 0u) << cmd << " -> "
                                                 << reply;
    }
}

TEST_F(CampaignConsoleTest, StatusAndResumeOnMissingCampaignFailClosed)
{
    const std::string status =
        console_.execute("campaign status " + dir_);
    EXPECT_EQ(status.rfind("error: ", 0), 0u) << status;
    const std::string resume =
        console_.execute("campaign resume " + dir_);
    EXPECT_EQ(resume.rfind("error: ", 0), 0u) << resume;
}

TEST_F(CampaignConsoleTest, StatusRendersManifestState)
{
    // Status only reads the manifest, so a campaign created directly
    // through the runner is visible to the console verbatim.
    ckpt::ensureDir(dir_);
    CampaignPlan plan = buildPlan(oracle::latticeConfigs(), 1, 1,
                                  /*txnsPerUnit=*/96,
                                  /*checkpointEvery=*/96);
    Manifest::create(dir_, plan);
    const std::string status =
        console_.execute("campaign status " + dir_);
    EXPECT_EQ(status.rfind("error: ", 0), std::string::npos) << status;
    EXPECT_NE(status.find("pending"), std::string::npos) << status;
}

TEST_F(CampaignConsoleTest, StartRunsTinyCampaignToCompletion)
{
    const std::string reply = console_.execute(
        "campaign start " + dir_ + " 1 96 96");
    EXPECT_NE(reply.find("campaign complete"), std::string::npos)
        << reply;

    const Manifest m = Manifest::open(dir_);
    EXPECT_EQ(m.plan().units.size(),
              oracle::latticeConfigs().size());
    for (std::size_t i = 0; i < m.units().size(); ++i) {
        EXPECT_EQ(m.unit(i).state, UnitState::Done) << "unit " << i;
        EXPECT_TRUE(ckpt::fileExists(m.resultPath(i)))
            << "unit " << i;
    }

    // A second start over the same directory must refuse to clobber
    // the finished campaign; resume is the idempotent no-op.
    const std::string again = console_.execute(
        "campaign start " + dir_ + " 1 96 96");
    EXPECT_EQ(again.rfind("error: ", 0), 0u) << again;
    const std::string resume =
        console_.execute("campaign resume " + dir_);
    EXPECT_NE(resume.find("campaign complete"), std::string::npos)
        << resume;
}

TEST_F(CampaignConsoleTest, RegisterCommandValidatesItsArguments)
{
    EXPECT_THROW(console_.registerCommand("", [](ies::Console &,
                                                 const auto &) {
        return std::string();
    }),
                 FatalError);
    EXPECT_THROW(console_.registerCommand("x", nullptr), FatalError);
}

} // namespace
} // namespace memories::campaign
