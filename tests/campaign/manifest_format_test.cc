/**
 * @file
 * IESCAMP manifest structure and fail-closed open (docs/FORMATS.md
 * §8): because the manifest is atomically rewritten, no legal crash
 * can tear it — so *every* malformed variant (truncation at any
 * boundary, a flipped bit anywhere, a torn first-write rename, bad
 * magic or version, structural nonsense) must be rejected with a
 * clear FatalError, and a rejected open must never let partial
 * results be reused.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/manifest.hh"
#include "campaign/plan.hh"
#include "checkpoint/codec.hh"
#include "checkpoint/io.hh"
#include "common/logging.hh"

namespace memories::campaign
{
namespace
{

CampaignPlan
smallPlan()
{
    CampaignPlan plan;
    plan.checkpointEvery = 64;
    for (int i = 0; i < 3; ++i) {
        UnitSpec u;
        u.configName = "mesi-2m-4w-lru";
        u.configFingerprint = 0x1234 + i;
        u.seed = 7 + i;
        u.txns = 512;
        plan.units.push_back(u);
    }
    return plan;
}

class ManifestFormatTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = ::testing::TempDir() + "iescamp_format_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        ckpt::ensureDir(dir_);
        path_ = Manifest::manifestPath(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::vector<std::uint8_t> manifestBytes() const
    {
        return ckpt::readFileBytes(path_, "manifest");
    }

    /** Overwrite the manifest with raw bytes, no atomicity games. */
    void writeRaw(const std::vector<std::uint8_t> &bytes) const
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }

    std::string dir_;
    std::string path_;
};

TEST_F(ManifestFormatTest, RoundTripsPlanAndStatuses)
{
    const CampaignPlan plan = smallPlan();
    {
        Manifest m = Manifest::create(dir_, plan);
        UnitStatus s = m.unit(1);
        s.state = UnitState::Running;
        s.attempts = 2;
        s.position = 128;
        s.ckptCrc = 0xdeadbeef;
        s.retireCrc = 0x1111;
        s.overflowDrops = 3;
        s.consumed = 128;
        s.note = "mid-flight";
        m.update(1, s);
    }
    const Manifest back = Manifest::open(dir_);
    EXPECT_EQ(back.plan(), plan);
    EXPECT_EQ(back.unit(0), UnitStatus{});
    EXPECT_EQ(back.unit(1).state, UnitState::Running);
    EXPECT_EQ(back.unit(1).attempts, 2u);
    EXPECT_EQ(back.unit(1).position, 128u);
    EXPECT_EQ(back.unit(1).ckptCrc, 0xdeadbeefu);
    EXPECT_EQ(back.unit(1).note, "mid-flight");
    EXPECT_GE(back.sequence(), 2u);
}

TEST_F(ManifestFormatTest, CreateRefusesToClobberExistingCampaign)
{
    Manifest::create(dir_, smallPlan());
    EXPECT_THROW(Manifest::create(dir_, smallPlan()), FatalError);
}

TEST_F(ManifestFormatTest, MissingManifestFailsClosed)
{
    EXPECT_THROW(Manifest::open(dir_), FatalError);
}

TEST_F(ManifestFormatTest, TornFirstWriteRenameFailsClosed)
{
    // A crash between writing manifest.iescamp.tmp and the rename of
    // the *first* persist leaves only the temp file. The bytes may
    // even be complete — but they were never published, so open()
    // must refuse to trust them.
    Manifest::create(dir_, smallPlan());
    std::filesystem::rename(path_, path_ + ".tmp");
    try {
        Manifest::open(dir_);
        FAIL() << "torn rename was accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("torn rename"),
                  std::string::npos)
            << err.what();
    }
}

TEST_F(ManifestFormatTest, StaleTmpBesideValidManifestIsIgnored)
{
    Manifest::create(dir_, smallPlan());
    const std::vector<std::uint8_t> good = manifestBytes();
    // A crash mid-write leaves a garbage .tmp beside the published
    // manifest; open() must use the published file and succeed.
    std::FILE *f = std::fopen((path_ + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("partial garbage", f);
    std::fclose(f);
    EXPECT_NO_THROW(Manifest::open(dir_));
    EXPECT_EQ(manifestBytes(), good);
}

TEST_F(ManifestFormatTest, TruncationAtEveryLengthFailsClosed)
{
    Manifest::create(dir_, smallPlan());
    const std::vector<std::uint8_t> good = manifestBytes();
    // Every proper prefix — including cuts exactly at header and
    // record boundaries — must be rejected. An atomic rewrite never
    // publishes a prefix, so a short manifest is always corruption.
    for (std::size_t len = 0; len < good.size(); ++len) {
        writeRaw({good.begin(), good.begin() + len});
        EXPECT_THROW(Manifest::open(dir_), FatalError)
            << "prefix of " << len << " bytes was accepted";
    }
}

TEST_F(ManifestFormatTest, EveryBitFlipFailsClosedOrRoundTrips)
{
    Manifest::create(dir_, smallPlan());
    const std::vector<std::uint8_t> good = manifestBytes();
    // Walk a bit through the entire file. Every flip must either be
    // caught (the CRC layers) — there is no third outcome where a
    // silently different campaign state is accepted.
    for (std::size_t byte = 0; byte < good.size(); ++byte) {
        std::vector<std::uint8_t> bad = good;
        bad[byte] ^= 1u << (byte % 8);
        writeRaw(bad);
        EXPECT_THROW(Manifest::open(dir_), FatalError)
            << "flip at byte " << byte << " was accepted";
    }
    writeRaw(good);
    EXPECT_NO_THROW(Manifest::open(dir_));
}

TEST_F(ManifestFormatTest, TrailingGarbageFailsClosed)
{
    Manifest::create(dir_, smallPlan());
    std::vector<std::uint8_t> bad = manifestBytes();
    bad.push_back(0x00);
    writeRaw(bad);
    EXPECT_THROW(Manifest::open(dir_), FatalError);
}

TEST_F(ManifestFormatTest, BadMagicAndVersionFailClosed)
{
    Manifest::create(dir_, smallPlan());
    const std::vector<std::uint8_t> good = manifestBytes();

    std::vector<std::uint8_t> bad = good;
    bad[0] = 'X';
    writeRaw(bad);
    EXPECT_THROW(Manifest::open(dir_), FatalError);

    // A future version must be refused even with a fixed-up header
    // CRC — flipping the version alone is caught by the CRC, so
    // recompute it to prove the version check itself fires.
    bad = good;
    bad[8] = 99;
    const std::uint32_t crc = ckpt::crc32(bad.data(), 28);
    for (int i = 0; i < 4; ++i)
        bad[28 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    writeRaw(bad);
    try {
        Manifest::open(dir_);
        FAIL() << "future version was accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos)
            << err.what();
    }
}

TEST_F(ManifestFormatTest, EmptyFileAndEmptyPlanFailClosed)
{
    writeRaw({});
    EXPECT_THROW(Manifest::open(dir_), FatalError);
    EXPECT_THROW(Manifest::create(dir_ + "/nested", CampaignPlan{}),
                 FatalError);
}

TEST_F(ManifestFormatTest, PlanValidationRejectsNonsense)
{
    CampaignPlan plan = smallPlan();
    plan.checkpointEvery = 0;
    ckpt::Sink sink;
    plan.save(sink);
    ckpt::Source src(sink.bytes().data(), sink.size(), "test plan");
    EXPECT_THROW(CampaignPlan::load(src), FatalError);

    CampaignPlan zeroTxns = smallPlan();
    zeroTxns.units[0].txns = 0;
    ckpt::Sink sink2;
    zeroTxns.save(sink2);
    ckpt::Source src2(sink2.bytes().data(), sink2.size(), "test plan");
    EXPECT_THROW(CampaignPlan::load(src2), FatalError);
}

TEST_F(ManifestFormatTest, FingerprintCoversEveryParameter)
{
    const CampaignPlan base = smallPlan();
    CampaignPlan other = base;
    other.checkpointEvery *= 2;
    EXPECT_NE(base.fingerprint(), other.fingerprint());
    other = base;
    other.units[2].seed += 1;
    EXPECT_NE(base.fingerprint(), other.fingerprint());
    other = base;
    other.units[0].configName = "something-else";
    EXPECT_NE(base.fingerprint(), other.fingerprint());
    EXPECT_EQ(base.fingerprint(), smallPlan().fingerprint());
}

} // namespace
} // namespace memories::campaign
