#include "trace/record.hh"

#include <gtest/gtest.h>

namespace memories::trace
{
namespace
{

bus::BusTransaction
makeTxn(Addr addr, bus::BusOp op, CpuId cpu, Cycle cycle)
{
    bus::BusTransaction txn;
    txn.addr = addr;
    txn.op = op;
    txn.cpu = cpu;
    txn.cycle = cycle;
    return txn;
}

TEST(BusRecordTest, RoundTripsAlignedAddress)
{
    const auto txn = makeTxn(0x1234'5680, bus::BusOp::Read, 3, 100);
    const auto rec = BusRecord::pack(txn, 90);
    EXPECT_EQ(rec.addr(), 0x1234'5680u & ~0x7full);
    EXPECT_EQ(rec.op(), bus::BusOp::Read);
    EXPECT_EQ(rec.cpu(), 3);
    EXPECT_EQ(rec.cycleDelta(), 10u);
}

TEST(BusRecordTest, DropsLow7AddressBits)
{
    // Records capture at 128B granularity: sub-line offsets are lost,
    // which is harmless for caches with >=128B lines (Table 2's
    // minimum).
    const auto txn = makeTxn(0x1000 + 77, bus::BusOp::Read, 0, 0);
    const auto rec = BusRecord::pack(txn, 0);
    EXPECT_EQ(rec.addr(), 0x1000u);
}

TEST(BusRecordTest, RoundTripsEveryOp)
{
    for (std::size_t i = 0; i < bus::numBusOps; ++i) {
        const auto op = static_cast<bus::BusOp>(i);
        const auto rec = BusRecord::pack(makeTxn(0x8000, op, 1, 5), 5);
        EXPECT_EQ(rec.op(), op);
    }
}

TEST(BusRecordTest, RoundTripsEveryCpu)
{
    for (unsigned cpu = 0; cpu < 16; ++cpu) {
        const auto rec = BusRecord::pack(
            makeTxn(0x8000, bus::BusOp::Rwitm,
                    static_cast<CpuId>(cpu), 0), 0);
        EXPECT_EQ(rec.cpu(), cpu);
    }
}

TEST(BusRecordTest, CycleDeltaSaturatesAt255)
{
    const auto rec = BusRecord::pack(
        makeTxn(0x8000, bus::BusOp::Read, 0, 10'000), 0);
    EXPECT_EQ(rec.cycleDelta(), maxCycleDelta);
}

TEST(BusRecordTest, BackwardCycleClampsToZero)
{
    const auto rec = BusRecord::pack(
        makeTxn(0x8000, bus::BusOp::Read, 0, 5), 10);
    EXPECT_EQ(rec.cycleDelta(), 0u);
}

TEST(BusRecordTest, UnpackReconstructsCycleChain)
{
    const auto txn = makeTxn(0x40000, bus::BusOp::DClaim, 7, 230);
    const auto rec = BusRecord::pack(txn, 200);
    const auto back = rec.unpack(200);
    EXPECT_EQ(back.addr, txn.addr);
    EXPECT_EQ(back.op, txn.op);
    EXPECT_EQ(back.cpu, txn.cpu);
    EXPECT_EQ(back.cycle, 230u);
}

TEST(BusRecordTest, LargeAddressesSurvive)
{
    // 48 bits of line address = up to 2^55 bytes of physical space.
    const Addr big = (Addr{1} << 54) + (Addr{1} << 20);
    const auto rec = BusRecord::pack(makeTxn(big, bus::BusOp::Read, 0, 0),
                                     0);
    EXPECT_EQ(rec.addr(), big);
}

TEST(BusRecordTest, RecordIsEightBytes)
{
    // "8-byte wide bus references" (paper section 2.3).
    static_assert(sizeof(BusRecord) == 8);
    SUCCEED();
}

} // namespace
} // namespace memories::trace
