#include "trace/tracestats.hh"

#include <gtest/gtest.h>

#include <cstdio>

namespace memories::trace
{
namespace
{

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu, Cycle cycle)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    t.cycle = cycle;
    return t;
}

TEST(TraceStatsTest, CountsPerOpAndCpu)
{
    TraceStats stats;
    stats.record(txn(0x1000, bus::BusOp::Read, 0, 0));
    stats.record(txn(0x2000, bus::BusOp::Rwitm, 1, 10));
    stats.record(txn(0x3000, bus::BusOp::Read, 0, 20));
    EXPECT_EQ(stats.records(), 3u);
    EXPECT_EQ(stats.opCount(bus::BusOp::Read), 2u);
    EXPECT_EQ(stats.opCount(bus::BusOp::Rwitm), 1u);
    EXPECT_EQ(stats.cpuCount(0), 2u);
    EXPECT_EQ(stats.cpuCount(1), 1u);
}

TEST(TraceStatsTest, FootprintCountsUniqueLines)
{
    TraceStats stats;
    stats.record(txn(0x1000, bus::BusOp::Read, 0, 0));
    stats.record(txn(0x1000 + 64, bus::BusOp::Read, 0, 1)); // same line
    stats.record(txn(0x1000 + 128, bus::BusOp::Read, 0, 2)); // next
    EXPECT_EQ(stats.uniqueLines(), 2u);
    EXPECT_EQ(stats.footprintBytes(), 256u);
}

TEST(TraceStatsTest, UtilizationOverSpan)
{
    TraceStats stats;
    stats.record(txn(0x1000, bus::BusOp::Read, 0, 0));
    stats.record(txn(0x2000, bus::BusOp::Read, 0, 100));
    EXPECT_NEAR(stats.utilization(), 2.0 / 100.0, 1e-9);
}

TEST(TraceStatsTest, ReadFractionIgnoresNonMemory)
{
    TraceStats stats;
    stats.record(txn(0x1000, bus::BusOp::Read, 0, 0));
    stats.record(txn(0x2000, bus::BusOp::WriteBack, 0, 1));
    stats.record(txn(0x3000, bus::BusOp::IoRead, 0, 2));
    EXPECT_DOUBLE_EQ(stats.readFraction(), 0.5);
}

TEST(TraceStatsTest, ReportMentionsKeyNumbers)
{
    TraceStats stats;
    stats.record(txn(0x1000, bus::BusOp::Read, 3, 0));
    const auto report = stats.report();
    EXPECT_NE(report.find("records 1"), std::string::npos);
    EXPECT_NE(report.find("READ=1"), std::string::npos);
    EXPECT_NE(report.find("cpu3=1"), std::string::npos);
}

class TraceToolsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        in_ = ::testing::TempDir() + "tracestats_in.ies";
        out_ = ::testing::TempDir() + "tracestats_out.ies";
        TraceWriter writer(in_);
        for (int i = 0; i < 100; ++i) {
            writer.append(txn(0x1000u + 128u * i,
                              i % 4 == 0 ? bus::BusOp::Rwitm
                                         : bus::BusOp::Read,
                              static_cast<CpuId>(i % 8), 5u * i));
        }
        writer.flush();
    }

    void TearDown() override
    {
        std::remove(in_.c_str());
        std::remove(out_.c_str());
    }

    std::string in_, out_;
};

TEST_F(TraceToolsTest, FromFileConsumesAll)
{
    const auto stats = TraceStats::fromFile(in_);
    EXPECT_EQ(stats.records(), 100u);
    EXPECT_EQ(stats.opCount(bus::BusOp::Rwitm), 25u);
}

TEST_F(TraceToolsTest, SliceCopiesWindow)
{
    TraceReader reader(in_);
    {
        TraceWriter writer(out_);
        EXPECT_EQ(sliceTrace(reader, writer, 10, 20), 20u);
    }
    const auto stats = TraceStats::fromFile(out_);
    EXPECT_EQ(stats.records(), 20u);
}

TEST_F(TraceToolsTest, SliceClampsAtEnd)
{
    TraceReader reader(in_);
    TraceWriter writer(out_);
    EXPECT_EQ(sliceTrace(reader, writer, 90, 50), 10u);
}

TEST_F(TraceToolsTest, FilterKeepsMatching)
{
    TraceReader reader(in_);
    {
        TraceWriter writer(out_);
        const auto copied = filterTrace(
            reader, writer, [](const bus::BusTransaction &t) {
                return t.op == bus::BusOp::Rwitm;
            });
        EXPECT_EQ(copied, 25u);
    }
    const auto stats = TraceStats::fromFile(out_);
    EXPECT_EQ(stats.records(), 25u);
    EXPECT_EQ(stats.opCount(bus::BusOp::Read), 0u);
}

} // namespace
} // namespace memories::trace
