#include "trace/tracefile.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace memories::trace
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "trace_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".ies";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

bus::BusTransaction
txnAt(Addr addr, Cycle cycle, CpuId cpu = 0)
{
    bus::BusTransaction txn;
    txn.addr = addr;
    txn.cycle = cycle;
    txn.cpu = cpu;
    txn.op = bus::BusOp::Read;
    return txn;
}

TEST_F(TraceFileTest, WriteThenReadBack)
{
    {
        TraceWriter writer(path_);
        for (int i = 0; i < 1000; ++i)
            writer.append(txnAt(0x1000u + 128u * i, 3u * i));
        writer.flush();
        EXPECT_EQ(writer.count(), 1000u);
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 1000u);
    bus::BusTransaction txn;
    int n = 0;
    Cycle prev = 0;
    while (reader.next(txn)) {
        EXPECT_EQ(txn.addr, 0x1000u + 128u * n);
        EXPECT_GE(txn.cycle, prev);
        prev = txn.cycle;
        ++n;
    }
    EXPECT_EQ(n, 1000);
}

TEST_F(TraceFileTest, EmptyTraceReadsZeroRecords)
{
    {
        TraceWriter writer(path_);
        writer.flush();
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 0u);
    BusRecord rec;
    EXPECT_FALSE(reader.next(rec));
}

TEST_F(TraceFileTest, RewindRestartsStream)
{
    {
        TraceWriter writer(path_);
        for (int i = 0; i < 10; ++i)
            writer.append(txnAt(0x2000u + 128u * i, i));
        writer.flush();
    }
    TraceReader reader(path_);
    bus::BusTransaction txn;
    while (reader.next(txn)) {
    }
    reader.rewind();
    int n = 0;
    while (reader.next(txn))
        ++n;
    EXPECT_EQ(n, 10);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/trace.ies"), FatalError);
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char garbage[64] = "not a trace file";
        std::fwrite(garbage, 1, sizeof(garbage), f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceReader reader(path_), FatalError);
}

TEST_F(TraceFileTest, SurvivesBufferBoundary)
{
    // Cross the 64K-record I/O chunk boundary.
    const std::uint64_t n = (1 << 16) + 37;
    {
        TraceWriter writer(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            writer.append(txnAt(0x100000u + 128u * (i % 1024), i));
        writer.flush();
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), n);
    bus::BusTransaction txn;
    std::uint64_t count = 0;
    while (reader.next(txn))
        ++count;
    EXPECT_EQ(count, n);
}

} // namespace
} // namespace memories::trace
