#include "trace/tracefile.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace memories::trace
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "trace_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".ies";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

bus::BusTransaction
txnAt(Addr addr, Cycle cycle, CpuId cpu = 0)
{
    bus::BusTransaction txn;
    txn.addr = addr;
    txn.cycle = cycle;
    txn.cpu = cpu;
    txn.op = bus::BusOp::Read;
    return txn;
}

TEST_F(TraceFileTest, WriteThenReadBack)
{
    {
        TraceWriter writer(path_);
        for (int i = 0; i < 1000; ++i)
            writer.append(txnAt(0x1000u + 128u * i, 3u * i));
        writer.flush();
        EXPECT_EQ(writer.count(), 1000u);
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 1000u);
    bus::BusTransaction txn;
    int n = 0;
    Cycle prev = 0;
    while (reader.next(txn)) {
        EXPECT_EQ(txn.addr, 0x1000u + 128u * n);
        EXPECT_GE(txn.cycle, prev);
        prev = txn.cycle;
        ++n;
    }
    EXPECT_EQ(n, 1000);
}

TEST_F(TraceFileTest, EmptyTraceReadsZeroRecords)
{
    {
        TraceWriter writer(path_);
        writer.flush();
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 0u);
    BusRecord rec;
    EXPECT_FALSE(reader.next(rec));
}

TEST_F(TraceFileTest, RewindRestartsStream)
{
    {
        TraceWriter writer(path_);
        for (int i = 0; i < 10; ++i)
            writer.append(txnAt(0x2000u + 128u * i, i));
        writer.flush();
    }
    TraceReader reader(path_);
    bus::BusTransaction txn;
    while (reader.next(txn)) {
    }
    reader.rewind();
    int n = 0;
    while (reader.next(txn))
        ++n;
    EXPECT_EQ(n, 10);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/trace.ies"), FatalError);
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char garbage[64] = "not a trace file";
        std::fwrite(garbage, 1, sizeof(garbage), f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceReader reader(path_), FatalError);
}

TEST_F(TraceFileTest, DroppedCountRoundTripsThroughV2Header)
{
    {
        TraceWriter writer(path_);
        writer.append(txnAt(0x1000, 0));
        writer.setDroppedAtCapture(42);
        writer.flush();
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 1u);
    EXPECT_EQ(reader.droppedAtCapture(), 42u);
}

TEST_F(TraceFileTest, ReadsVersion1FilesWithoutDroppedWord)
{
    // A v1 file is a 3-word header followed by records; the reader
    // must keep accepting archives captured before the dropped-count
    // word existed.
    {
        TraceWriter writer(path_);
        writer.append(txnAt(0x3000, 7));
        writer.flush();
    }
    // Rewrite the file as v1: patch the version word, drop word 4.
    {
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::uint64_t header[4];
        ASSERT_EQ(std::fread(header, sizeof(std::uint64_t), 4, f), 4u);
        std::uint64_t record = 0;
        ASSERT_EQ(std::fread(&record, sizeof(record), 1, f), 1u);
        std::fclose(f);

        header[1] = 1;
        f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(header, sizeof(std::uint64_t), 3, f), 3u);
        ASSERT_EQ(std::fwrite(&record, sizeof(record), 1, f), 1u);
        std::fclose(f);
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 1u);
    EXPECT_EQ(reader.droppedAtCapture(), 0u);
    bus::BusTransaction txn;
    ASSERT_TRUE(reader.next(txn));
    EXPECT_EQ(txn.addr, 0x3000u);
    EXPECT_EQ(txn.cycle, 7u);
    reader.rewind(); // rewind must honor the shorter v1 header
    ASSERT_TRUE(reader.next(txn));
    EXPECT_EQ(txn.addr, 0x3000u);
}

TEST_F(TraceFileTest, LifecycleEventsRoundTrip)
{
    std::vector<LifecycleEvent> original;
    for (std::uint64_t i = 0; i < 100; ++i) {
        LifecycleEvent ev;
        ev.seq = 1000 + i;
        ev.cycle = 3 * i;
        ev.addr = 0x1000 + 128 * i;
        ev.traceId = static_cast<std::uint32_t>(i + 1);
        ev.kind = static_cast<EventKind>(i % numEventKinds);
        ev.board = static_cast<std::uint8_t>(i % 4);
        ev.node = static_cast<std::uint8_t>(i % 8);
        ev.cpu = static_cast<std::uint8_t>(i % 16);
        ev.op = bus::BusOp::Rwitm;
        ev.arg0 = static_cast<std::uint8_t>(i);
        ev.arg1 = static_cast<std::uint8_t>(255 - i);
        original.push_back(ev);
    }
    {
        LifecycleWriter writer(path_);
        for (const auto &ev : original)
            writer.append(ev);
        writer.flush();
        EXPECT_EQ(writer.count(), original.size());
    }
    LifecycleReader reader(path_);
    EXPECT_EQ(reader.count(), original.size());
    const auto loaded = reader.readAll();
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_TRUE(loaded[i] == original[i]) << "event " << i;
}

TEST_F(TraceFileTest, LifecycleReaderRejectsBusTraceFile)
{
    {
        TraceWriter writer(path_);
        writer.append(txnAt(0x1000, 0));
        writer.flush();
    }
    EXPECT_THROW(LifecycleReader reader(path_), FatalError);
}

TEST_F(TraceFileTest, SurvivesBufferBoundary)
{
    // Cross the 64K-record I/O chunk boundary.
    const std::uint64_t n = (1 << 16) + 37;
    {
        TraceWriter writer(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            writer.append(txnAt(0x100000u + 128u * (i % 1024), i));
        writer.flush();
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), n);
    bus::BusTransaction txn;
    std::uint64_t count = 0;
    while (reader.next(txn))
        ++count;
    EXPECT_EQ(count, n);
}

} // namespace
} // namespace memories::trace
