#include "trace/chrometrace.hh"

#include <gtest/gtest.h>

#include "bus/transaction.hh"

namespace memories::trace
{
namespace
{

/**
 * Hand-built lifecycle of one READ tenure (trace id 1): issued on the
 * bus at cycle 5 by cpu 2, snooped shared by node 0, combined at cycle
 * 9, committed into board 0's buffer at cycle 6, missed in node 0's
 * emulated cache, retired at cycle 20 — plus one operator mark.
 */
std::vector<LifecycleEvent>
goldenStream()
{
    std::vector<LifecycleEvent> events;

    LifecycleEvent issue;
    issue.seq = 0;
    issue.cycle = 5;
    issue.addr = 0x1000;
    issue.traceId = 1;
    issue.kind = EventKind::BusIssue;
    issue.cpu = 2;
    issue.op = bus::BusOp::Read;
    events.push_back(issue);

    LifecycleEvent snoop = issue;
    snoop.seq = 1;
    snoop.kind = EventKind::SnoopReply;
    snoop.node = 0;
    snoop.arg0 = static_cast<std::uint8_t>(bus::SnoopResponse::Shared);
    events.push_back(snoop);

    LifecycleEvent combine = issue;
    combine.seq = 2;
    combine.cycle = 9;
    combine.kind = EventKind::Combine;
    combine.arg0 = static_cast<std::uint8_t>(bus::SnoopResponse::Shared);
    events.push_back(combine);

    LifecycleEvent commit = issue;
    commit.seq = 3;
    commit.cycle = 6;
    commit.kind = EventKind::BoardCommit;
    commit.board = 0;
    events.push_back(commit);

    LifecycleEvent miss = issue;
    miss.seq = 4;
    miss.kind = EventKind::CacheMiss;
    miss.board = 0;
    miss.node = 0;
    events.push_back(miss);

    LifecycleEvent retire = issue;
    retire.seq = 5;
    retire.cycle = 20;
    retire.kind = EventKind::Retire;
    retire.board = 0;
    events.push_back(retire);

    LifecycleEvent mark;
    mark.seq = 6;
    mark.cycle = 21;
    mark.kind = EventKind::Mark;
    events.push_back(mark);

    return events;
}

// The export contract is byte determinism: this golden asserts the
// exact serialized form, so any formatting change is a deliberate diff
// here, and two runs of the same stream can be compared with cmp(1).
constexpr const char *goldenJson =
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
    "{\"ph\":\"M\",\"pid\":0,\"tid\":-1,\"name\":\"process_name\","
    "\"args\":{\"name\":\"host bus\"}},\n"
    "{\"ph\":\"M\",\"pid\":0,\"tid\":-1,\"name\":\"process_sort_index\","
    "\"args\":{\"name\":\"0\"}},\n"
    "{\"ph\":\"M\",\"pid\":1,\"tid\":-1,\"name\":\"process_name\","
    "\"args\":{\"name\":\"board 0\"}},\n"
    "{\"ph\":\"M\",\"pid\":1,\"tid\":-1,\"name\":\"process_sort_index\","
    "\"args\":{\"name\":\"1\"}},\n"
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
    "\"args\":{\"name\":\"cpu 0\"}},\n"
    "{\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\","
    "\"args\":{\"name\":\"cpu 2\"}},\n"
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
    "\"args\":{\"name\":\"node 0\"}},\n"
    "{\"ph\":\"X\",\"pid\":0,\"tid\":2,\"ts\":5,\"dur\":4,"
    "\"name\":\"READ\",\"args\":{\"txn\":1,\"addr\":\"0x1000\","
    "\"combined\":\"shared\",\"snoop0\":\"shared\",\"cpu\":2}},\n"
    "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":6,\"dur\":14,"
    "\"name\":\"buffered READ\",\"args\":{\"txn\":1,"
    "\"addr\":\"0x1000\"}},\n"
    "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":5,\"s\":\"t\","
    "\"name\":\"miss\",\"args\":{\"txn\":1,\"addr\":\"0x1000\"}},\n"
    "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":21,\"s\":\"g\","
    "\"name\":\"mark 0\",\"args\":{\"txn\":0}}\n"
    "]}\n";

TEST(ChromeTraceTest, GoldenStreamRendersByteExact)
{
    EXPECT_EQ(chromeTraceToString(goldenStream()), goldenJson);
}

TEST(ChromeTraceTest, RenderingIsDeterministic)
{
    const auto events = goldenStream();
    EXPECT_EQ(chromeTraceToString(events), chromeTraceToString(events));
}

TEST(ChromeTraceTest, MarkLabelsResolveThroughRecorder)
{
    FlightRecorder rec(16);
    rec.mark("checkpoint alpha", 7);
    const auto json = chromeTraceToString(rec.snapshot(), &rec);
    EXPECT_NE(json.find("checkpoint alpha"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyStreamIsValidEnvelope)
{
    EXPECT_EQ(chromeTraceToString({}),
              "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
              "\n]}\n");
}

TEST(ChromeTraceTest, EscapesControlAndQuoteCharactersInLabels)
{
    FlightRecorder rec(16);
    rec.mark("say \"hi\"\tnow", 1);
    const auto json = chromeTraceToString(rec.snapshot(), &rec);
    EXPECT_NE(json.find("say \\\"hi\\\"\\tnow"), std::string::npos);
}

} // namespace
} // namespace memories::trace
