#include "trace/lifecycle.hh"

#include <gtest/gtest.h>

#include <cstdint>

namespace memories::trace
{
namespace
{

LifecycleEvent
eventAt(Addr addr, Cycle cycle, EventKind kind = EventKind::BusIssue)
{
    LifecycleEvent ev;
    ev.addr = addr;
    ev.cycle = cycle;
    ev.kind = kind;
    return ev;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwoMinimum16)
{
    EXPECT_EQ(FlightRecorder(1).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
    EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
}

TEST(FlightRecorderTest, RecordAssignsMonotoneSequenceNumbers)
{
    FlightRecorder rec(16);
    for (int i = 0; i < 5; ++i)
        rec.record(eventAt(0x1000u + 128u * i, i));
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, i);
        EXPECT_EQ(events[i].addr, 0x1000u + 128u * i);
    }
    EXPECT_EQ(rec.recorded(), 5u);
    EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(FlightRecorderTest, WrapDropsOldestFirstAndKeepsSeqMonotone)
{
    // The flight-recorder contract: when the ring wraps, exactly the
    // oldest events are lost, the retained window is contiguous, and
    // sequence numbers keep counting so the loss is quantified.
    FlightRecorder rec(16);
    for (std::uint64_t i = 0; i < 40; ++i)
        rec.record(eventAt(i, i));
    EXPECT_EQ(rec.recorded(), 40u);
    EXPECT_EQ(rec.size(), 16u);
    EXPECT_EQ(rec.overwritten(), 24u);

    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 16u);
    EXPECT_EQ(events.front().seq, 24u); // oldest retained = 40 - 16
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 24u + i); // contiguous, ascending
        EXPECT_EQ(events[i].addr, 24u + i);
    }
}

TEST(FlightRecorderTest, ResetForgetsEventsButSeqKeepsCounting)
{
    FlightRecorder rec(16);
    for (int i = 0; i < 10; ++i)
        rec.record(eventAt(i, i));
    rec.reset();
    EXPECT_EQ(rec.size(), 0u);
    rec.record(eventAt(0xabc, 99));
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 10u); // seq survives reset
}

TEST(FlightRecorderTest, MarkStoresLabelAndRecordsEvent)
{
    FlightRecorder rec(16);
    rec.mark("warmup done", 123);
    rec.mark("phase 2", 456);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, EventKind::Mark);
    EXPECT_EQ(events[0].cycle, 123u);
    EXPECT_EQ(rec.markLabel(static_cast<std::size_t>(events[0].addr)),
              "warmup done");
    EXPECT_EQ(rec.markLabel(static_cast<std::size_t>(events[1].addr)),
              "phase 2");
}

TEST(FlightRecorderTest, AnomalyRecordsEventAndFiresHook)
{
    FlightRecorder rec(16);
    int fired = 0;
    LifecycleEvent seen;
    rec.onAnomaly([&](const FlightRecorder &r, const LifecycleEvent &ev) {
        ++fired;
        seen = ev;
        EXPECT_EQ(&r, &rec);
    });
    rec.notifyAnomaly(AnomalyKind::BusRetry, 77, 5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(rec.anomalies(), 1u);
    EXPECT_EQ(seen.kind, EventKind::Anomaly);
    EXPECT_EQ(seen.cycle, 77u);
    EXPECT_EQ(seen.traceId, 5u);
    EXPECT_EQ(static_cast<AnomalyKind>(seen.arg0),
              AnomalyKind::BusRetry);
}

TEST(FlightRecorderTest, DescribeMentionsKindAndAddress)
{
    LifecycleEvent ev = eventAt(0x1f00, 42, EventKind::CacheMiss);
    ev.traceId = 9;
    const std::string text = ev.describe();
    EXPECT_NE(text.find(std::string(eventKindName(EventKind::CacheMiss))),
              std::string::npos);
    EXPECT_NE(text.find("1f00"), std::string::npos);
}

TEST(FlightRecorderTest, EventKindNamesAreDistinct)
{
    for (std::size_t a = 0; a < numEventKinds; ++a) {
        for (std::size_t b = a + 1; b < numEventKinds; ++b) {
            EXPECT_NE(eventKindName(static_cast<EventKind>(a)),
                      eventKindName(static_cast<EventKind>(b)));
        }
    }
}

TEST(FirstDivergenceTest, EquivalentStreamsIgnoringBoardAndSeqOffset)
{
    std::vector<LifecycleEvent> a, b;
    for (std::uint64_t i = 0; i < 8; ++i) {
        LifecycleEvent ev = eventAt(0x1000 + i, i);
        ev.seq = i;
        ev.board = 0;
        a.push_back(ev);
        ev.seq = 100 + i; // different start seq
        ev.board = 3;     // different board id
        b.push_back(ev);
    }
    EXPECT_EQ(firstDivergence(a, b), SIZE_MAX);
}

TEST(FirstDivergenceTest, ReportsFirstDifferingIndex)
{
    std::vector<LifecycleEvent> a, b;
    for (std::uint64_t i = 0; i < 8; ++i) {
        LifecycleEvent ev = eventAt(0x1000 + i, i);
        ev.seq = i;
        a.push_back(ev);
        b.push_back(ev);
    }
    b[5].addr = 0xdead;
    EXPECT_EQ(firstDivergence(a, b), 5u);
}

TEST(FirstDivergenceTest, PrefixReportsCommonLength)
{
    std::vector<LifecycleEvent> a, b;
    for (std::uint64_t i = 0; i < 8; ++i) {
        LifecycleEvent ev = eventAt(0x1000 + i, i);
        ev.seq = i;
        a.push_back(ev);
        if (i < 5)
            b.push_back(ev);
    }
    EXPECT_EQ(firstDivergence(a, b), 5u);
}

} // namespace
} // namespace memories::trace
