/**
 * @file
 * Property fuzz: BusRecord packing must round-trip every field (at
 * its documented precision) for arbitrary transactions.
 */

#include "trace/record.hh"

#include <gtest/gtest.h>

#include "common/random.hh"

namespace memories::trace
{
namespace
{

class RecordFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RecordFuzz, PackUnpackRoundTrips)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    Cycle prev = 0;
    for (int i = 0; i < 20000; ++i) {
        bus::BusTransaction txn;
        // Addresses up to the 55-bit capture reach, line-aligned view.
        txn.addr = rng.nextBounded(Addr{1} << 48) * 128;
        txn.op = static_cast<bus::BusOp>(
            rng.nextBounded(bus::numBusOps));
        txn.cpu = static_cast<CpuId>(rng.nextBounded(16));
        txn.cycle = prev + rng.nextBounded(300);

        const auto rec = BusRecord::pack(txn, prev);
        EXPECT_EQ(rec.addr(), txn.addr & ~Addr{127});
        EXPECT_EQ(rec.op(), txn.op);
        EXPECT_EQ(rec.cpu(), txn.cpu);

        const auto back = rec.unpack(prev);
        const Cycle delta = txn.cycle - prev;
        if (delta <= maxCycleDelta) {
            EXPECT_EQ(back.cycle, txn.cycle);
        } else {
            EXPECT_EQ(back.cycle, prev + maxCycleDelta);
        }
        prev = back.cycle;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordFuzz, ::testing::Values(1, 2, 3));

TEST(RecordFuzzTest, ArbitraryRawWordsNeverCrashAccessors)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const BusRecord rec(rng.next());
        // op() may decode out-of-range values; accessors must still be
        // total functions over the 4-bit field.
        (void)rec.addr();
        (void)rec.cpu();
        (void)rec.cycleDelta();
        EXPECT_LT(static_cast<unsigned>(rec.op()), 16u);
    }
}

} // namespace
} // namespace memories::trace
