#include "trace/capture.hh"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.hh"
#include "trace/tracefile.hh"

namespace memories::trace
{
namespace
{

bus::BusTransaction
txnAt(Addr addr, Cycle cycle)
{
    bus::BusTransaction txn;
    txn.addr = addr;
    txn.cycle = cycle;
    txn.op = bus::BusOp::Read;
    return txn;
}

TEST(CaptureBufferTest, RejectsZeroCapacity)
{
    EXPECT_THROW(CaptureBuffer(0), FatalError);
}

TEST(CaptureBufferTest, RecordsUpToCapacity)
{
    CaptureBuffer buf(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(buf.record(txnAt(0x1000u + 128u * i, i)));
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.size(), 4u);
}

TEST(CaptureBufferTest, DropsWhenFullWithoutStalling)
{
    // Capture never stalls the host: overflow drops, never blocks.
    CaptureBuffer buf(2);
    buf.record(txnAt(0x1000, 0));
    buf.record(txnAt(0x1080, 1));
    EXPECT_FALSE(buf.record(txnAt(0x1100, 2)));
    EXPECT_EQ(buf.dropped(), 1u);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(CaptureBufferTest, ResetClearsEverything)
{
    CaptureBuffer buf(2);
    buf.record(txnAt(0x1000, 0));
    buf.record(txnAt(0x1080, 1));
    buf.record(txnAt(0x1100, 2));
    buf.reset();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_FALSE(buf.full());
}

TEST(CaptureBufferTest, DumpToFileRoundTrips)
{
    const std::string path = ::testing::TempDir() + "capture_dump.ies";
    CaptureBuffer buf(100);
    for (int i = 0; i < 50; ++i)
        buf.record(txnAt(0x4000u + 128u * i, 2u * i));
    buf.dumpToFile(path);

    TraceReader reader(path);
    EXPECT_EQ(reader.count(), 50u);
    bus::BusTransaction txn;
    int n = 0;
    while (reader.next(txn)) {
        EXPECT_EQ(txn.addr, 0x4000u + 128u * n);
        ++n;
    }
    EXPECT_EQ(n, 50);
    std::remove(path.c_str());
}

TEST(CaptureBufferTest, AtReturnsPackedRecords)
{
    CaptureBuffer buf(8);
    buf.record(txnAt(0x9000, 5));
    EXPECT_EQ(buf.at(0).addr(), 0x9000u);
}

TEST(CaptureBufferTest, BoardScaleCapacityIsAccepted)
{
    // The board can capture a billion 8-byte references; construction
    // must not preallocate that much memory.
    CaptureBuffer buf(1'000'000'000ull);
    EXPECT_EQ(buf.capacity(), 1'000'000'000ull);
    EXPECT_TRUE(buf.record(txnAt(0x1000, 0)));
}

} // namespace
} // namespace memories::trace
