/**
 * @file
 * Checkpoint-at-k resume equivalence: for any generated stream, any
 * lattice configuration, and any split point k, feeding k transactions,
 * checkpointing, restoring into a fresh board and feeding the rest
 * must be byte-identical to the run that never stopped — tail
 * acceptance flags, every Counter40, every directory, the retirement
 * order, and the rendered chrome-trace bytes. Fault plans and the
 * sharded batch feed path are covered too, including saving under
 * shards=4 and resuming serial.
 *
 * Scale: seeds default to a quick smoke count; CI raises it via the
 * MEMORIES_CKPT_SEEDS environment variable (see docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "checkpoint/file.hh"
#include "fault/injector.hh"
#include "ies/board.hh"
#include "oracle/diff.hh"
#include "oracle/stimulus.hh"
#include "trace/chrometrace.hh"
#include "trace/lifecycle.hh"

namespace memories::ies
{
namespace
{

std::size_t
seedCount()
{
    if (const char *env = std::getenv("MEMORIES_CKPT_SEEDS")) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return 3;
}

std::vector<bus::BusTransaction>
propertyStream(std::uint64_t seed, std::size_t count = 800)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = 8;
    p.pBurst = 0.3;
    return oracle::StimulusGen(p).generate();
}

/** Everything the acceptance criteria call byte-identical. */
struct Outcome
{
    std::vector<std::uint8_t> tailAccepted;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>> dirs;
    std::uint64_t bufferRetired = 0;
    std::size_t bufferSize = 0;
    std::size_t bufferHighWater = 0;
    /** Tail retirements: (traceId, addr, op, cpu, cycle). */
    std::vector<std::tuple<std::uint32_t, Addr, std::uint8_t,
                           std::uint8_t, Cycle>>
        retires;
    /** Chrome-trace rendering of the tail's lifecycle events. */
    std::string chrome;

    bool operator==(const Outcome &) const = default;
};

/** How one run feeds the stream around the split point. */
struct FeedPlan
{
    /** Shard workers for the prefix [0, k); 0 = serial feed. */
    std::size_t prefixShards = 0;
    /** Shard workers for the tail [k, n); 0 = serial feed. */
    std::size_t tailShards = 0;
    std::size_t batch = 64;
    /** Fault plan attached (same plan and seed on every board). */
    const fault::FaultPlan *plan = nullptr;
    std::uint64_t faultSeed = 3;
};

void
feedRange(MemoriesBoard &board,
          const std::vector<bus::BusTransaction> &stream,
          std::size_t from, std::size_t to, std::size_t shards,
          std::size_t batch, std::vector<std::uint8_t> *accepted)
{
    if (shards == 0) {
        for (std::size_t i = from; i < to; ++i) {
            const bool ok = board.feedCommitted(stream[i]);
            if (accepted)
                accepted->push_back(ok ? 1 : 0);
        }
        return;
    }
    board.enableSharding(shards);
    std::vector<std::uint8_t> storage(batch, 0);
    bool *flags = reinterpret_cast<bool *>(storage.data());
    for (std::size_t at = from; at < to; at += batch) {
        const std::size_t n = std::min(batch, to - at);
        board.feedBatch(&stream[at], n, flags);
        if (accepted) {
            for (std::size_t i = 0; i < n; ++i)
                accepted->push_back(flags[i] ? 1 : 0);
        }
    }
}

/** Feed the tail on @p board, drain, and collect the full outcome. */
Outcome
finishTail(MemoriesBoard &board,
           const std::vector<bus::BusTransaction> &stream,
           std::size_t k, const FeedPlan &plan)
{
    trace::FlightRecorder recorder(std::size_t{1} << 16);
    board.attachFlightRecorder(recorder);

    Outcome out;
    feedRange(board, stream, k, stream.size(), plan.tailShards,
              plan.batch, &out.tailAccepted);
    board.drainAll();

    const auto collect = [&out](const CounterSample &s) {
        out.counters.emplace_back(std::string(s.name), s.value);
    };
    board.globalCounters().snapshot(collect);
    for (std::size_t i = 0; i < board.numNodes(); ++i) {
        board.node(i).counters().snapshot(collect);
        out.dirs.push_back(board.node(i).directorySnapshot());
    }
    out.bufferRetired = board.bufferRetired();
    out.bufferSize = board.bufferSize();
    out.bufferHighWater = board.bufferHighWater();

    const auto events = recorder.snapshot();
    for (const trace::LifecycleEvent &ev : events) {
        if (ev.kind == trace::EventKind::Retire)
            out.retires.emplace_back(
                ev.traceId, ev.addr,
                static_cast<std::uint8_t>(ev.op), ev.cpu, ev.cycle);
    }
    out.chrome = trace::chromeTraceToString(events);
    board.detachFlightRecorder();
    return out;
}

/** The run that never stops: prefix, then tail, one board. */
Outcome
runStraight(const BoardConfig &cfg,
            const std::vector<bus::BusTransaction> &stream,
            std::size_t k, const FeedPlan &plan)
{
    MemoriesBoard board(cfg);
    std::unique_ptr<fault::FaultInjector> inj;
    if (plan.plan) {
        inj = std::make_unique<fault::FaultInjector>(*plan.plan,
                                                     plan.faultSeed);
        board.attachFaultInjector(*inj);
    }
    feedRange(board, stream, 0, k, plan.prefixShards, plan.batch,
              nullptr);
    return finishTail(board, stream, k, plan);
}

/** Feed k, checkpoint, restore into a fresh board, finish there. */
Outcome
runResumed(const BoardConfig &cfg,
           const std::vector<bus::BusTransaction> &stream,
           std::size_t k, const FeedPlan &plan)
{
    ckpt::CheckpointWriter writer;
    {
        MemoriesBoard board(cfg);
        std::unique_ptr<fault::FaultInjector> inj;
        if (plan.plan) {
            inj = std::make_unique<fault::FaultInjector>(
                *plan.plan, plan.faultSeed);
            board.attachFaultInjector(*inj);
        }
        feedRange(board, stream, 0, k, plan.prefixShards, plan.batch,
                  nullptr);
        board.saveState(writer);
    }
    const auto image = ckpt::CheckpointImage::fromBytes(
        writer.bytes(cfg.fingerprint()), "resume property");

    MemoriesBoard board(cfg);
    std::unique_ptr<fault::FaultInjector> inj;
    if (plan.plan) {
        inj = std::make_unique<fault::FaultInjector>(*plan.plan,
                                                     plan.faultSeed);
        board.attachFaultInjector(*inj);
    }
    board.loadState(image);
    return finishTail(board, stream, k, plan);
}

void
checkResume(const BoardConfig &cfg,
            const std::vector<bus::BusTransaction> &stream,
            std::size_t k, const FeedPlan &plan,
            const std::string &what)
{
    const Outcome straight = runStraight(cfg, stream, k, plan);
    const Outcome resumed = runResumed(cfg, stream, k, plan);
    if (straight == resumed)
        return;
    std::string detail = "outcome structs differ";
    if (straight.tailAccepted != resumed.tailAccepted)
        detail = "tail acceptance flags";
    else if (straight.counters != resumed.counters)
        detail = "counter values";
    else if (straight.dirs != resumed.dirs)
        detail = "directory contents";
    else if (straight.retires != resumed.retires)
        detail = "retirement order";
    else if (straight.chrome != resumed.chrome)
        detail = "chrome-trace bytes";
    else if (straight.bufferRetired != resumed.bufferRetired ||
             straight.bufferSize != resumed.bufferSize ||
             straight.bufferHighWater != resumed.bufferHighWater)
        detail = "buffer statistics";
    ADD_FAILURE() << what << ": resumed run diverged from the "
                  << "straight-through run (" << detail << ", split k="
                  << k << " of " << stream.size() << ")";
}

TEST(CheckpointResumePropertyTest, ResumeMatchesAcrossLattice)
{
    const auto lattice = oracle::latticeConfigs();
    const std::size_t seeds = seedCount();
    for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 1 + s;
        const auto stream = propertyStream(seed);
        for (std::size_t c = 0; c < lattice.size(); ++c) {
            // Vary the split point per (seed, config) so the whole
            // range — early, middle, late — gets exercised.
            const std::size_t k =
                stream.size() / 4 +
                (seed * 37 + c * 131) % (stream.size() / 2);
            checkResume(lattice[c].config, stream, k, FeedPlan{},
                        "seed " + std::to_string(seed) + " config " +
                            lattice[c].name);
        }
    }
}

TEST(CheckpointResumePropertyTest, ResumeMatchesWithActiveFaultPlan)
{
    // Scheduled and probabilistic faults spanning the split point:
    // the injector's RNG words and opportunity counters must resume
    // exactly, and a checkpoint taken inside the slot-loss and stall
    // windows must carry the buffer's fault pacing state.
    const auto plan = fault::FaultPlan::parse(
        "retry prob 0.01\n"
        "dropreply prob 0.005\n"
        "tagflip at 150 node 0 bit 3\n"
        "slotloss at 300 slots 16 cycles 4000\n"
        "stall at 500 cycles 600\n");
    BoardConfig cfg = makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    cfg.bufferEntries = 64;
    cfg.sdramThroughputPercent = 40;

    const std::size_t seeds = std::min<std::size_t>(seedCount(), 20);
    for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 101 + s;
        const auto stream = propertyStream(seed);
        FeedPlan fp;
        fp.plan = &plan;
        fp.faultSeed = seed;
        for (const std::size_t k :
             {stream.size() / 3, stream.size() / 2,
              2 * stream.size() / 3}) {
            checkResume(cfg, stream, k, fp,
                        "fault seed " + std::to_string(seed));
        }
    }
}

TEST(CheckpointResumePropertyTest, ResumeMatchesUnderShardedBatchFeed)
{
    const BoardConfig cfg = makeUniformBoard(
        4, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    const std::size_t seeds = std::min<std::size_t>(seedCount(), 10);
    for (std::size_t s = 0; s < seeds; ++s) {
        const auto stream = propertyStream(41 + s);
        FeedPlan fp;
        fp.prefixShards = 4;
        fp.tailShards = 4;
        fp.batch = 64;
        checkResume(cfg, stream, stream.size() / 2, fp,
                    "sharded seed " + std::to_string(41 + s));
    }
}

TEST(CheckpointResumePropertyTest, CrossShardRestoreContinuesSerial)
{
    // Save under the shards=4 batch pipeline, restore and continue
    // with the plain serial feed: the shard-equivalence tier makes
    // the prefix state identical, so the tails must match too.
    const BoardConfig cfg = makeUniformBoard(
        4, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    const std::size_t seeds = std::min<std::size_t>(seedCount(), 10);
    for (std::size_t s = 0; s < seeds; ++s) {
        const auto stream = propertyStream(71 + s);
        const std::size_t k = stream.size() / 2;

        // Straight-through run, entirely serial.
        const Outcome straight =
            runStraight(cfg, stream, k, FeedPlan{});

        // Resumed run: sharded prefix, checkpoint, serial tail.
        FeedPlan fp;
        fp.prefixShards = 4;
        fp.tailShards = 0;
        const Outcome resumed = runResumed(cfg, stream, k, fp);

        EXPECT_TRUE(straight == resumed)
            << "cross-shard seed " << (71 + s)
            << ": shards=4 checkpoint resumed serially diverged from "
               "the serial straight-through run";
    }
}

} // namespace
} // namespace memories::ies
