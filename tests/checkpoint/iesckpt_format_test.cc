/**
 * @file
 * IESCKPT container structure and fail-closed restore: a malformed
 * checkpoint — truncated, wrong magic, wrong version, corrupted
 * payload, mismatched counter layout — must be rejected with a
 * diagnostic and must leave the target board completely untouched
 * (docs/FORMATS.md section 7).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/file.hh"
#include "common/counters.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "fault/injector.hh"
#include "ies/board.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu, Cycle cycle = 0)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    t.cycle = cycle;
    return t;
}

/** Feed a deterministic warm-up stream so every section has state. */
void
warmUp(MemoriesBoard &board, std::uint64_t seed = 11)
{
    Rng rng(seed);
    Cycle cycle = 0;
    for (int i = 0; i < 4000; ++i) {
        cycle += 3;
        board.feedCommitted(txn(rng.nextBounded(1 << 13) * 128,
                                rng.nextBool(0.3) ? bus::BusOp::Rwitm
                                                  : bus::BusOp::Read,
                                static_cast<CpuId>(rng.nextBounded(8)),
                                cycle));
    }
}

/** Everything observable about a board, for untouched-ness checks. */
struct BoardFingerprint
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>> dirs;
    std::uint64_t bufferRetired = 0;
    std::size_t bufferSize = 0;
    std::size_t bufferHighWater = 0;

    bool operator==(const BoardFingerprint &) const = default;
};

BoardFingerprint
fingerprintOf(const MemoriesBoard &board)
{
    BoardFingerprint fp;
    const auto collect = [&fp](const CounterSample &s) {
        fp.counters.emplace_back(s.name, s.value);
    };
    board.globalCounters().snapshot(collect);
    for (std::size_t i = 0; i < board.numNodes(); ++i) {
        board.node(i).counters().snapshot(collect);
        fp.dirs.push_back(board.node(i).directorySnapshot());
    }
    fp.bufferRetired = board.bufferRetired();
    fp.bufferSize = board.bufferSize();
    fp.bufferHighWater = board.bufferHighWater();
    return fp;
}

/** A warmed board's checkpoint rendered to container bytes. */
std::vector<std::uint8_t>
checkpointBytes(const BoardConfig &cfg)
{
    MemoriesBoard source(cfg);
    warmUp(source);
    ckpt::CheckpointWriter writer;
    source.saveState(writer);
    return writer.bytes(cfg.fingerprint());
}

/**
 * Expect that restoring @p bytes into a fresh-but-warm board throws
 * and leaves the board exactly as it was.
 */
void
expectFailsClosed(const BoardConfig &cfg,
                  const std::vector<std::uint8_t> &bytes,
                  const std::string &what)
{
    MemoriesBoard board(cfg);
    warmUp(board, /*seed=*/99); // distinct state from the checkpoint
    const BoardFingerprint before = fingerprintOf(board);
    EXPECT_THROW(
        {
            const auto image =
                ckpt::CheckpointImage::fromBytes(bytes, what);
            board.loadState(image);
        },
        FatalError)
        << what;
    EXPECT_EQ(fingerprintOf(board), before)
        << what << ": rejected restore mutated the board";
}

TEST(IesckptFormatTest, RoundTripThroughBytesIsExact)
{
    const BoardConfig cfg = makeUniformBoard(2, 4, smallCache());
    MemoriesBoard source(cfg);
    warmUp(source);
    ckpt::CheckpointWriter writer;
    source.saveState(writer);
    const auto bytes = writer.bytes(cfg.fingerprint());

    const auto image =
        ckpt::CheckpointImage::fromBytes(bytes, "round-trip");
    EXPECT_EQ(image.configFingerprint(), cfg.fingerprint());
    EXPECT_TRUE(image.has(ckpt::secBoard));
    EXPECT_TRUE(image.has(ckpt::secBuffer));
    EXPECT_TRUE(image.has(ckpt::secHealth));
    EXPECT_FALSE(image.has(ckpt::secInjector));
    EXPECT_TRUE(image.has(ckpt::secNodeBase + 0));
    EXPECT_TRUE(image.has(ckpt::secNodeBase + 1));
    EXPECT_NE(image.describe().find("IESCKPT"), std::string::npos);

    MemoriesBoard restored(cfg);
    restored.loadState(image);
    EXPECT_EQ(fingerprintOf(restored), fingerprintOf(source));
}

TEST(IesckptFormatTest, TruncationAnywhereFailsClosed)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    const auto bytes = checkpointBytes(cfg);
    ASSERT_GT(bytes.size(), 64u);

    // Mid-header, mid-section-table, mid-payload, and one byte short.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{20},
          std::size_t{40}, bytes.size() / 2, bytes.size() - 1}) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + keep);
        expectFailsClosed(cfg, cut,
                          "truncated at " + std::to_string(keep));
    }
}

TEST(IesckptFormatTest, BadMagicFailsClosed)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    auto bytes = checkpointBytes(cfg);
    bytes[0] ^= 0xff;
    expectFailsClosed(cfg, bytes, "bad magic");
}

TEST(IesckptFormatTest, WrongVersionFailsClosed)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    auto bytes = checkpointBytes(cfg);
    // Bump the version field (offset 8) and re-seal the header CRC
    // (offset 24, over the 24 bytes above) so the version check itself
    // fires rather than the CRC.
    bytes[8] = static_cast<std::uint8_t>(ckpt::formatVersion + 1);
    const std::uint32_t crc = ckpt::crc32(bytes.data(), 24);
    for (unsigned i = 0; i < 4; ++i)
        bytes[24 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    expectFailsClosed(cfg, bytes, "wrong version");
}

TEST(IesckptFormatTest, PayloadCrcFlipFailsClosed)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    auto bytes = checkpointBytes(cfg);
    // Flip one bit deep in the payload region: the section CRC must
    // catch it before any component decodes a byte.
    bytes[bytes.size() - bytes.size() / 4] ^= 0x01;
    expectFailsClosed(cfg, bytes, "payload CRC flip");
}

TEST(IesckptFormatTest, CounterCountMismatchFailsClosed)
{
    CounterBank small;
    small.add("a");
    small.add("b");
    CounterBank big;
    big.add("a");
    big.add("b");
    big.bump(big.add("c"), 7);

    ckpt::Sink sink;
    small.saveState(sink);
    const auto bytes = sink.bytes();
    ckpt::Source source(bytes.data(), bytes.size(), "counter test");
    EXPECT_THROW(big.decodeState(source), FatalError);
    // decodeState is validate-only: the live bank kept its values.
    EXPECT_EQ(big.valueByName("c"), 7u);
}

TEST(IesckptFormatTest, FingerprintMismatchFailsClosed)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    const auto bytes = checkpointBytes(cfg);

    // Same node count and geometry word sizes, different protocol:
    // only the fingerprint gate can tell these apart.
    const BoardConfig other =
        makeUniformBoard(1, 8, smallCache(), "MOESI");
    ASSERT_NE(other.fingerprint(), cfg.fingerprint());
    const auto errors = other.validationErrors(cfg.fingerprint());
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("different board configuration"),
              std::string::npos);

    expectFailsClosed(other, bytes, "fingerprint mismatch");
}

TEST(IesckptFormatTest, InjectorPresenceMustMatch)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    const auto plan = fault::FaultPlan::parse("dropreply prob 0.02\n");

    // Saved with an injector, restored without one: rejected.
    std::vector<std::uint8_t> with_injector;
    {
        MemoriesBoard source(cfg);
        fault::FaultInjector inj(plan, 5);
        source.attachFaultInjector(inj);
        warmUp(source);
        ckpt::CheckpointWriter writer;
        source.saveState(writer);
        with_injector = writer.bytes(cfg.fingerprint());
    }
    expectFailsClosed(cfg, with_injector, "missing injector");

    // Saved without an injector, restored with one attached: rejected.
    const auto without_injector = checkpointBytes(cfg);
    {
        MemoriesBoard board(cfg);
        fault::FaultInjector inj(plan, 5);
        board.attachFaultInjector(inj);
        warmUp(board, 99);
        const BoardFingerprint before = fingerprintOf(board);
        EXPECT_THROW(board.loadState(ckpt::CheckpointImage::fromBytes(
                         without_injector, "unexpected injector")),
                     FatalError);
        EXPECT_EQ(fingerprintOf(board), before);
    }

    // And the matching pair round-trips, including the injector RNG.
    {
        MemoriesBoard restored(cfg);
        fault::FaultInjector inj(plan, 5);
        restored.attachFaultInjector(inj);
        restored.loadState(ckpt::CheckpointImage::fromBytes(
            with_injector, "matching injector"));
    }
}

TEST(IesckptFormatTest, InjectorSeedMismatchFailsClosed)
{
    const BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    const auto plan = fault::FaultPlan::parse("dropreply prob 0.02\n");
    std::vector<std::uint8_t> bytes;
    {
        MemoriesBoard source(cfg);
        fault::FaultInjector inj(plan, 5);
        source.attachFaultInjector(inj);
        warmUp(source);
        ckpt::CheckpointWriter writer;
        source.saveState(writer);
        bytes = writer.bytes(cfg.fingerprint());
    }
    MemoriesBoard board(cfg);
    fault::FaultInjector wrong_seed(plan, 6);
    board.attachFaultInjector(wrong_seed);
    warmUp(board, 99);
    const BoardFingerprint before = fingerprintOf(board);
    EXPECT_THROW(board.loadState(ckpt::CheckpointImage::fromBytes(
                     bytes, "wrong injector seed")),
                 FatalError);
    EXPECT_EQ(fingerprintOf(board), before);
}

TEST(IesckptFormatTest, FileRoundTripMatchesByteRoundTrip)
{
    const BoardConfig cfg = makeUniformBoard(2, 4, smallCache());
    const std::string path = ::testing::TempDir() + "iesckpt_fmt.ckpt";
    MemoriesBoard source(cfg);
    warmUp(source);
    source.saveState(path);

    MemoriesBoard restored(cfg);
    restored.loadState(path);
    EXPECT_EQ(fingerprintOf(restored), fingerprintOf(source));
    std::remove(path.c_str());
}

} // namespace
} // namespace memories::ies
