/**
 * @file
 * Durable checkpoint saves: a failed or killed save must never
 * clobber or truncate the checkpoint already on disk. The save path
 * (CheckpointWriter::writeFile -> ckpt::atomicWriteFile) renders to a
 * temp file, fsyncs, and renames — these tests drive every failure
 * mode through the disk-fault shim plus a real SIGKILL loop and
 * assert the prior bytes survive intact.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "checkpoint/file.hh"
#include "checkpoint/io.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "ies/board.hh"
#include "ies/boardconfig.hh"

namespace memories::ckpt
{
namespace
{

ies::BoardConfig
smallBoard()
{
    return ies::makeUniformBoard(
        1, 8,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
}

void
warmUp(ies::MemoriesBoard &board, std::uint64_t seed)
{
    Rng rng(seed);
    Cycle cycle = 0;
    for (int i = 0; i < 2000; ++i) {
        cycle += 3;
        bus::BusTransaction t;
        t.addr = rng.nextBounded(1 << 13) * 128;
        t.op = rng.nextBool(0.3) ? bus::BusOp::Rwitm
                                 : bus::BusOp::Read;
        t.cpu = static_cast<CpuId>(rng.nextBounded(8));
        t.cycle = cycle;
        board.feedCommitted(t);
    }
    board.drainAll();
}

/** Injects one scripted fault on the next atomic write, then clears. */
class OneShotFault final : public DiskFaultShim
{
  public:
    explicit OneShotFault(DiskFault fault) : fault_(fault) {}

    DiskFault onAtomicWrite(const std::string &) override
    {
        const DiskFault f = fault_;
        fault_ = DiskFault{};
        return f;
    }

  private:
    DiskFault fault_;
};

struct ShimGuard
{
    explicit ShimGuard(DiskFaultShim *shim) { setDiskFaultShim(shim); }
    ~ShimGuard() { setDiskFaultShim(nullptr); }
};

class DurableSaveTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "durable_save_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".ckpt";
        removeFileIfExists(path_);
        removeFileIfExists(path_ + ".tmp");
    }

    void TearDown() override
    {
        removeFileIfExists(path_);
        removeFileIfExists(path_ + ".tmp");
    }

    std::string path_;
};

TEST_F(DurableSaveTest, FailedSaveNeverClobbersExistingCheckpoint)
{
    ies::MemoriesBoard board(smallBoard());
    warmUp(board, 11);
    board.saveState(path_);
    const std::vector<std::uint8_t> before =
        readFileBytes(path_, "checkpoint");

    // Mutate the board so the refused saves would have written
    // different bytes, then drive every injectable failure mode.
    warmUp(board, 22);
    const DiskFault faults[] = {
        {DiskFaultKind::NoSpace, 0},
        {DiskFaultKind::ShortWrite, 0},
        {DiskFaultKind::ShortWrite, 100},
        {DiskFaultKind::TornRename, 0},
    };
    for (const DiskFault f : faults) {
        OneShotFault shim(f);
        ShimGuard guard(&shim);
        EXPECT_THROW(board.saveState(path_), FatalError)
            << diskFaultKindName(f.kind);
        EXPECT_EQ(readFileBytes(path_, "checkpoint"), before)
            << diskFaultKindName(f.kind)
            << " damaged the existing checkpoint";
        // The survivor must still parse and restore cleanly.
        EXPECT_NO_THROW(CheckpointImage::fromFile(path_));
    }

    // With the shim gone the same save succeeds and replaces the
    // file atomically.
    board.saveState(path_);
    const std::vector<std::uint8_t> after =
        readFileBytes(path_, "checkpoint");
    EXPECT_NE(after, before);
    ies::MemoriesBoard restored(smallBoard());
    EXPECT_NO_THROW(restored.loadState(path_));
}

TEST_F(DurableSaveTest, ShortWriteLeavesTornTempNotTornCheckpoint)
{
    ies::MemoriesBoard board(smallBoard());
    warmUp(board, 33);
    board.saveState(path_);
    const std::vector<std::uint8_t> before =
        readFileBytes(path_, "checkpoint");

    warmUp(board, 44);
    OneShotFault shim({DiskFaultKind::ShortWrite, 64});
    ShimGuard guard(&shim);
    EXPECT_THROW(board.saveState(path_), FatalError);
    // The torn bytes are in the temp file — visibly partial, never
    // published over the real checkpoint.
    EXPECT_TRUE(fileExists(path_ + ".tmp"));
    EXPECT_EQ(readFileBytes(path_ + ".tmp", "temp").size(), 64u);
    EXPECT_EQ(readFileBytes(path_, "checkpoint"), before);
}

TEST_F(DurableSaveTest, KilledWriterNeverTearsTheCheckpoint)
{
    // A child process overwrites the checkpoint in a tight loop,
    // alternating between two board states; the parent SIGKILLs it at
    // a random moment. Whatever instruction the kill lands on, the
    // file at path_ must afterwards parse as one complete, valid
    // checkpoint (the old bytes or the new — never a hybrid).
    ies::MemoriesBoard board(smallBoard());
    warmUp(board, 55);
    board.saveState(path_);

    Rng rng(7);
    for (int trial = 0; trial < 6; ++trial) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ies::MemoriesBoard child(smallBoard());
            warmUp(child, 55);
            ies::MemoriesBoard other(smallBoard());
            warmUp(other, 66);
            for (;;) {
                child.saveState(path_);
                other.saveState(path_);
            }
        }
        ::usleep(static_cast<useconds_t>(
            5000 + rng.nextBounded(40000)));
        ::kill(pid, SIGKILL);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFSIGNALED(status));
        EXPECT_NO_THROW(CheckpointImage::fromFile(path_))
            << "trial " << trial
            << ": kill mid-save left a torn checkpoint";
    }
}

} // namespace
} // namespace memories::ckpt
