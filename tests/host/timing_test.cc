#include "host/timing.hh"

#include <gtest/gtest.h>

namespace memories::host
{
namespace
{

HierarchyStats
statsWith(std::uint64_t refs, std::uint64_t l2_hits,
          std::uint64_t l2_misses)
{
    HierarchyStats s;
    s.refs = refs;
    s.l1Hits = refs - l2_hits - l2_misses;
    s.l2Hits = l2_hits;
    s.l2Misses = l2_misses;
    return s;
}

TEST(TimingModelTest, InstructionsFromRefs)
{
    EXPECT_DOUBLE_EQ(TimingModel::instructions(300, 0.3), 1000.0);
}

TEST(TimingModelTest, PerfectCacheRuntimeIsBaseCpi)
{
    TimingModel tm;
    const auto s = statsWith(1000, 0, 0);
    const double expected =
        TimingModel::instructions(1000, 0.5) * tm.cpiBase / tm.cpuFreqHz;
    EXPECT_DOUBLE_EQ(tm.estimateRuntimeSeconds(s, 0.5), expected);
}

TEST(TimingModelTest, MissesAddPenalty)
{
    TimingModel tm;
    const auto fast = statsWith(1000, 0, 0);
    const auto slow = statsWith(1000, 100, 50);
    EXPECT_GT(tm.estimateRuntimeSeconds(slow, 0.5),
              tm.estimateRuntimeSeconds(fast, 0.5));
}

TEST(TimingModelTest, L3HitsReduceRuntime)
{
    TimingModel tm;
    const auto s = statsWith(100000, 5000, 5000);
    const double no_l3 = tm.estimateRuntimeWithL3(s, 0.5, 0.0);
    const double half_l3 = tm.estimateRuntimeWithL3(s, 0.5, 0.5);
    const double full_l3 = tm.estimateRuntimeWithL3(s, 0.5, 1.0);
    EXPECT_GT(no_l3, half_l3);
    EXPECT_GT(half_l3, full_l3);
}

TEST(TimingModelTest, L3BenefitInPaperRange)
{
    // Case Study 3: "performance improves from 2-25% for these
    // applications" with L3 hit ratios in the observed range. Check
    // the model produces single-to-double-digit percent gains for a
    // miss profile like the SPLASH2 runs.
    TimingModel tm;
    const auto s = statsWith(1'000'000, 30'000, 10'000);
    const double base = tm.estimateRuntimeSeconds(s, 0.35);
    const double with_l3 = tm.estimateRuntimeWithL3(s, 0.35, 0.6);
    const double gain = (base - with_l3) / base;
    EXPECT_GT(gain, 0.02);
    EXPECT_LT(gain, 0.25);
}

TEST(TimingModelTest, MoreCpusRunFaster)
{
    TimingModel tm;
    const auto s = statsWith(80000, 4000, 2000);
    EXPECT_DOUBLE_EQ(tm.estimateRuntimeSeconds(s, 0.5, 8) * 8.0,
                     tm.estimateRuntimeSeconds(s, 0.5, 1));
}

TEST(TimingModelTest, MissesPerKiloInstruction)
{
    EXPECT_DOUBLE_EQ(TimingModel::missesPerKiloInstruction(5, 1000.0),
                     5.0);
    EXPECT_DOUBLE_EQ(TimingModel::missesPerKiloInstruction(5, 0.0), 0.0);
}

TEST(TimingModelTest, NorthstarDefaults)
{
    TimingModel tm;
    EXPECT_DOUBLE_EQ(tm.cpuFreqHz, 262e6); // the S7A's 262 MHz parts
}

} // namespace
} // namespace memories::host
