#include "host/machine.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/synthetic.hh"

namespace memories::host
{
namespace
{

HostConfig
tinyConfig(unsigned cpus = 4)
{
    HostConfig cfg;
    cfg.numCpus = cpus;
    cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{64 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    return cfg;
}

TEST(HostMachineTest, PresetsMatchThePaper)
{
    const auto s7a = s7aConfig();
    EXPECT_EQ(s7a.numCpus, 8u);
    ASSERT_TRUE(s7a.l2.has_value());
    EXPECT_EQ(s7a.l2->sizeBytes, 8 * MiB);
    EXPECT_EQ(s7a.l2->assoc, 4u);

    const auto dm = s7aConfig1MbDirectMapped();
    ASSERT_TRUE(dm.l2.has_value());
    EXPECT_EQ(dm.l2->sizeBytes, 1 * MiB);
    EXPECT_EQ(dm.l2->assoc, 1u);

    EXPECT_FALSE(s7aConfigNoL2().l2.has_value());
}

TEST(HostMachineTest, RejectsBadCpuCounts)
{
    workload::UniformWorkload wl(4, 1 * MiB, 0.2);
    auto cfg = tinyConfig(0);
    EXPECT_THROW(HostMachine(cfg, wl), FatalError);
    cfg = tinyConfig(17);
    EXPECT_THROW(HostMachine(cfg, wl), FatalError);
}

TEST(HostMachineTest, RejectsWorkloadWithTooFewThreads)
{
    workload::UniformWorkload wl(2, 1 * MiB, 0.2);
    const auto cfg = tinyConfig(4);
    EXPECT_THROW(HostMachine(cfg, wl), FatalError);
}

TEST(HostMachineTest, RunExecutesRequestedRefs)
{
    workload::UniformWorkload wl(4, 1 * MiB, 0.2);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(10000);
    EXPECT_EQ(machine.refsExecuted(), 10000u);
    EXPECT_EQ(machine.totalStats().refs, 10000u);
}

TEST(HostMachineTest, RefsSpreadAcrossCpus)
{
    workload::UniformWorkload wl(4, 1 * MiB, 0.2);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(4000);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(machine.cpu(i).stats().refs, 1000u);
}

TEST(HostMachineTest, MissesGenerateBusTraffic)
{
    workload::UniformWorkload wl(4, 16 * MiB, 0.2); // >> L2: misses
    HostMachine machine(tinyConfig(4), wl);
    machine.run(20000);
    EXPECT_GT(machine.bus().stats().memoryOps, 1000u);
}

TEST(HostMachineTest, UtilizationLandsInPaperBand)
{
    // The paper observed 2-20% bus utilization across its platforms.
    // An OLTP-ish working set on the tiny config must land in a sane
    // passive band (we accept 1-45% to keep the test robust).
    workload::UniformWorkload wl(4, 4 * MiB, 0.2);
    auto cfg = tinyConfig(4);
    cfg.cyclesPerRef = 4;
    HostMachine machine(cfg, wl);
    machine.run(100000);
    const double util =
        machine.bus().stats().utilization(machine.bus().now());
    EXPECT_GT(util, 0.01);
    EXPECT_LT(util, 0.30);
}

TEST(HostMachineTest, CacheFriendlyWorkloadQuietsTheBus)
{
    // A read-only working set that fits in L1 should produce almost no
    // traffic after warmup (writes would ping-pong ownership instead).
    workload::UniformWorkload wl(4, 4 * KiB, 0.0);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(1000); // warmup
    const auto before = machine.bus().stats().memoryOps;
    machine.run(100000);
    const auto after = machine.bus().stats().memoryOps;
    EXPECT_LT(after - before, 6000u);
}

TEST(HostMachineTest, SharedDataCausesCoherenceTraffic)
{
    // All CPUs hammering the same small region with writes must
    // produce upgrades and snoop invalidations.
    workload::UniformWorkload wl(4, 64 * KiB, 0.5);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(50000);
    const auto stats = machine.totalStats();
    EXPECT_GT(stats.l2Upgrades, 100u);
    EXPECT_GT(stats.snoopInvalidations, 100u);
}

TEST(HostMachineTest, InterventionsAppearOnTheBus)
{
    workload::UniformWorkload wl(4, 64 * KiB, 0.5);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(50000);
    EXPECT_GT(machine.bus().stats().modifiedResponses, 10u);
    EXPECT_GT(machine.bus().stats().sharedResponses, 10u);
}

TEST(HostMachineTest, WritebacksAppearOnTheBus)
{
    workload::UniformWorkload wl(4, 16 * MiB, 0.5);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(50000);
    EXPECT_GT(machine.totalStats().writebacks, 100u);
}

TEST(HostMachineTest, L2OffModeRuns)
{
    workload::UniformWorkload wl(2, 1 * MiB, 0.2);
    auto cfg = tinyConfig(2);
    cfg.l2.reset();
    HostMachine machine(cfg, wl);
    machine.run(10000);
    // Without an L2 every L1 miss hits the bus.
    EXPECT_EQ(machine.totalStats().l2Hits, 0u);
    EXPECT_GT(machine.bus().stats().memoryOps, 100u);
}

TEST(HostMachineTest, HierarchyStatsAreConsistent)
{
    workload::UniformWorkload wl(4, 8 * MiB, 0.3);
    HostMachine machine(tinyConfig(4), wl);
    machine.run(50000);
    const auto s = machine.totalStats();
    EXPECT_EQ(s.refs, s.reads + s.writes);
    // Every ref is an L1 hit, an L2 hit, an L2 miss, or an upgrade.
    EXPECT_EQ(s.refs, s.l1Hits + s.l2Hits + s.l2Misses + s.l2Upgrades);
}

} // namespace
} // namespace memories::host
