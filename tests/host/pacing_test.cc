/**
 * @file
 * Host pacing and bus-accounting tests: cyclesPerRef sets utilization,
 * clearStats() keeps caches warm, and end-to-end data-bus figures sit
 * above address-bus figures like real 6xx measurements.
 */

#include <gtest/gtest.h>

#include "host/machine.hh"
#include "workload/synthetic.hh"

namespace memories::host
{
namespace
{

HostConfig
tinyConfig(Cycle cycles_per_ref)
{
    HostConfig cfg;
    cfg.numCpus = 4;
    cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.l2 = cache::CacheConfig{64 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.cyclesPerRef = cycles_per_ref;
    return cfg;
}

TEST(PacingTest, SlowerReferenceRateLowersUtilization)
{
    auto run = [](Cycle cpr) {
        workload::UniformWorkload wl(4, 4 * MiB, 0.3, 7);
        HostMachine machine(tinyConfig(cpr), wl);
        machine.run(50000);
        return machine.bus().stats().utilization(machine.bus().now());
    };
    const double fast = run(1);
    const double slow = run(8);
    EXPECT_GT(fast, slow * 4);
}

TEST(PacingTest, DataUtilizationExceedsAddressUtilization)
{
    // 128B transfers occupy 8 data beats per 1-cycle address tenure,
    // so with mixed traffic the data bus is the busier one — the bus
    // the paper's 2-20% figures describe.
    workload::UniformWorkload wl(4, 4 * MiB, 0.3, 9);
    HostMachine machine(tinyConfig(16), wl);
    machine.run(100000);
    const auto elapsed = machine.bus().now();
    const auto &stats = machine.bus().stats();
    EXPECT_GT(stats.dataUtilization(elapsed),
              2.0 * stats.utilization(elapsed));
    EXPECT_LT(stats.dataUtilization(elapsed), 1.0);
}

TEST(PacingTest, ClearStatsKeepsCachesWarm)
{
    workload::UniformWorkload wl(4, 64 * KiB, 0.0, 11);
    HostMachine machine(tinyConfig(2), wl);
    machine.run(50000); // warm: everything resident
    machine.clearStats();
    EXPECT_EQ(machine.totalStats().refs, 0u);
    EXPECT_EQ(machine.bus().stats().tenures, 0u);

    machine.run(50000);
    const auto s = machine.totalStats();
    // Warm read-only working set: essentially no bus traffic.
    EXPECT_GT(static_cast<double>(s.l1Hits + s.l2Hits) /
                  static_cast<double>(s.refs),
              0.999);
}

TEST(PacingTest, RefsExecutedSurvivesClearStats)
{
    workload::UniformWorkload wl(4, 64 * KiB, 0.0, 13);
    HostMachine machine(tinyConfig(1), wl);
    machine.run(1000);
    machine.clearStats();
    EXPECT_EQ(machine.refsExecuted(), 1000u);
}

} // namespace
} // namespace memories::host
