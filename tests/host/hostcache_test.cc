#include "host/hostcache.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::host
{
namespace
{

cache::CacheConfig
l1Config()
{
    return cache::CacheConfig{8 * KiB, 2, 128,
                              cache::ReplacementPolicy::LRU};
}

cache::CacheConfig
l2Config()
{
    return cache::CacheConfig{64 * KiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

HostCacheHierarchy
makeHierarchy()
{
    return HostCacheHierarchy(l1Config(), l2Config());
}

bus::BusTransaction
remoteTxn(Addr addr, bus::BusOp op)
{
    bus::BusTransaction txn;
    txn.addr = addr;
    txn.op = op;
    txn.cpu = 9; // some other CPU
    return txn;
}

TEST(HostCacheTest, RejectsBrokenInclusion)
{
    // L2 smaller than L1 or with smaller lines cannot be inclusive.
    EXPECT_THROW(HostCacheHierarchy(l2Config(), l1Config()), FatalError);

    auto small_line_l2 = l2Config();
    small_line_l2.lineSize = 64;
    auto l1 = l1Config();
    l1.lineSize = 128;
    EXPECT_THROW(HostCacheHierarchy(l1, small_line_l2), FatalError);
}

TEST(HostCacheTest, ColdReadNeedsBusRead)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x1000, false);
    EXPECT_FALSE(res.hit);
    ASSERT_TRUE(res.need.has_value());
    EXPECT_EQ(res.need->op, bus::BusOp::Read);
    EXPECT_EQ(res.need->lineAddr, 0x1000u);
}

TEST(HostCacheTest, ColdWriteNeedsRwitm)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x1000, true);
    ASSERT_TRUE(res.need.has_value());
    EXPECT_EQ(res.need->op, bus::BusOp::Rwitm);
}

TEST(HostCacheTest, FillMakesSubsequentAccessesHit)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x1000, false);
    h.completeFill(*res.need, false, bus::SnoopResponse::None);
    EXPECT_TRUE(h.access(0x1000, false).hit);
    EXPECT_TRUE(h.residentInL1(0x1000));
    EXPECT_TRUE(h.residentInL2(0x1000));
}

TEST(HostCacheTest, ExclusiveFillAllowsSilentWrite)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x1000, false);
    h.completeFill(*res.need, false, bus::SnoopResponse::None); // -> E
    // Write to an Exclusive line needs no bus transaction.
    EXPECT_TRUE(h.access(0x1000, true).hit);
}

TEST(HostCacheTest, SharedFillRequiresDClaimForWrite)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x1000, false);
    h.completeFill(*res.need, false, bus::SnoopResponse::Shared); // -> S
    const auto w = h.access(0x1000, true);
    EXPECT_FALSE(w.hit);
    ASSERT_TRUE(w.need.has_value());
    EXPECT_EQ(w.need->op, bus::BusOp::DClaim);
    h.completeFill(*w.need, true, bus::SnoopResponse::None);
    EXPECT_TRUE(h.access(0x1000, true).hit);
    EXPECT_EQ(h.stats().l2Upgrades, 1u);
}

TEST(HostCacheTest, DirtyVictimProducesWriteback)
{
    // 64KB 4-way L2 with 128B lines: 128 sets; same-set stride 16KB.
    auto h = makeHierarchy();
    const std::uint64_t stride = 128 * 128 * 4 / 4; // sets*line = 16KB
    // Fill one set with 4 dirty lines, then force a 5th.
    for (int i = 0; i < 4; ++i) {
        const auto res = h.access(i * stride, true);
        ASSERT_TRUE(res.need.has_value());
        const auto wb =
            h.completeFill(*res.need, true, bus::SnoopResponse::None);
        EXPECT_FALSE(wb.has_value());
    }
    const auto res = h.access(4 * stride, true);
    ASSERT_TRUE(res.need.has_value());
    const auto wb =
        h.completeFill(*res.need, true, bus::SnoopResponse::None);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(*wb % stride, 0u);
    EXPECT_EQ(h.stats().writebacks, 1u);
}

TEST(HostCacheTest, L2EvictionPurgesL1Inclusion)
{
    auto h = makeHierarchy();
    const std::uint64_t stride = 16 * KiB;
    const auto first = h.access(0, false);
    h.completeFill(*first.need, false, bus::SnoopResponse::None);
    EXPECT_TRUE(h.residentInL1(0));
    for (int i = 1; i <= 4; ++i) {
        const auto res = h.access(i * stride, false);
        h.completeFill(*res.need, false, bus::SnoopResponse::None);
    }
    // Line 0 was LRU in its L2 set: it must be gone from L1 as well.
    EXPECT_FALSE(h.residentInL2(0));
    EXPECT_FALSE(h.residentInL1(0));
}

TEST(HostCacheTest, SnoopReadOnModifiedIntervenes)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x2000, true);
    h.completeFill(*res.need, true, bus::SnoopResponse::None); // -> M
    const auto resp = h.snoop(remoteTxn(0x2000, bus::BusOp::Read));
    EXPECT_EQ(resp, bus::SnoopResponse::Modified);
    // Downgraded to Shared: a local write now needs an upgrade.
    const auto w = h.access(0x2000, true);
    ASSERT_TRUE(w.need.has_value());
    EXPECT_EQ(w.need->op, bus::BusOp::DClaim);
}

TEST(HostCacheTest, SnoopRwitmInvalidatesBothLevels)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x2000, false);
    h.completeFill(*res.need, false, bus::SnoopResponse::None);
    const auto resp = h.snoop(remoteTxn(0x2000, bus::BusOp::Rwitm));
    EXPECT_NE(resp, bus::SnoopResponse::None);
    EXPECT_FALSE(h.residentInL2(0x2000));
    EXPECT_FALSE(h.residentInL1(0x2000));
    EXPECT_EQ(h.stats().snoopInvalidations, 1u);
}

TEST(HostCacheTest, SnoopMissAnswersNone)
{
    auto h = makeHierarchy();
    EXPECT_EQ(h.snoop(remoteTxn(0x9000, bus::BusOp::Read)),
              bus::SnoopResponse::None);
}

TEST(HostCacheTest, SnoopIgnoresNonMemoryOps)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x2000, true);
    h.completeFill(*res.need, true, bus::SnoopResponse::None);
    EXPECT_EQ(h.snoop(remoteTxn(0x2000, bus::BusOp::IoRead)),
              bus::SnoopResponse::None);
    EXPECT_TRUE(h.residentInL2(0x2000));
}

TEST(HostCacheTest, NoL2ModeWorksAgainstL1Only)
{
    HostCacheHierarchy h(l1Config(), std::nullopt);
    EXPECT_FALSE(h.hasL2());
    EXPECT_EQ(h.busLineSize(), 128u);
    const auto res = h.access(0x3000, false);
    ASSERT_TRUE(res.need.has_value());
    h.completeFill(*res.need, false, bus::SnoopResponse::None);
    EXPECT_TRUE(h.access(0x3000, false).hit);
    EXPECT_FALSE(h.residentInL2(0x3000));
}

TEST(HostCacheTest, StatsTallyReadsAndWrites)
{
    auto h = makeHierarchy();
    h.access(0x1000, false);
    h.access(0x1000, true);
    h.access(0x2000, false);
    EXPECT_EQ(h.stats().refs, 3u);
    EXPECT_EQ(h.stats().reads, 2u);
    EXPECT_EQ(h.stats().writes, 1u);
}

TEST(HostCacheTest, L1HitAvoidsL2Machinery)
{
    auto h = makeHierarchy();
    const auto res = h.access(0x1000, false);
    h.completeFill(*res.need, false, bus::SnoopResponse::None);
    h.access(0x1000, false);
    EXPECT_EQ(h.stats().l1Hits, 1u);
    EXPECT_EQ(h.stats().l2Hits, 0u);
}

} // namespace
} // namespace memories::host
