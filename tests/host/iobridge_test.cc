#include "host/iobridge.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "host/machine.hh"
#include "ies/board.hh"
#include "workload/synthetic.hh"

namespace memories::host
{
namespace
{

IoBridgeConfig
smallBridge()
{
    IoBridgeConfig cfg;
    cfg.dmaBase = workload::workloadBaseAddr;
    cfg.dmaBytes = 64 * KiB;
    cfg.seed = 5;
    return cfg;
}

TEST(IoBridgeTest, RejectsTinyDmaRegion)
{
    bus::Bus6xx bus;
    IoBridgeConfig cfg = smallBridge();
    cfg.dmaBytes = 64;
    EXPECT_THROW(IoBridge(cfg, bus), FatalError);
}

TEST(IoBridgeTest, MixesDmaAndPio)
{
    bus::Bus6xx bus;
    IoBridge bridge(smallBridge(), bus);
    for (int i = 0; i < 10000; ++i) {
        bridge.step();
        bus.tick(10);
    }
    const auto &s = bridge.stats();
    EXPECT_GT(s.dmaReads, 1000u);
    EXPECT_GT(s.dmaWrites, 1000u);
    EXPECT_GT(s.pioOps, 500u);
    EXPECT_EQ(s.dmaReads + s.dmaWrites + s.pioOps, 10000u);
}

TEST(IoBridgeTest, DmaIsSequentialAndWraps)
{
    bus::Bus6xx bus;

    class AddrRecorder : public bus::BusSnooper
    {
      public:
        bus::SnoopResponse
        snoop(const bus::BusTransaction &txn) override
        {
            if (bus::isMemoryOp(txn.op))
                addrs.push_back(txn.addr);
            return bus::SnoopResponse::None;
        }
        std::string snooperName() const override { return "rec"; }
        std::vector<Addr> addrs;
    } recorder;
    bus.attach(&recorder);

    IoBridgeConfig cfg = smallBridge();
    cfg.pioFrac = 0.0;
    IoBridge bridge(cfg, bus);
    for (int i = 0; i < 600; ++i)
        bridge.step();

    ASSERT_GE(recorder.addrs.size(), 600u);
    for (std::size_t i = 1; i < 512; ++i) {
        EXPECT_EQ(recorder.addrs[i],
                  cfg.dmaBase + (i * 128) % cfg.dmaBytes);
    }
}

TEST(IoBridgeTest, DmaWritesInvalidateCpuCaches)
{
    workload::UniformWorkload wl(2, 64 * KiB, 0.0, 3);
    HostConfig host_cfg;
    host_cfg.numCpus = 2;
    host_cfg.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                                     cache::ReplacementPolicy::LRU};
    host_cfg.l2 = cache::CacheConfig{64 * KiB, 4, 128,
                                     cache::ReplacementPolicy::LRU};
    HostMachine machine(host_cfg, wl);
    machine.run(20000); // CPUs cache the whole region

    IoBridgeConfig io_cfg = smallBridge();
    io_cfg.pioFrac = 0.0;
    io_cfg.writeFrac = 1.0; // inbound DMA only
    IoBridge bridge(io_cfg, machine.bus());
    const auto inv_before = machine.totalStats().snoopInvalidations;
    for (int i = 0; i < 512; ++i) { // one pass over the region
        bridge.step();
        machine.bus().tick(10);
    }
    EXPECT_GT(machine.totalStats().snoopInvalidations, inv_before);
}

TEST(IoBridgeTest, DmaWritesInvalidateEmulatedDirectory)
{
    bus::Bus6xx bus;
    ies::MemoriesBoard board(ies::makeUniformBoard(
        1, 8,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(bus);

    // A CPU load fills the emulated cache...
    bus::BusTransaction read;
    read.addr = workload::workloadBaseAddr;
    read.op = bus::BusOp::Read;
    read.cpu = 0;
    bus.issue(read);
    bus.tick(1000);

    // ...then inbound DMA overwrites the buffer.
    IoBridgeConfig io_cfg = smallBridge();
    io_cfg.pioFrac = 0.0;
    io_cfg.writeFrac = 1.0;
    IoBridge bridge(io_cfg, bus);
    bridge.step();
    board.drainAll();

    EXPECT_EQ(board.node(0).probeState(workload::workloadBaseAddr),
              protocol::LineState::Invalid);
}

TEST(IoBridgeTest, PioTrafficIsFilteredByBoard)
{
    bus::Bus6xx bus;
    ies::MemoriesBoard board(ies::makeUniformBoard(
        1, 8,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(bus);

    IoBridgeConfig io_cfg = smallBridge();
    io_cfg.pioFrac = 1.0;
    IoBridge bridge(io_cfg, bus);
    for (int i = 0; i < 100; ++i)
        bridge.step();
    board.drainAll();

    EXPECT_EQ(board.globalCounters().valueByName(
                  "global.tenures.filtered"), 100u);
    EXPECT_EQ(board.node(0).stats().localRefs, 0u);
}

} // namespace
} // namespace memories::host
