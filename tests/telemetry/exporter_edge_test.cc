/**
 * @file
 * Exporter edge cases the golden tests' well-formed fixtures never
 * reach: metric names that need escaping in quoted contexts (JSON
 * strings, Prometheus label values), and the zero-window flush — a
 * sampler finished before any window closes must leave every exporter
 * byte-stable (no partial headers, no stray files, no torn output).
 */

#include "telemetry/exporter.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/sampler.hh"

namespace memories::telemetry
{
namespace
{

/** One hand-built window whose metric names need escaping. */
WindowRecord
hostileWindow(const std::string &counter_name,
              const std::string &gauge_name)
{
    WindowRecord w;
    w.index = 0;
    w.beginCycle = 0;
    w.endCycle = 100;
    w.counters.push_back({&counter_name, 7, 7});
    w.gauges.push_back({&gauge_name, 1.5});
    return w;
}

TEST(ExporterEdgeTest, PrometheusEscapesLabelValues)
{
    const std::string counter = "quote\"back\\slash";
    const std::string gauge = "new\nline";
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "memories_prom_escape_test.prom")
            .string();
    PrometheusExporter prom(path);
    prom.exportWindow(hostileWindow(counter, gauge));

    const std::string &text = prom.lastExposition();
    // Inside a label value, `"` and `\` gain a backslash and a raw
    // newline becomes the two characters `\n` — otherwise the line
    // protocol is torn mid-sample.
    EXPECT_NE(
        text.find(
            "memories_counter_total{name=\"quote\\\"back\\\\slash\"}"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("memories_gauge{name=\"new\\nline\"}"),
              std::string::npos)
        << text;
    EXPECT_EQ(text.find("new\nline"), std::string::npos) << text;
    std::filesystem::remove(path);
}

TEST(ExporterEdgeTest, JsonLinesEscapesMetricNames)
{
    const std::string counter = "quote\"back\\slash";
    const std::string gauge = "new\nline";
    std::ostringstream os;
    JsonLinesExporter jsonl(os);
    jsonl.exportWindow(hostileWindow(counter, gauge));
    jsonl.close();
    const std::string text = os.str();
    EXPECT_NE(text.find("\"quote\\\"back\\\\slash\""),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("\"new\\nline\""), std::string::npos) << text;
    // Exactly one record, one line.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(ExporterEdgeTest, ZeroWindowFinishIsByteStableForAllExporters)
{
    // A run can legitimately end before the first window closes
    // (short replay, tiny trace). Every exporter must come out
    // byte-stable: stream sinks emit nothing, file sinks create no
    // file at all — so two such runs diff clean.
    const auto dir = std::filesystem::temp_directory_path();
    const std::string jsonl_path =
        (dir / "memories_zero_window.jsonl").string();
    const std::string csv_path =
        (dir / "memories_zero_window.csv").string();
    const std::string prom_path =
        (dir / "memories_zero_window.prom").string();
    std::filesystem::remove(jsonl_path);
    std::filesystem::remove(csv_path);
    std::filesystem::remove(prom_path);

    std::ostringstream jsonl_os, csv_os;
    JsonLinesExporter jsonl_stream(jsonl_os);
    CsvExporter csv_stream(csv_os);
    JsonLinesExporter jsonl_file(jsonl_path);
    CsvExporter csv_file(csv_path);
    PrometheusExporter prom(prom_path);

    CounterBank bank;
    bank.add("ticks");
    Sampler sampler(1000);
    sampler.addExporter(jsonl_stream);
    sampler.addExporter(csv_stream);
    sampler.addExporter(jsonl_file);
    sampler.addExporter(csv_file);
    sampler.addExporter(prom);
    sampler.addBank("edge", bank);

    // Finish at cycle 0: zero cycles elapsed, zero windows closed.
    sampler.finish(0);
    EXPECT_EQ(sampler.windowsEmitted(), 0u);

    EXPECT_EQ(jsonl_os.str(), "");
    EXPECT_EQ(csv_os.str(), "");
    EXPECT_FALSE(std::filesystem::exists(jsonl_path));
    EXPECT_FALSE(std::filesystem::exists(csv_path));
    EXPECT_FALSE(std::filesystem::exists(prom_path));
    EXPECT_EQ(prom.lastExposition(), "");
}

} // namespace
} // namespace memories::telemetry
