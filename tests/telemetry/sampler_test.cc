#include "telemetry/sampler.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/counters.hh"
#include "common/logging.hh"
#include "telemetry/exporter.hh"

namespace memories::telemetry
{
namespace
{

/** Captures every exported window by value (names deep-copied). */
class CapturingExporter final : public Exporter
{
  public:
    struct Window
    {
        std::uint64_t index;
        Cycle begin;
        Cycle end;
        std::vector<std::string> names;
        std::vector<std::uint64_t> deltas;
        std::vector<std::uint64_t> totals;
        std::vector<double> gauges;
    };

    void exportWindow(const WindowRecord &w) override
    {
        Window copy;
        copy.index = w.index;
        copy.begin = w.beginCycle;
        copy.end = w.endCycle;
        for (const auto &c : w.counters) {
            copy.names.push_back(*c.name);
            copy.deltas.push_back(c.delta);
            copy.totals.push_back(c.total);
        }
        for (const auto &g : w.gauges)
            copy.gauges.push_back(g.value);
        windows.push_back(std::move(copy));
    }

    void close() override { closed = true; }

    std::vector<Window> windows;
    bool closed = false;
};

TEST(SamplerTest, RejectsZeroWindow)
{
    EXPECT_THROW(Sampler(0), FatalError);
}

TEST(SamplerTest, ClosesWindowsOnBusCycles)
{
    Sampler sampler(100);
    CapturingExporter sink;
    sampler.addExporter(sink);

    CounterBank bank;
    auto h = bank.add("events");
    sampler.addBank("test", bank);

    bank.bump(h, 7);
    sampler.advanceTo(50); // still inside window 0
    EXPECT_EQ(sink.windows.size(), 0u);

    sampler.advanceTo(100); // window [0,100) closes
    ASSERT_EQ(sink.windows.size(), 1u);
    EXPECT_EQ(sink.windows[0].index, 0u);
    EXPECT_EQ(sink.windows[0].begin, 0u);
    EXPECT_EQ(sink.windows[0].end, 100u);
    ASSERT_EQ(sink.windows[0].names.size(), 1u);
    EXPECT_EQ(sink.windows[0].names[0], "test.events");
    EXPECT_EQ(sink.windows[0].deltas[0], 7u);
    EXPECT_EQ(sink.windows[0].totals[0], 7u);
}

TEST(SamplerTest, JumpAcrossSeveralWindowsEmitsAll)
{
    Sampler sampler(10);
    CapturingExporter sink;
    sampler.addExporter(sink);
    CounterBank bank;
    auto h = bank.add("c");
    sampler.addBank("", bank);

    bank.bump(h, 3);
    sampler.advanceTo(35); // windows [0,10) [10,20) [20,30) close
    ASSERT_EQ(sink.windows.size(), 3u);
    EXPECT_EQ(sink.windows[0].deltas[0], 3u); // all movement lands first
    EXPECT_EQ(sink.windows[1].deltas[0], 0u);
    EXPECT_EQ(sink.windows[2].deltas[0], 0u);
    EXPECT_EQ(sink.windows[2].totals[0], 3u);
    EXPECT_EQ(sink.windows[0].names[0], "c"); // empty prefix = bare name
}

TEST(SamplerTest, DeltaExactAcrossCounter40Wrap)
{
    // Seed a counter five shy of 2^40, register it, then move it by 15
    // so it wraps. The window delta must be exactly 15 and the running
    // total must keep counting in 64 bits.
    Sampler sampler(100);
    CapturingExporter sink;
    sampler.addExporter(sink);

    CounterBank bank;
    auto h = bank.add("wrapping");
    bank.bump(h, Counter40::mask - 4); // value = 2^40 - 5
    sampler.addBank("b", bank);

    bank.bump(h, 15); // wraps: value is now 10
    ASSERT_EQ(bank.value(h), 10u);
    sampler.advanceTo(100);
    ASSERT_EQ(sink.windows.size(), 1u);
    EXPECT_EQ(sink.windows[0].deltas[0], 15u);
    EXPECT_EQ(sink.windows[0].totals[0], 15u);

    // Wrap again the other way around the full range.
    bank.bump(h, Counter40::mask); // -1 mod 2^40 => value 9
    ASSERT_EQ(bank.value(h), 9u);
    sampler.advanceTo(200);
    ASSERT_EQ(sink.windows.size(), 2u);
    EXPECT_EQ(sink.windows[1].deltas[0], Counter40::mask);
    EXPECT_EQ(sink.windows[1].totals[0], 15u + Counter40::mask);
}

TEST(SamplerTest, AddValueUsesFull64BitDeltas)
{
    Sampler sampler(10);
    CapturingExporter sink;
    sampler.addExporter(sink);

    std::uint64_t big = std::uint64_t{1} << 50;
    sampler.addValue("big", [&big] { return big; });

    big += (std::uint64_t{1} << 45);
    sampler.advanceTo(10);
    ASSERT_EQ(sink.windows.size(), 1u);
    EXPECT_EQ(sink.windows[0].deltas[0], std::uint64_t{1} << 45);
}

TEST(SamplerTest, GaugesReadAtWindowClose)
{
    Sampler sampler(10);
    CapturingExporter sink;
    sampler.addExporter(sink);
    double level = 0.25;
    sampler.addGauge("level", [&level] { return level; });

    sampler.advanceTo(10);
    level = 0.75;
    sampler.advanceTo(20);
    ASSERT_EQ(sink.windows.size(), 2u);
    EXPECT_DOUBLE_EQ(sink.windows[0].gauges[0], 0.25);
    EXPECT_DOUBLE_EQ(sink.windows[1].gauges[0], 0.75);
}

TEST(SamplerTest, WindowCallbackRunsBeforeExport)
{
    // The callback folds this window's delta into a histogram; the
    // exporter must observe the histogram already updated.
    Sampler sampler(10);
    Histogram hist("per_window", 1, 8);
    sampler.addHistogram(hist);

    CounterBank bank;
    auto h = bank.add("n");
    sampler.addBank("", bank);
    sampler.addWindowCallback([&hist](const WindowRecord &w) {
        hist.record(w.counters[0].delta);
    });

    std::vector<std::uint64_t> samples_at_export;
    class Probe final : public Exporter
    {
      public:
        explicit Probe(const Histogram &h,
                       std::vector<std::uint64_t> &out)
            : h_(h), out_(out)
        {
        }
        void exportWindow(const WindowRecord &) override
        {
            out_.push_back(h_.samples());
        }

      private:
        const Histogram &h_;
        std::vector<std::uint64_t> &out_;
    } probe(hist, samples_at_export);
    sampler.addExporter(probe);

    bank.bump(h, 3);
    sampler.advanceTo(10);
    bank.bump(h, 2);
    sampler.advanceTo(20);
    ASSERT_EQ(samples_at_export.size(), 2u);
    EXPECT_EQ(samples_at_export[0], 1u);
    EXPECT_EQ(samples_at_export[1], 2u);
    EXPECT_EQ(hist.count(3), 1u);
    EXPECT_EQ(hist.count(2), 1u);
}

TEST(SamplerTest, FinishEmitsTrailingPartialWindowOnce)
{
    Sampler sampler(100);
    CapturingExporter sink;
    sampler.addExporter(sink);
    CounterBank bank;
    auto h = bank.add("c");
    sampler.addBank("", bank);

    bank.bump(h, 4);
    sampler.advanceTo(100);
    bank.bump(h, 6);
    sampler.finish(140); // partial window [100,140)
    ASSERT_EQ(sink.windows.size(), 2u);
    EXPECT_EQ(sink.windows[1].begin, 100u);
    EXPECT_EQ(sink.windows[1].end, 140u);
    EXPECT_EQ(sink.windows[1].deltas[0], 6u);
    EXPECT_TRUE(sink.closed);

    sampler.finish(500); // idempotent
    EXPECT_EQ(sink.windows.size(), 2u);
    EXPECT_EQ(sampler.windowsEmitted(), 2u);
}

TEST(SamplerTest, ResyncSkipsAheadAndRebaselines)
{
    // Attaching mid-run (console monitor, post-warmup measurement
    // pass): resync must drop pre-attach counter movement and must not
    // emit the empty windows between cycle 0 and now.
    Sampler sampler(100);
    CapturingExporter sink;
    sampler.addExporter(sink);
    CounterBank bank;
    auto h = bank.add("c");
    sampler.addBank("", bank);

    bank.bump(h, 50); // movement before the measured run begins
    sampler.resync(730);
    sampler.advanceTo(800); // closes [700,800) only
    ASSERT_EQ(sink.windows.size(), 1u);
    EXPECT_EQ(sink.windows[0].begin, 700u);
    EXPECT_EQ(sink.windows[0].end, 800u);
    EXPECT_EQ(sink.windows[0].deltas[0], 0u);

    bank.bump(h, 3);
    sampler.advanceTo(900);
    ASSERT_EQ(sink.windows.size(), 2u);
    EXPECT_EQ(sink.windows[1].deltas[0], 3u);
    EXPECT_EQ(sink.windows[1].totals[0], 3u);
}

TEST(SamplerTest, FinishExactlyOnBoundaryEmitsNoEmptyTail)
{
    Sampler sampler(50);
    CapturingExporter sink;
    sampler.addExporter(sink);
    sampler.finish(100); // [0,50) and [50,100), no zero-length tail
    EXPECT_EQ(sink.windows.size(), 2u);
}

} // namespace
} // namespace memories::telemetry
