#include "telemetry/histogram.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::telemetry
{
namespace
{

TEST(HistogramTest, ConstructionRejectsDegenerateShapes)
{
    EXPECT_THROW(Histogram("h", 0, 4), FatalError);
    EXPECT_THROW(Histogram("h", 16, 0), FatalError);
}

TEST(HistogramTest, BucketBoundariesAreHalfOpen)
{
    Histogram h("occupancy", 10, 3); // [0,10) [10,20) [20,30) + overflow
    h.record(0);
    h.record(9);
    h.record(10);
    h.record(29);
    h.record(30); // first value past the last bound
    h.record(1000);

    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
}

TEST(HistogramTest, SumMaxAndMeanTrackObservations)
{
    Histogram h("latency", 5, 4);
    h.record(2);
    h.record(4);
    h.record(12);
    EXPECT_EQ(h.sum(), 18u);
    EXPECT_EQ(h.maxSeen(), 12u);
    EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(HistogramTest, EmptyHistogramHasZeroMean)
{
    Histogram h("empty", 1, 1);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.maxSeen(), 0u);
}

TEST(HistogramTest, ClearForgetsEverything)
{
    Histogram h("h", 2, 2);
    h.record(1);
    h.record(100);
    h.clear();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.maxSeen(), 0u);
}

} // namespace
} // namespace memories::telemetry
