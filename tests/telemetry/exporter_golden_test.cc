/**
 * @file
 * Golden-file tests for the telemetry exporters: exact expected bytes
 * for a small crafted run, plus the byte-stability contract — two
 * identically-seeded runs must serialize identically in every format.
 */

#include "telemetry/exporter.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/counters.hh"
#include "telemetry/histogram.hh"
#include "telemetry/sampler.hh"

namespace memories::telemetry
{
namespace
{

/** One deterministic miniature run serialized into both stream sinks. */
struct RunOutput
{
    std::string jsonl;
    std::string csv;
};

RunOutput
runScenario()
{
    std::ostringstream jsonl_os, csv_os;
    JsonLinesExporter jsonl(jsonl_os);
    CsvExporter csv(csv_os);

    Sampler sampler(100);
    sampler.addExporter(jsonl);
    sampler.addExporter(csv);

    CounterBank bank;
    auto reads = bank.add("reads");
    auto writes = bank.add("writes");
    sampler.addBank("node0", bank);

    double util = 0.0;
    sampler.addGauge("bus.utilization", [&util] { return util; });

    Histogram hist("occupancy", 4, 2);
    sampler.addHistogram(hist);

    bank.bump(reads, 12);
    bank.bump(writes, 3);
    hist.record(1);
    hist.record(5);
    util = 0.125;
    sampler.advanceTo(100);

    bank.bump(reads, 8);
    hist.record(9);
    util = 0.5;
    sampler.finish(150);

    return RunOutput{jsonl_os.str(), csv_os.str()};
}

TEST(ExporterGoldenTest, JsonLinesExactBytes)
{
    const RunOutput out = runScenario();
    const std::string expected =
        "{\"window\":0,\"begin_cycle\":0,\"end_cycle\":100,"
        "\"counters\":{"
        "\"node0.reads\":{\"delta\":12,\"total\":12},"
        "\"node0.writes\":{\"delta\":3,\"total\":3}},"
        "\"gauges\":{\"bus.utilization\":0.125},"
        "\"histograms\":{\"occupancy\":{\"bucket_width\":4,"
        "\"counts\":[1,1],\"overflow\":0,\"samples\":2,\"sum\":6,"
        "\"max\":5}}}\n"
        "{\"window\":1,\"begin_cycle\":100,\"end_cycle\":150,"
        "\"counters\":{"
        "\"node0.reads\":{\"delta\":8,\"total\":20},"
        "\"node0.writes\":{\"delta\":0,\"total\":3}},"
        "\"gauges\":{\"bus.utilization\":0.5},"
        "\"histograms\":{\"occupancy\":{\"bucket_width\":4,"
        "\"counts\":[1,1],\"overflow\":1,\"samples\":3,\"sum\":15,"
        "\"max\":9}}}\n";
    EXPECT_EQ(out.jsonl, expected);
}

TEST(ExporterGoldenTest, CsvExactBytes)
{
    const RunOutput out = runScenario();
    const std::string expected =
        "window,begin_cycle,end_cycle,kind,name,value,total\n"
        "0,0,100,counter,node0.reads,12,12\n"
        "0,0,100,counter,node0.writes,3,3\n"
        "0,0,100,gauge,bus.utilization,0.125,\n"
        "0,0,100,hist_samples,occupancy,2,6\n"
        "0,0,100,hist_mean,occupancy,3,\n"
        "1,100,150,counter,node0.reads,8,20\n"
        "1,100,150,counter,node0.writes,0,3\n"
        "1,100,150,gauge,bus.utilization,0.5,\n"
        "1,100,150,hist_samples,occupancy,3,15\n"
        "1,100,150,hist_mean,occupancy,5,\n";
    EXPECT_EQ(out.csv, expected);
}

TEST(ExporterGoldenTest, IdenticalRunsAreByteIdentical)
{
    const RunOutput a = runScenario();
    const RunOutput b = runScenario();
    EXPECT_EQ(a.jsonl, b.jsonl);
    EXPECT_EQ(a.csv, b.csv);
}

TEST(ExporterGoldenTest, PrometheusExposition)
{
    const std::string path =
        testing::TempDir() + "memories_prom_test.prom";
    PrometheusExporter prom(path);

    Sampler sampler(100);
    sampler.addExporter(prom);
    CounterBank bank;
    auto h = bank.add("tenures");
    sampler.addBank("bus", bank);
    sampler.addGauge("util", [] { return 0.25; });
    Histogram hist("lat", 10, 2);
    sampler.addHistogram(hist);

    bank.bump(h, 5);
    hist.record(3);
    hist.record(25);
    sampler.advanceTo(100);

    const std::string expected =
        "# MemorIES telemetry, window 0, bus cycles [0,100)\n"
        "# TYPE memories_window gauge\n"
        "memories_window 0\n"
        "# TYPE memories_counter_total counter\n"
        "memories_counter_total{name=\"bus.tenures\"} 5\n"
        "# TYPE memories_gauge gauge\n"
        "memories_gauge{name=\"util\"} 0.25\n"
        "# TYPE memories_histogram histogram\n"
        "memories_histogram_bucket{name=\"lat\",le=\"10\"} 1\n"
        "memories_histogram_bucket{name=\"lat\",le=\"20\"} 1\n"
        "memories_histogram_bucket{name=\"lat\",le=\"+Inf\"} 2\n"
        "memories_histogram_sum{name=\"lat\"} 28\n"
        "memories_histogram_count{name=\"lat\"} 2\n";
    EXPECT_EQ(prom.lastExposition(), expected);

    // The file on disk is the exposition, rewritten whole each window.
    std::ifstream in(path);
    std::stringstream disk;
    disk << in.rdbuf();
    EXPECT_EQ(disk.str(), expected);
}

TEST(ExporterGoldenTest, FormatMetricValueIsDeterministic)
{
    EXPECT_EQ(formatMetricValue(0.0), "0");
    EXPECT_EQ(formatMetricValue(42.0), "42");
    EXPECT_EQ(formatMetricValue(-3.0), "-3");
    EXPECT_EQ(formatMetricValue(0.125), "0.125");
    EXPECT_EQ(formatMetricValue(1.0 / 3.0), "0.3333333333");
}

} // namespace
} // namespace memories::telemetry
