#include "bus/bus6xx.hh"

#include <gtest/gtest.h>

#include <vector>

namespace memories::bus
{
namespace
{

/** Scripted snooper that always answers a fixed response. */
class FixedSnooper : public BusSnooper
{
  public:
    explicit FixedSnooper(SnoopResponse response) : response_(response) {}

    SnoopResponse
    snoop(const BusTransaction &txn) override
    {
        seen.push_back(txn);
        return response_;
    }

    std::string snooperName() const override { return "fixed"; }

    std::vector<BusTransaction> seen;

  private:
    SnoopResponse response_;
};

class RecordingObserver : public BusObserver
{
  public:
    void
    observeResult(const BusTransaction &txn, SnoopResponse combined)
        override
    {
        results.emplace_back(txn, combined);
    }

    std::vector<std::pair<BusTransaction, SnoopResponse>> results;
};

BusTransaction
readAt(Addr addr, CpuId cpu = 0)
{
    BusTransaction txn;
    txn.addr = addr;
    txn.cpu = cpu;
    txn.op = BusOp::Read;
    return txn;
}

TEST(SnoopCombineTest, PriorityOrder)
{
    EXPECT_EQ(combineSnoop(SnoopResponse::None, SnoopResponse::Shared),
              SnoopResponse::Shared);
    EXPECT_EQ(combineSnoop(SnoopResponse::Shared,
                           SnoopResponse::Modified),
              SnoopResponse::Modified);
    EXPECT_EQ(combineSnoop(SnoopResponse::Modified,
                           SnoopResponse::Retry),
              SnoopResponse::Retry);
    EXPECT_EQ(combineSnoop(SnoopResponse::Retry, SnoopResponse::None),
              SnoopResponse::Retry);
}

TEST(Bus6xxTest, BroadcastsToAllSnoopers)
{
    Bus6xx bus;
    FixedSnooper a(SnoopResponse::None), b(SnoopResponse::None);
    bus.attach(&a);
    bus.attach(&b);
    bus.issue(readAt(0x1000));
    EXPECT_EQ(a.seen.size(), 1u);
    EXPECT_EQ(b.seen.size(), 1u);
}

TEST(Bus6xxTest, CombinesStrongestResponse)
{
    Bus6xx bus;
    FixedSnooper a(SnoopResponse::Shared), b(SnoopResponse::Modified);
    bus.attach(&a);
    bus.attach(&b);
    EXPECT_EQ(bus.issue(readAt(0x1000)), SnoopResponse::Modified);
}

TEST(Bus6xxTest, StampsAndAdvancesTime)
{
    Bus6xx bus;
    FixedSnooper a(SnoopResponse::None);
    bus.attach(&a);
    bus.tick(10);
    bus.issue(readAt(0x1000));
    EXPECT_EQ(a.seen[0].cycle, 10u);
    EXPECT_EQ(bus.now(), 11u); // address tenure consumed one cycle
}

TEST(Bus6xxTest, AdvanceToNeverGoesBackward)
{
    Bus6xx bus;
    bus.tick(100);
    bus.advanceTo(50);
    EXPECT_EQ(bus.now(), 100u);
    bus.advanceTo(200);
    EXPECT_EQ(bus.now(), 200u);
}

TEST(Bus6xxTest, DetachStopsDelivery)
{
    Bus6xx bus;
    FixedSnooper a(SnoopResponse::None);
    bus.attach(&a);
    bus.issue(readAt(0x1000));
    bus.detach(&a);
    bus.issue(readAt(0x2000));
    EXPECT_EQ(a.seen.size(), 1u);
}

TEST(Bus6xxTest, StatsCountCategories)
{
    Bus6xx bus;
    FixedSnooper a(SnoopResponse::None);
    bus.attach(&a);
    bus.issue(readAt(0x1000));
    BusTransaction io;
    io.op = BusOp::IoRead;
    bus.issue(io);
    EXPECT_EQ(bus.stats().tenures, 2u);
    EXPECT_EQ(bus.stats().memoryOps, 1u);
    EXPECT_EQ(bus.stats().filteredOps, 1u);
}

TEST(Bus6xxTest, StatsCountResponses)
{
    Bus6xx bus;
    FixedSnooper mod(SnoopResponse::Modified);
    bus.attach(&mod);
    bus.issue(readAt(0x1000));
    EXPECT_EQ(bus.stats().modifiedResponses, 1u);

    bus.detach(&mod);
    FixedSnooper retry(SnoopResponse::Retry);
    bus.attach(&retry);
    bus.issue(readAt(0x2000));
    EXPECT_EQ(bus.stats().retries, 1u);
}

TEST(Bus6xxTest, UtilizationIsTenuresOverCycles)
{
    Bus6xx bus;
    for (int i = 0; i < 10; ++i) {
        bus.issue(readAt(0x1000u + 128u * i));
        bus.tick(9); // 1 tenure cycle + 9 idle = 10% utilization
    }
    EXPECT_NEAR(bus.stats().utilization(bus.now()), 0.10, 1e-9);
}

TEST(Bus6xxTest, ObserverSeesCombinedResponse)
{
    Bus6xx bus;
    FixedSnooper a(SnoopResponse::Shared);
    RecordingObserver obs;
    bus.attach(&a);
    bus.attachObserver(&obs);
    bus.issue(readAt(0x1000));
    ASSERT_EQ(obs.results.size(), 1u);
    EXPECT_EQ(obs.results[0].second, SnoopResponse::Shared);
    EXPECT_EQ(obs.results[0].first.addr, 0x1000u);
}

TEST(Bus6xxTest, ObserverDetachStopsDelivery)
{
    Bus6xx bus;
    RecordingObserver obs;
    bus.attachObserver(&obs);
    bus.issue(readAt(0x1000));
    bus.detachObserver(&obs);
    bus.issue(readAt(0x2000));
    EXPECT_EQ(obs.results.size(), 1u);
}

TEST(Bus6xxTest, ClearStatsKeepsClock)
{
    Bus6xx bus;
    bus.issue(readAt(0x1000));
    const Cycle t = bus.now();
    bus.clearStats();
    EXPECT_EQ(bus.stats().tenures, 0u);
    EXPECT_EQ(bus.now(), t);
}

} // namespace
} // namespace memories::bus
