#include "bus/busop.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::bus
{
namespace
{

TEST(BusOpTest, MemoryOpsClassified)
{
    EXPECT_TRUE(isMemoryOp(BusOp::Read));
    EXPECT_TRUE(isMemoryOp(BusOp::Rwitm));
    EXPECT_TRUE(isMemoryOp(BusOp::WriteBack));
    EXPECT_FALSE(isMemoryOp(BusOp::IoRead));
    EXPECT_FALSE(isMemoryOp(BusOp::IoWrite));
    EXPECT_FALSE(isMemoryOp(BusOp::Interrupt));
    EXPECT_FALSE(isMemoryOp(BusOp::Sync));
}

TEST(BusOpTest, ReadOpsClassified)
{
    EXPECT_TRUE(isReadOp(BusOp::Read));
    EXPECT_TRUE(isReadOp(BusOp::ReadIfetch));
    EXPECT_TRUE(isReadOp(BusOp::Rwitm));
    EXPECT_FALSE(isReadOp(BusOp::DClaim));
    EXPECT_FALSE(isReadOp(BusOp::WriteBack));
}

TEST(BusOpTest, WriteIntentOpsClassified)
{
    EXPECT_TRUE(isWriteIntentOp(BusOp::Rwitm));
    EXPECT_TRUE(isWriteIntentOp(BusOp::DClaim));
    EXPECT_TRUE(isWriteIntentOp(BusOp::WriteKill));
    EXPECT_FALSE(isWriteIntentOp(BusOp::Read));
    EXPECT_FALSE(isWriteIntentOp(BusOp::WriteBack));
}

TEST(BusOpTest, FilteredIsComplementOfMemory)
{
    for (std::size_t i = 0; i < numBusOps; ++i) {
        const auto op = static_cast<BusOp>(i);
        EXPECT_NE(isFilteredOp(op), isMemoryOp(op));
    }
}

TEST(BusOpTest, NamesRoundTrip)
{
    for (std::size_t i = 0; i < numBusOps; ++i) {
        const auto op = static_cast<BusOp>(i);
        EXPECT_EQ(busOpFromName(busOpName(op)), op);
    }
}

TEST(BusOpTest, UnknownNameIsFatal)
{
    EXPECT_THROW(busOpFromName("BOGUS"), memories::FatalError);
}

TEST(BusOpTest, NamesAreUnique)
{
    for (std::size_t i = 0; i < numBusOps; ++i) {
        for (std::size_t j = i + 1; j < numBusOps; ++j) {
            EXPECT_NE(busOpName(static_cast<BusOp>(i)),
                      busOpName(static_cast<BusOp>(j)));
        }
    }
}

} // namespace
} // namespace memories::bus
