#include "bus/bus6xx.hh"

#include <gtest/gtest.h>

namespace memories::bus
{
namespace
{

BusTransaction
txnOf(BusOp op, std::uint16_t size = 128)
{
    BusTransaction t;
    t.addr = 0x1000;
    t.op = op;
    t.size = size;
    return t;
}

TEST(DataBusTest, DataBearingOpsConsumeBeats)
{
    Bus6xx bus; // 16B per beat: a 128B line is 8 beats
    bus.issue(txnOf(BusOp::Read));
    EXPECT_EQ(bus.stats().dataCycles, 8u);
    bus.issue(txnOf(BusOp::WriteBack));
    EXPECT_EQ(bus.stats().dataCycles, 16u);
}

TEST(DataBusTest, AddressOnlyOpsConsumeNone)
{
    Bus6xx bus;
    bus.issue(txnOf(BusOp::DClaim));
    bus.issue(txnOf(BusOp::Kill));
    bus.issue(txnOf(BusOp::Sync));
    EXPECT_EQ(bus.stats().dataCycles, 0u);
}

TEST(DataBusTest, BeatCountScalesWithSizeAndWidth)
{
    Bus6xx bus;
    bus.setDataBusBytesPerBeat(32);
    bus.issue(txnOf(BusOp::Read, 128));
    EXPECT_EQ(bus.stats().dataCycles, 4u);
    bus.issue(txnOf(BusOp::Read, 1024));
    EXPECT_EQ(bus.stats().dataCycles, 4u + 32u);
}

TEST(DataBusTest, RetriedTenureTransfersNothing)
{
    class Retrier : public BusSnooper
    {
      public:
        SnoopResponse snoop(const BusTransaction &) override
        {
            return SnoopResponse::Retry;
        }
        std::string snooperName() const override { return "r"; }
    } retrier;

    Bus6xx bus;
    bus.attach(&retrier);
    bus.issue(txnOf(BusOp::Read));
    EXPECT_EQ(bus.stats().dataCycles, 0u);
}

TEST(DataBusTest, DataUtilizationMatchesPaperArithmetic)
{
    // One 128B read per 40 cycles: address util 2.5%, data util 20% -
    // the relationship behind the paper's "20% utilization" figures
    // and Table 3's effective 1e7 refs/s.
    Bus6xx bus;
    for (int i = 0; i < 100; ++i) {
        bus.issue(txnOf(BusOp::Read));
        bus.tick(39);
    }
    const auto elapsed = bus.now();
    EXPECT_NEAR(bus.stats().utilization(elapsed), 0.025, 1e-3);
    EXPECT_NEAR(bus.stats().dataUtilization(elapsed), 0.20, 1e-3);
}

TEST(DataBusTest, ZeroWidthFallsBackToDefault)
{
    Bus6xx bus;
    bus.setDataBusBytesPerBeat(0);
    EXPECT_EQ(bus.dataBusBytesPerBeat(), 16u);
}

} // namespace
} // namespace memories::bus
