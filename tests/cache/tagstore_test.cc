#include "cache/tagstore.hh"

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace memories::cache
{
namespace
{

CacheConfig
smallConfig(unsigned assoc = 2,
            ReplacementPolicy policy = ReplacementPolicy::LRU)
{
    // 8KB, 128B lines -> 64 lines.
    return CacheConfig{8 * KiB, assoc, 128, policy};
}

TEST(TagStoreTest, MissesWhenEmpty)
{
    TagStore ts(smallConfig());
    EXPECT_FALSE(ts.lookup(0x1000).hit);
    EXPECT_EQ(ts.occupancy(), 0u);
}

TEST(TagStoreTest, HitsAfterAllocate)
{
    TagStore ts(smallConfig());
    ts.allocate(0x1000, 2);
    const auto r = ts.lookup(0x1000);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.state, 2);
    EXPECT_EQ(ts.occupancy(), 1u);
}

TEST(TagStoreTest, HitsAnywhereInLine)
{
    TagStore ts(smallConfig());
    ts.allocate(0x1000, 1);
    EXPECT_TRUE(ts.lookup(0x1000 + 127).hit);
    EXPECT_FALSE(ts.lookup(0x1000 + 128).hit);
}

TEST(TagStoreTest, LineAlign)
{
    TagStore ts(smallConfig());
    EXPECT_EQ(ts.lineAlign(0x1234), 0x1200u & ~0x7full);
}

TEST(TagStoreTest, AllocateIntoEmptyFrameEvictsNothing)
{
    TagStore ts(smallConfig());
    const auto ev = ts.allocate(0x1000, 1);
    EXPECT_FALSE(ev.valid);
}

TEST(TagStoreTest, ConflictEvictionReportsVictim)
{
    TagStore ts(smallConfig(1)); // direct mapped, 64 sets
    const Addr a = 0x0000;
    const Addr b = a + 64 * 128; // same set, different tag
    ts.allocate(a, 3);
    const auto ev = ts.allocate(b, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, a);
    EXPECT_EQ(ev.state, 3);
    EXPECT_FALSE(ts.lookup(a).hit);
    EXPECT_TRUE(ts.lookup(b).hit);
}

TEST(TagStoreTest, LruEvictsLeastRecentlyUsed)
{
    TagStore ts(smallConfig(2));
    const std::uint64_t set_stride = 32 * 128; // 32 sets at 2-way
    const Addr a = 0, b = set_stride, c = 2 * set_stride;
    ts.allocate(a, 1);
    ts.allocate(b, 1);
    ts.lookup(a); // touch a; b becomes LRU
    const auto ev = ts.allocate(c, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, b);
    EXPECT_TRUE(ts.lookup(a).hit);
}

TEST(TagStoreTest, FifoIgnoresTouches)
{
    TagStore ts(smallConfig(2, ReplacementPolicy::FIFO));
    const std::uint64_t set_stride = 32 * 128;
    const Addr a = 0, b = set_stride, c = 2 * set_stride;
    ts.allocate(a, 1);
    ts.allocate(b, 1);
    ts.lookup(a); // FIFO: does not protect a
    const auto ev = ts.allocate(c, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, a);
}

TEST(TagStoreTest, RandomReplacementStaysInSet)
{
    TagStore ts(smallConfig(4, ReplacementPolicy::Random));
    const std::uint64_t set_stride = 16 * 128; // 16 sets at 4-way
    for (int i = 0; i < 4; ++i)
        ts.allocate(i * set_stride, 1);
    // Fifth conflicting line must evict one of the four.
    const auto ev = ts.allocate(4 * set_stride, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr % set_stride, 0u);
    EXPECT_EQ(ts.occupancy(), 4u);
}

TEST(TagStoreTest, SetStateChangesState)
{
    TagStore ts(smallConfig());
    ts.allocate(0x1000, 1);
    ts.setState(0x1000, 3);
    EXPECT_EQ(ts.probe(0x1000).state, 3);
}

TEST(TagStoreTest, SetStateInvalidRemovesLine)
{
    TagStore ts(smallConfig());
    ts.allocate(0x1000, 1);
    ts.setState(0x1000, invalidState);
    EXPECT_FALSE(ts.probe(0x1000).hit);
    EXPECT_EQ(ts.occupancy(), 0u);
}

TEST(TagStoreDeathTest, SetStateOnMissingLinePanics)
{
    TagStore ts(smallConfig());
    EXPECT_DEATH(ts.setState(0x1000, 2), "non-resident");
}

TEST(TagStoreDeathTest, AllocateInvalidStatePanics)
{
    TagStore ts(smallConfig());
    EXPECT_DEATH(ts.allocate(0x1000, invalidState), "Invalid");
}

TEST(TagStoreTest, InvalidateReportsResidency)
{
    TagStore ts(smallConfig());
    ts.allocate(0x1000, 1);
    EXPECT_TRUE(ts.invalidate(0x1000));
    EXPECT_FALSE(ts.invalidate(0x1000));
}

TEST(TagStoreTest, ProbeDoesNotTouchLru)
{
    TagStore ts(smallConfig(2));
    const std::uint64_t set_stride = 32 * 128;
    const Addr a = 0, b = set_stride, c = 2 * set_stride;
    ts.allocate(a, 1);
    ts.allocate(b, 1);
    ts.probe(a); // must NOT protect a
    const auto ev = ts.allocate(c, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, a);
}

TEST(TagStoreTest, ForEachValidVisitsAll)
{
    TagStore ts(smallConfig());
    std::set<Addr> expected{0x0000, 0x0080, 0x0100}; // distinct sets
    for (Addr a : expected)
        ts.allocate(a, 1);
    std::set<Addr> seen;
    ts.forEachValid([&](Addr addr, LineStateRaw) { seen.insert(addr); });
    EXPECT_EQ(seen, expected);
}

TEST(TagStoreTest, ResetEmptiesStore)
{
    TagStore ts(smallConfig());
    ts.allocate(0x1000, 1);
    ts.reset();
    EXPECT_EQ(ts.occupancy(), 0u);
    EXPECT_FALSE(ts.probe(0x1000).hit);
}

TEST(TagStoreTest, OccupancyNeverExceedsCapacity)
{
    TagStore ts(smallConfig(2));
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ts.allocate(rng.nextBounded(1 << 20) * 128, 1);
    EXPECT_LE(ts.occupancy(), ts.config().numLines());
}

/** Property sweep: working set <= capacity never misses after warmup. */
class TagStoreProperty
    : public ::testing::TestWithParam<
          std::tuple<unsigned, ReplacementPolicy>>
{
};

TEST_P(TagStoreProperty, ResidentWorkingSetAlwaysHits)
{
    const auto [assoc, policy] = GetParam();
    CacheConfig cfg{16 * KiB, assoc, 128, policy};
    TagStore ts(cfg);
    const std::uint64_t lines = cfg.numLines();
    // Sequential fill: addresses map uniformly, one per frame.
    for (std::uint64_t i = 0; i < lines; ++i)
        ts.allocate(i * 128, 1);
    EXPECT_EQ(ts.occupancy(), lines);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(ts.lookup(i * 128).hit) << "line " << i;
}

TEST_P(TagStoreProperty, EvictionConservesOccupancy)
{
    const auto [assoc, policy] = GetParam();
    CacheConfig cfg{8 * KiB, assoc, 128, policy};
    TagStore ts(cfg, 77);
    Rng rng(5);
    std::uint64_t fills = 0, evictions = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.nextBounded(4096) * 128;
        if (!ts.lookup(addr).hit) {
            const auto ev = ts.allocate(addr, 1);
            ++fills;
            evictions += ev.valid;
        }
    }
    EXPECT_EQ(ts.occupancy(), fills - evictions);
    EXPECT_LE(ts.occupancy(), cfg.numLines());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TagStoreProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(ReplacementPolicy::LRU,
                                         ReplacementPolicy::FIFO,
                                         ReplacementPolicy::Random)));

} // namespace
} // namespace memories::cache
