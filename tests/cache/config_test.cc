#include "cache/config.hh"

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace memories::cache
{
namespace
{

TEST(CacheConfigTest, DefaultIsValidForBoard)
{
    CacheConfig cfg;
    EXPECT_NO_THROW(cfg.validate(boardBounds()));
}

TEST(CacheConfigTest, GeometryDerivation)
{
    CacheConfig cfg{64 * MiB, 4, 128, ReplacementPolicy::LRU};
    EXPECT_EQ(cfg.numLines(), 64 * MiB / 128);
    EXPECT_EQ(cfg.numSets(), 64 * MiB / (128 * 4));
}

TEST(CacheConfigTest, Table2MinimumGeometry)
{
    // Table 2: 2MB, direct-mapped, 128B lines.
    CacheConfig cfg{2 * MiB, 1, 128, ReplacementPolicy::LRU};
    EXPECT_NO_THROW(cfg.validate(boardBounds()));
}

TEST(CacheConfigTest, Table2MaximumGeometry)
{
    // Table 2: 8GB, 8-way, 16KB lines.
    CacheConfig cfg{8 * GiB, 8, 16 * KiB, ReplacementPolicy::LRU};
    EXPECT_NO_THROW(cfg.validate(boardBounds()));
}

TEST(CacheConfigTest, BoardRejectsTooSmall)
{
    CacheConfig cfg{1 * MiB, 1, 128, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
}

TEST(CacheConfigTest, BoardRejectsTooLarge)
{
    CacheConfig cfg{16 * GiB, 8, 128, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
}

TEST(CacheConfigTest, BoardRejectsAssocBeyond8)
{
    CacheConfig cfg{64 * MiB, 16, 128, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
}

TEST(CacheConfigTest, BoardRejectsSmallLines)
{
    CacheConfig cfg{64 * MiB, 4, 64, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
}

TEST(CacheConfigTest, BoardRejectsLinesBeyond16K)
{
    CacheConfig cfg{64 * MiB, 4, 32 * KiB, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
}

TEST(CacheConfigTest, RejectsNonPowerOf2Size)
{
    CacheConfig cfg{3 * MiB, 1, 128, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
}

TEST(CacheConfigTest, RejectsNonPowerOf2Line)
{
    CacheConfig cfg{64 * MiB, 4, 192, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(hostBounds()), FatalError);
}

TEST(CacheConfigTest, HostBoundsAllowSmallCaches)
{
    CacheConfig cfg{64 * KiB, 4, 128, ReplacementPolicy::LRU};
    EXPECT_THROW(cfg.validate(boardBounds()), FatalError);
    EXPECT_NO_THROW(cfg.validate(hostBounds()));
}

TEST(CacheConfigTest, DescribeMentionsEverything)
{
    CacheConfig cfg{64 * MiB, 4, 128, ReplacementPolicy::LRU};
    const auto text = cfg.describe();
    EXPECT_NE(text.find("64MB"), std::string::npos);
    EXPECT_NE(text.find("4-way"), std::string::npos);
    EXPECT_NE(text.find("128B"), std::string::npos);
    EXPECT_NE(text.find("LRU"), std::string::npos);
}

TEST(CacheConfigTest, DescribeDirectMapped)
{
    CacheConfig cfg{16 * MiB, 1, 128, ReplacementPolicy::Random};
    EXPECT_NE(cfg.describe().find("direct-mapped"), std::string::npos);
}

TEST(CacheConfigTest, DirectoryBudgetArithmetic)
{
    // The 8GB/128B maximum uses exactly the node's 256MB SDRAM budget
    // at 4 bytes per frame - which is why Table 2 tops out at 8GB.
    CacheConfig max{8 * GiB, 8, 128, ReplacementPolicy::LRU};
    EXPECT_EQ(max.directoryBytes(), nodeSdramBudget);
}

TEST(CacheConfigTest, ReplacementPolicyNames)
{
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::LRU), "LRU");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::FIFO), "FIFO");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Random),
                 "Random");
}

/** Table 2 parameter sweep: every combination in range must validate. */
class Table2Sweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, unsigned, std::uint64_t>>
{
};

TEST_P(Table2Sweep, AllInRangeGeometriesValidate)
{
    const auto [size, assoc, line] = GetParam();
    CacheConfig cfg{size, assoc, line, ReplacementPolicy::LRU};
    if (size >= static_cast<std::uint64_t>(assoc) * line &&
        isPowerOf2(size / (line * assoc))) {
        EXPECT_NO_THROW(cfg.validate(boardBounds()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Table2Sweep,
    ::testing::Combine(
        ::testing::Values(2 * MiB, 16 * MiB, 64 * MiB, 1 * GiB, 8 * GiB),
        ::testing::Values(1u, 2u, 4u, 8u),
        ::testing::Values(std::uint64_t{128}, std::uint64_t{1024},
                          16 * KiB)));

} // namespace
} // namespace memories::cache
