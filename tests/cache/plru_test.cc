#include "cache/tagstore.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"

namespace memories::cache
{
namespace
{

CacheConfig
plruConfig(unsigned assoc)
{
    return CacheConfig{8 * KiB, assoc, 128, ReplacementPolicy::TreePLRU};
}

TEST(PlruTest, RejectsNonPowerOfTwoAssoc)
{
    // Host bounds allow up to 16 ways; a 3-way PLRU tree is malformed.
    CacheConfig cfg{6 * KiB, 3, 128, ReplacementPolicy::TreePLRU};
    EXPECT_THROW(TagStore ts(cfg), FatalError);
}

TEST(PlruTest, DirectMappedDegenerates)
{
    TagStore ts(plruConfig(1));
    ts.allocate(0x0000, 1);
    const auto ev = ts.allocate(64 * 128, 1); // same set, DM
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x0000u);
}

TEST(PlruTest, TwoWayBehavesLikeLru)
{
    TagStore ts(plruConfig(2));
    const std::uint64_t stride = 32 * 128; // 32 sets at 2-way
    ts.allocate(0, 1);
    ts.allocate(stride, 1);
    ts.lookup(0); // protect way holding line 0
    const auto ev = ts.allocate(2 * stride, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, stride);
}

TEST(PlruTest, FourWayVictimIsNotMostRecent)
{
    TagStore ts(plruConfig(4));
    const std::uint64_t stride = 16 * 128; // 16 sets at 4-way
    for (std::uint64_t i = 0; i < 4; ++i)
        ts.allocate(i * stride, 1);
    // Touch line 2 last; PLRU must not evict it next.
    ts.lookup(2 * stride);
    const auto ev = ts.allocate(4 * stride, 1);
    ASSERT_TRUE(ev.valid);
    EXPECT_NE(ev.lineAddr, 2 * stride);
}

TEST(PlruTest, RepeatedTouchSurvivesManyConflicts)
{
    // A line touched between every conflicting fill is never evicted
    // by tree-PLRU (the path bits always point away from it).
    TagStore ts(plruConfig(4));
    const std::uint64_t stride = 16 * 128;
    const Addr hot = 0;
    ts.allocate(hot, 1);
    for (std::uint64_t i = 1; i < 50; ++i) {
        ts.lookup(hot);
        ts.allocate(i * stride, 1);
        EXPECT_TRUE(ts.probe(hot).hit) << "iteration " << i;
    }
}

TEST(PlruTest, EightWayFillsAllWaysBeforeEvicting)
{
    TagStore ts(plruConfig(8));
    const std::uint64_t stride = 8 * 128; // 8 sets at 8-way
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto ev = ts.allocate(i * stride, 1);
        EXPECT_FALSE(ev.valid) << "way " << i;
    }
    EXPECT_TRUE(ts.allocate(8 * stride, 1).valid);
}

TEST(PlruTest, ZipfTrafficBeatsRandomReplacement)
{
    // Pseudo-LRU should track true LRU closely on skewed traffic and
    // clearly beat Random.
    auto run = [](ReplacementPolicy policy) {
        CacheConfig cfg{16 * KiB, 4, 128, policy};
        TagStore ts(cfg, 7);
        Rng rng(99);
        ZipfSampler zipf(4096, 0.9);
        std::uint64_t misses = 0;
        for (int i = 0; i < 200000; ++i) {
            const Addr addr = zipf.sample(rng) * 128;
            if (!ts.lookup(addr).hit) {
                ++misses;
                ts.allocate(addr, 1);
            }
        }
        return misses;
    };
    const auto plru = run(ReplacementPolicy::TreePLRU);
    const auto lru = run(ReplacementPolicy::LRU);
    const auto random = run(ReplacementPolicy::Random);
    EXPECT_LT(plru, random);
    // PLRU within 15% of true LRU.
    EXPECT_LT(static_cast<double>(plru),
              static_cast<double>(lru) * 1.15);
}

TEST(PlruTest, ResetClearsTreeBits)
{
    TagStore ts(plruConfig(4));
    const std::uint64_t stride = 16 * 128;
    for (std::uint64_t i = 0; i < 4; ++i)
        ts.allocate(i * stride, 1);
    ts.reset();
    // After reset, fills use empty frames again in order.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_FALSE(ts.allocate(i * stride, 1).valid);
}

} // namespace
} // namespace memories::cache
