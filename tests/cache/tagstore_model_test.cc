/**
 * @file
 * Property test: TagStore's LRU behaviour against an executable
 * reference model (per-set recency lists) under randomized traffic.
 */

#include "cache/tagstore.hh"

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "common/random.hh"

namespace memories::cache
{
namespace
{

/** Straightforward per-set LRU reference model. */
class ReferenceLru
{
  public:
    ReferenceLru(std::uint64_t sets, unsigned assoc,
                 std::uint64_t line_size)
        : sets_(sets), assoc_(assoc), lineShift_(0)
    {
        while ((std::uint64_t{1} << lineShift_) < line_size)
            ++lineShift_;
        lists_.resize(sets);
    }

    bool
    lookup(Addr addr)
    {
        const auto line = addr >> lineShift_;
        auto &lru = lists_[line & (sets_ - 1)];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == line) {
                lru.erase(it);
                lru.push_front(line);
                return true;
            }
        }
        return false;
    }

    /** Install; returns the evicted line address or invalidAddr. */
    Addr
    allocate(Addr addr)
    {
        const auto line = addr >> lineShift_;
        auto &lru = lists_[line & (sets_ - 1)];
        Addr victim = invalidAddr;
        if (lru.size() >= assoc_) {
            victim = lru.back() << lineShift_;
            lru.pop_back();
        }
        lru.push_front(line);
        return victim;
    }

  private:
    std::uint64_t sets_;
    unsigned assoc_;
    unsigned lineShift_;
    std::vector<std::list<std::uint64_t>> lists_;
};

class TagStoreModelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{
};

TEST_P(TagStoreModelTest, MatchesReferenceLru)
{
    const auto [assoc, seed] = GetParam();
    CacheConfig cfg{16 * KiB, assoc, 128, ReplacementPolicy::LRU};
    TagStore ts(cfg);
    ReferenceLru ref(cfg.numSets(), assoc, cfg.lineSize);

    Rng rng(static_cast<std::uint64_t>(seed));
    for (int i = 0; i < 50000; ++i) {
        const Addr addr = rng.nextBounded(1024) * 128;
        const bool ts_hit = ts.lookup(addr).hit;
        const bool ref_hit = ref.lookup(addr);
        ASSERT_EQ(ts_hit, ref_hit)
            << "divergence at step " << i << " addr " << addr;
        if (!ts_hit) {
            const auto ev = ts.allocate(addr, 1);
            const Addr ref_victim = ref.allocate(addr);
            if (ev.valid) {
                ASSERT_EQ(ev.lineAddr, ref_victim)
                    << "victim divergence at step " << i;
            } else {
                ASSERT_EQ(ref_victim, invalidAddr);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Assocs, TagStoreModelTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace memories::cache
