/**
 * @file
 * IESPROF non-perturbation tier: attaching a profiler must not change
 * one observable byte of the emulation. "Byte-identical" is taken as
 * literally as in the sharding tier it mirrors: every global and node
 * counter, every node's directorySnapshot(), the retirement order,
 * the buffer statistics, and the chrome-trace JSON rendered from the
 * flight-recorder ring must match between an instrumented run and a
 * bare one — across the serial path, the threadless batch path, and
 * the shard pool at every supported worker count.
 *
 * Run under TSan (CI's shard-equivalence leg) this also proves the
 * per-thread shard slabs race-free: workers write their own cells,
 * the pool's fork/join mutex orders them against the coordinator.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ies/board.hh"
#include "oracle/stimulus.hh"
#include "profile/profiler.hh"
#include "trace/chrometrace.hh"
#include "trace/lifecycle.hh"

namespace memories::profile
{
namespace
{

/** Everything observable about a board after a run. */
struct BoardSignature
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>> dirs;
    std::uint64_t bufferRetired = 0;
    std::size_t bufferSize = 0;
    std::size_t bufferHighWater = 0;
    std::vector<std::uint32_t> retirementOrder;
    std::string chromeTrace;
};

BoardSignature
signatureOf(const ies::MemoriesBoard &board,
            const trace::FlightRecorder *recorder)
{
    BoardSignature sig;
    board.globalCounters().snapshot([&](const CounterSample &s) {
        sig.counters.emplace_back(s.name, s.value);
    });
    for (std::size_t i = 0; i < board.numNodes(); ++i) {
        board.node(i).counters().snapshot([&](const CounterSample &s) {
            sig.counters.emplace_back(s.name, s.value);
        });
        sig.dirs.push_back(board.node(i).directorySnapshot());
    }
    sig.bufferRetired = board.bufferRetired();
    sig.bufferSize = board.bufferSize();
    sig.bufferHighWater = board.bufferHighWater();
    if (recorder) {
        const auto events = recorder->snapshot();
        for (const auto &ev : events) {
            if (ev.kind == trace::EventKind::Retire)
                sig.retirementOrder.push_back(ev.traceId);
        }
        sig.chromeTrace = trace::chromeTraceToString(events, recorder);
    }
    return sig;
}

void
expectIdentical(const BoardSignature &bare,
                const BoardSignature &profiled, const std::string &what)
{
    ASSERT_EQ(bare.counters.size(), profiled.counters.size()) << what;
    for (std::size_t i = 0; i < bare.counters.size(); ++i) {
        EXPECT_EQ(bare.counters[i].second, profiled.counters[i].second)
            << what << ": counter " << bare.counters[i].first;
    }
    ASSERT_EQ(bare.dirs.size(), profiled.dirs.size()) << what;
    for (std::size_t n = 0; n < bare.dirs.size(); ++n)
        EXPECT_EQ(bare.dirs[n], profiled.dirs[n])
            << what << ": node " << n << " directory";
    EXPECT_EQ(bare.bufferRetired, profiled.bufferRetired) << what;
    EXPECT_EQ(bare.bufferSize, profiled.bufferSize) << what;
    EXPECT_EQ(bare.bufferHighWater, profiled.bufferHighWater) << what;
    EXPECT_EQ(bare.retirementOrder, profiled.retirementOrder) << what;
    EXPECT_EQ(bare.chromeTrace, profiled.chromeTrace) << what;
}

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = 8;
    return oracle::StimulusGen(p).generate();
}

cache::CacheConfig
cacheCfg(std::uint64_t bytes, unsigned assoc,
         cache::ReplacementPolicy policy = cache::ReplacementPolicy::LRU)
{
    return cache::CacheConfig{bytes, assoc, 128, policy};
}

/** The geometries the tier sweeps; same lattice as shard_equiv. */
struct EquivConfig
{
    std::string name;
    ies::BoardConfig board;
};

std::vector<EquivConfig>
equivConfigs()
{
    using ies::makeMultiConfigBoard;
    using ies::makeUniformBoard;
    std::vector<EquivConfig> cfgs;
    cfgs.push_back(
        {"mesi-4node", makeUniformBoard(4, 2, cacheCfg(2 * MiB, 4))});
    cfgs.push_back(
        {"moesi-2node-fifo",
         makeUniformBoard(2, 4,
                          cacheCfg(2 * MiB, 2,
                                   cache::ReplacementPolicy::FIFO),
                          "MOESI")});
    cfgs.push_back(
        {"multicfg",
         makeMultiConfigBoard({cacheCfg(2 * MiB, 2), cacheCfg(4 * MiB, 4),
                               cacheCfg(8 * MiB, 8)},
                              4)});
    {
        // Tiny, slow buffer: pacing, overflow, and drop paths fire —
        // the CreditPacing hook must not change what gets dropped.
        ies::BoardConfig tiny =
            makeUniformBoard(2, 4, cacheCfg(2 * MiB, 4));
        tiny.bufferEntries = 32;
        tiny.sdramThroughputPercent = 10;
        cfgs.push_back({"tinybuf", std::move(tiny)});
    }
    return cfgs;
}

enum class Feed
{
    Serial,  //!< feedCommitted per element
    Batch,   //!< feedBatch, threadless
    Sharded, //!< feedBatch across a worker pool
};

BoardSignature
run(const ies::BoardConfig &cfg,
    const std::vector<bus::BusTransaction> &txns, Feed feed,
    std::size_t shards, bool profiled, bool record,
    Profiler *prof_out = nullptr)
{
    ies::MemoriesBoard board(cfg);
    std::unique_ptr<trace::FlightRecorder> recorder;
    if (record) {
        recorder = std::make_unique<trace::FlightRecorder>(1 << 14);
        board.attachFlightRecorder(*recorder);
    }
    Profiler local;
    Profiler &prof = prof_out ? *prof_out : local;
    if (profiled)
        board.attachProfiler(prof);
    if (feed == Feed::Sharded && shards > 1)
        board.enableSharding(shards);
    if (feed == Feed::Serial) {
        for (const auto &t : txns)
            board.feedCommitted(t);
    } else {
        constexpr std::size_t chunk = 512;
        for (std::size_t at = 0; at < txns.size(); at += chunk) {
            const std::size_t n = std::min(chunk, txns.size() - at);
            board.feedBatch(&txns[at], n);
        }
    }
    return signatureOf(board, recorder.get());
}

TEST(ProfEquivTest, AttachedMatchesDetachedAcrossFeedsAndShards)
{
    struct Leg
    {
        std::string name;
        Feed feed;
        std::size_t shards;
    };
    const std::vector<Leg> legs = {
        {"serial", Feed::Serial, 1},   {"batch@1", Feed::Batch, 1},
        {"sharded@2", Feed::Sharded, 2}, {"sharded@4", Feed::Sharded, 4},
        {"sharded@8", Feed::Sharded, 8},
    };
    for (const auto &cfg : equivConfigs()) {
        const auto txns = stream(101, 3000);
        for (const auto &leg : legs) {
            const auto bare = run(cfg.board, txns, leg.feed,
                                  leg.shards, false, true);
            const auto profiled = run(cfg.board, txns, leg.feed,
                                      leg.shards, true, true);
            expectIdentical(bare, profiled,
                            cfg.name + " " + leg.name);
        }
    }
}

TEST(ProfEquivTest, ProfiledShardedRunActuallyMeasuredSomething)
{
    // Guard against the equivalence passing vacuously because the
    // hooks never fired: the instrumented leg must have attributed
    // real time and real per-shard work.
    const auto cfgs = equivConfigs();
    const auto txns = stream(211, 3000);
    Profiler prof;
    run(cfgs.front().board, txns, Feed::Sharded, 4, true, false,
        &prof);
    const ProfReport report = prof.snapshot();
    EXPECT_GT(report.batches, 0u);
    EXPECT_GT(report.stage(Stage::FeedBatch).estNs(), 0u);
    EXPECT_GT(report.stage(Stage::CreditPacing).calls, 0u);
    std::uint64_t items = 0;
    for (const ShardStats &s : report.shards)
        items += s.items;
    EXPECT_GT(items, 0u);
}

TEST(ProfEquivTest, MidRunAttachDetachLeavesStateUntouched)
{
    // Attach after the first third, detach after the second: the
    // run's final state must still match a never-profiled run.
    const ies::BoardConfig cfg =
        ies::makeUniformBoard(2, 4, cacheCfg(2 * MiB, 4));
    const auto txns = stream(307, 3000);
    const auto bare =
        run(cfg, txns, Feed::Sharded, 4, false, true);

    ies::MemoriesBoard board(cfg);
    trace::FlightRecorder recorder(1 << 14);
    board.attachFlightRecorder(recorder);
    board.enableSharding(4);
    Profiler prof;
    const std::size_t third = txns.size() / 3;
    auto feed = [&](std::size_t from, std::size_t to) {
        constexpr std::size_t chunk = 512;
        for (std::size_t at = from; at < to; at += chunk) {
            const std::size_t n = std::min(chunk, to - at);
            board.feedBatch(&txns[at], n);
        }
    };
    feed(0, third);
    board.attachProfiler(prof);
    feed(third, 2 * third);
    board.detachProfiler();
    feed(2 * third, txns.size());
    expectIdentical(bare, signatureOf(board, &recorder),
                    "mid-run attach/detach");
    EXPECT_GT(prof.snapshot().batches, 0u);
}

} // namespace
} // namespace memories::profile
