/**
 * @file
 * IESPROF unit tier: stage/shard accounting, the sampled-stage
 * estimator's scale factor, occupancy-skew math, and the three export
 * surfaces (folded stacks, merged chrome trace, profile JSON,
 * telemetry gauges). The non-perturbation claim — attached vs
 * detached byte-equivalence — lives in prof_equiv_test.cc; this file
 * pins the arithmetic and the formats.
 */

#include "profile/profiler.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ies/board.hh"
#include "oracle/stimulus.hh"
#include "profile/profexport.hh"
#include "telemetry/exporter.hh"
#include "telemetry/sampler.hh"
#include "trace/chrometrace.hh"
#include "trace/lifecycle.hh"

namespace memories::profile
{
namespace
{

TEST(ProfilerTest, StageNamesAndParentsFormATree)
{
    // Every stage has a printable name; every non-root stage's parent
    // chain terminates at FeedBatch (the folded-stack renderer and
    // describe() both walk it).
    for (std::size_t s = 0; s < numStages; ++s) {
        const Stage stage = static_cast<Stage>(s);
        EXPECT_NE(std::string(stageName(stage)), "");
        if (stage == Stage::FeedBatch)
            continue;
        Stage at = stage;
        int hops = 0;
        while (at != Stage::FeedBatch && hops < 8) {
            at = stageParent(at);
            ++hops;
        }
        EXPECT_EQ(at, Stage::FeedBatch)
            << stageName(stage) << " does not root at feed_batch";
    }
}

TEST(ProfilerTest, RecordStageAccumulatesCallsAndTime)
{
    Profiler prof;
    const std::uint64_t t0 = Profiler::nowNs();
    prof.recordStage(Stage::CounterMerge, t0);
    prof.recordStage(Stage::CounterMerge, t0);
    const ProfReport report = prof.snapshot();
    EXPECT_EQ(report.stage(Stage::CounterMerge).calls, 2u);
    EXPECT_EQ(report.stage(Stage::CounterMerge).timed, 2u);
    // Fully-timed stages estimate exactly what they measured.
    EXPECT_EQ(report.stage(Stage::CounterMerge).estNs(),
              report.stage(Stage::CounterMerge).ns);
}

TEST(ProfilerTest, SampledStageScalesEstimateByStride)
{
    Profiler prof;
    // 4 full strides: exactly 4 bouts get a clock pair, and the
    // estimator must scale the measured time back up by calls/timed.
    const std::uint64_t bouts = 4 * (Profiler::sampleMask + 1);
    for (std::uint64_t i = 0; i < bouts; ++i) {
        const std::uint64_t t0 = prof.sampledBegin(Stage::CreditPacing);
        prof.sampledEnd(Stage::CreditPacing, t0);
    }
    const ProfReport report = prof.snapshot();
    const StageStats &s = report.stage(Stage::CreditPacing);
    EXPECT_EQ(s.timed, 4u);
    EXPECT_EQ(s.calls, bouts);
    EXPECT_EQ(s.estNs(), s.ns * (Profiler::sampleMask + 1));
}

TEST(ProfilerTest, ScopedStageIsANoOpOnNullProfiler)
{
    // The detached contract: a null profiler pointer must be exactly
    // one branch, with no cell writes to crash or misattribute.
    ScopedStage scope(nullptr, Stage::BatchAdmission);
    SUCCEED();
}

TEST(ProfilerTest, OccupancySkewIsMaxOverMean)
{
    EXPECT_DOUBLE_EQ(occupancySkew({}), 1.0);
    EXPECT_DOUBLE_EQ(occupancySkew({42}), 1.0);
    EXPECT_DOUBLE_EQ(occupancySkew({0, 0, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(occupancySkew({10, 10}), 1.0);
    EXPECT_DOUBLE_EQ(occupancySkew({30, 10}), 1.5);
    EXPECT_DOUBLE_EQ(occupancySkew({40, 0, 0, 0}), 4.0);
}

TEST(ProfilerTest, ResetClearsEverything)
{
    Profiler prof;
    prof.beginBatch(0);
    prof.recordStage(Stage::CounterMerge, Profiler::nowNs());
    prof.endBatch(100, Profiler::nowNs() - 10);
    ASSERT_GT(prof.snapshot().batches, 0u);
    prof.reset();
    const ProfReport report = prof.snapshot();
    EXPECT_EQ(report.batches, 0u);
    EXPECT_EQ(report.spansRecorded, 0u);
    EXPECT_EQ(report.stage(Stage::CounterMerge).calls, 0u);
}

TEST(ProfilerTest, SpanRingDropsNewAtCapacity)
{
    Profiler prof(/*span_capacity=*/4);
    for (int b = 0; b < 8; ++b) {
        prof.beginBatch(b * 100);
        prof.endBatch(b * 100 + 50, Profiler::nowNs() - 1000);
    }
    const ProfReport report = prof.snapshot();
    EXPECT_EQ(prof.spans().size(), 4u);
    EXPECT_EQ(report.spansRecorded, 4u);
    EXPECT_GT(report.spansDropped, 0u);
    // Drop-new keeps the *first* batches: span 0 is batch 1.
    EXPECT_EQ(prof.spans().front().batch, 1u);
}

/** A profiled sharded run over a real board, for the export tests. */
Profiler &
profiledRun(ies::MemoriesBoard &board, Profiler &prof,
            std::size_t shards, std::size_t count = 2000)
{
    board.attachProfiler(prof);
    if (shards > 1)
        board.enableSharding(shards);
    oracle::StimulusParams p;
    p.seed = 7;
    p.count = count;
    const auto txns = oracle::StimulusGen(p).generate();
    constexpr std::size_t chunk = 256;
    for (std::size_t at = 0; at < txns.size(); at += chunk) {
        const std::size_t n = std::min(chunk, txns.size() - at);
        board.feedBatch(&txns[at], n);
    }
    board.drainAll();
    return prof;
}

ies::BoardConfig
smallBoard()
{
    return ies::makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
}

TEST(ProfilerTest, BoardRunAttributesTimeToEveryHotStage)
{
    ies::MemoriesBoard board(smallBoard());
    Profiler prof;
    profiledRun(board, prof, 4);

    const ProfReport report = prof.snapshot();
    EXPECT_GT(report.batches, 0u);
    EXPECT_GT(report.stage(Stage::FeedBatch).estNs(), 0u);
    EXPECT_GT(report.stage(Stage::BatchAdmission).estNs(), 0u);
    EXPECT_GT(report.stage(Stage::ShardDispatch).estNs(), 0u);
    // ShardEmulation is derived from the per-shard busy sums.
    std::uint64_t busy = 0, items = 0;
    for (const ShardStats &s : report.shards) {
        busy += s.busyNs;
        items += s.items;
    }
    EXPECT_EQ(report.shards.size(), 4u);
    EXPECT_EQ(report.stage(Stage::ShardEmulation).ns, busy);
    EXPECT_GT(items, 0u);
    EXPECT_GE(report.imbalance(), 1.0);

    // The stage tree must attribute ~all of feed_batch to its direct
    // children — the same invariant check_bench_regression.py gates.
    const std::uint64_t total = report.stage(Stage::FeedBatch).estNs();
    const std::uint64_t children =
        report.stage(Stage::BatchAdmission).estNs() +
        report.stage(Stage::ShardDispatch).estNs() +
        report.stage(Stage::CounterMerge).estNs() +
        report.stage(Stage::JournalReplay).estNs();
    EXPECT_LT(children, total * 11 / 10);
}

TEST(ProfilerTest, DescribeNamesStagesAndShards)
{
    ies::MemoriesBoard board(smallBoard());
    Profiler prof;
    profiledRun(board, prof, 2);
    const std::string text = prof.describe();
    EXPECT_NE(text.find("feed_batch"), std::string::npos);
    EXPECT_NE(text.find("batch_admission"), std::string::npos);
    EXPECT_NE(text.find("shard 0:"), std::string::npos);
    EXPECT_NE(text.find("shard 1:"), std::string::npos);
    EXPECT_NE(text.find("imbalance"), std::string::npos);
}

TEST(ProfilerTest, FoldedStacksCarryRootedSemicolonPaths)
{
    ies::MemoriesBoard board(smallBoard());
    Profiler prof;
    profiledRun(board, prof, 2);
    const std::string folded = foldedStacks(prof);
    ASSERT_FALSE(folded.empty());
    // Every line: "frame(;frame)* <integer>\n", rooted at feed_batch.
    std::size_t at = 0;
    while (at < folded.size()) {
        const std::size_t nl = folded.find('\n', at);
        ASSERT_NE(nl, std::string::npos);
        const std::string line = folded.substr(at, nl - at);
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_EQ(line.rfind("feed_batch", 0), 0u) << line;
        const std::string count = line.substr(space + 1);
        EXPECT_NE(count.find_first_of("0123456789"), std::string::npos)
            << line;
        at = nl + 1;
    }
    // Shard leaves hang under shard_emulation.
    EXPECT_NE(folded.find("shard_dispatch;shard_emulation;shard_0 "),
              std::string::npos);
}

TEST(ProfilerTest, MergedTraceExtendsThePlainExportByteForByte)
{
    ies::MemoriesBoard board(smallBoard());
    trace::FlightRecorder recorder(1 << 12);
    board.attachFlightRecorder(recorder);
    Profiler prof;
    profiledRun(board, prof, 2);

    const auto events = recorder.snapshot();
    const std::string plain =
        trace::chromeTraceToString(events, &recorder);
    const std::string merged =
        mergedChromeTrace(events, prof, &recorder);

    // Non-perturbation at the export layer: the merged document is the
    // plain one with profiler rows spliced in before the closing
    // bracket — the plain export's bytes all survive, in order.
    static const std::string suffix = "\n]}\n";
    ASSERT_GE(plain.size(), suffix.size());
    const std::string prefix =
        plain.substr(0, plain.size() - suffix.size());
    EXPECT_EQ(merged.rfind(prefix, 0), 0u);
    EXPECT_EQ(merged.substr(merged.size() - suffix.size()), suffix);
    EXPECT_GT(merged.size(), plain.size());

    // The splice carries the dedicated profiler pid and its lanes.
    EXPECT_NE(merged.find("\"pid\":99"), std::string::npos);
    EXPECT_NE(merged.find("IESPROF (emulator)"), std::string::npos);
    EXPECT_NE(merged.find("\"feed_batch\""), std::string::npos);
    EXPECT_NE(merged.find("\"shard 0\""), std::string::npos);
    // And the plain export never mentions any of it.
    EXPECT_EQ(plain.find("IESPROF"), std::string::npos);
}

TEST(ProfilerTest, MergedTraceWithNoLifecycleEventsIsStillValid)
{
    Profiler prof;
    prof.beginBatch(0);
    prof.recordStage(Stage::CounterMerge, Profiler::nowNs());
    prof.endBatch(50, Profiler::nowNs() - 1000);
    const std::string merged = mergedChromeTrace({}, prof);
    EXPECT_EQ(merged.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_EQ(merged.substr(merged.size() - 4), "\n]}\n");
    EXPECT_NE(merged.find("\"pid\":99"), std::string::npos);
    // No leading comma before the first spliced event.
    EXPECT_EQ(merged.find("[\n,"), std::string::npos);
}

TEST(ProfilerTest, ProfileJsonCarriesStagesShardsAndImbalance)
{
    ies::MemoriesBoard board(smallBoard());
    Profiler prof;
    profiledRun(board, prof, 2);
    const std::string json = profileJson(prof, 2000);
    EXPECT_EQ(json.rfind("{", 0), 0u);
    EXPECT_NE(json.find("\"refs\":2000"), std::string::npos);
    EXPECT_NE(json.find("\"stage\":\"feed_batch\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ns_per_ref\""), std::string::npos);
    EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
    EXPECT_NE(json.find("\"imbalance\""), std::string::npos);
}

TEST(ProfilerTest, AttachTelemetryExportsStageAndShardSeries)
{
    ies::MemoriesBoard board(smallBoard());
    Profiler prof;
    board.attachProfiler(prof);
    board.enableSharding(2);

    telemetry::Sampler sampler(1000);
    std::vector<std::string> names;
    std::vector<double> gauges;
    class Capture final : public telemetry::Exporter
    {
      public:
        Capture(std::vector<std::string> &n, std::vector<double> &g)
            : names_(n), gauges_(g)
        {
        }
        void
        exportWindow(const telemetry::WindowRecord &w) override
        {
            for (const auto &c : w.counters)
                names_.push_back(*c.name);
            for (const auto &g : w.gauges)
                gauges_.push_back(g.value);
        }
        void close() override {}

      private:
        std::vector<std::string> &names_;
        std::vector<double> &gauges_;
    } capture(names, gauges);
    sampler.addExporter(capture);
    prof.attachTelemetry(sampler);

    oracle::StimulusParams p;
    p.seed = 3;
    p.count = 500;
    const auto txns = oracle::StimulusGen(p).generate();
    board.feedBatch(txns);
    board.drainAll();
    sampler.finish(txns.back().cycle + 1);

    auto has = [&names](const std::string &name) {
        for (const auto &n : names)
            if (n == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("prof.stage.feed_batch.ns"));
    EXPECT_TRUE(has("prof.stage.batch_admission.calls"));
    EXPECT_TRUE(has("prof.shard0.busy_ns"));
    EXPECT_TRUE(has("prof.shard1.items"));
    // ShardEmulation is derived, not a live cell: no series for it.
    EXPECT_FALSE(has("prof.stage.shard_emulation.ns"));
    ASSERT_FALSE(gauges.empty());
    EXPECT_GE(gauges.back(), 1.0); // prof.shard.imbalance
}

} // namespace
} // namespace memories::profile
