/**
 * @file
 * FaultPlan text format: every mnemonic parses to the right spec, the
 * grammar rejects malformed plans with a helpful fatal(), and
 * describe() round-trips through parse() — the console's "fault
 * status" output is itself a loadable plan.
 */

#include "fault/faultplan.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace memories::fault
{
namespace
{

TEST(FaultPlanTest, ParsesEveryKind)
{
    const FaultPlan plan = FaultPlan::parse(
        "retry prob 0.01\n"
        "dropreply prob 0.005\n"
        "delayreply prob 0.01 cycles 50\n"
        "addrflip prob 0.001 bit 7\n"
        "tagflip at 5000 node 2 bit 3\n"
        "slotloss at 2000 slots 128 cycles 5000\n"
        "stall at 3000 cycles 2000\n");
    ASSERT_EQ(plan.size(), 7u);

    EXPECT_EQ(plan.faults[0].kind, FaultKind::SpuriousRetry);
    EXPECT_DOUBLE_EQ(plan.faults[0].probability, 0.01);
    EXPECT_EQ(plan.faults[0].atTenure, 0u);

    EXPECT_EQ(plan.faults[1].kind, FaultKind::DropReply);
    EXPECT_EQ(plan.faults[2].kind, FaultKind::DelayReply);
    EXPECT_EQ(plan.faults[2].cycles, 50u);

    EXPECT_EQ(plan.faults[3].kind, FaultKind::AddressFlip);
    EXPECT_EQ(plan.faults[3].bit, 7u);

    EXPECT_EQ(plan.faults[4].kind, FaultKind::TagFlip);
    EXPECT_EQ(plan.faults[4].atTenure, 5000u);
    EXPECT_EQ(plan.faults[4].node, 2u);
    EXPECT_EQ(plan.faults[4].bit, 3u);

    EXPECT_EQ(plan.faults[5].kind, FaultKind::SlotLoss);
    EXPECT_EQ(plan.faults[5].slots, 128u);
    EXPECT_EQ(plan.faults[5].cycles, 5000u);

    EXPECT_EQ(plan.faults[6].kind, FaultKind::RetirementStall);
    EXPECT_EQ(plan.faults[6].atTenure, 3000u);
    EXPECT_EQ(plan.faults[6].cycles, 2000u);
}

TEST(FaultPlanTest, SkipsCommentsAndBlankLines)
{
    const FaultPlan plan = FaultPlan::parse(
        "# a full-line comment\n"
        "\n"
        "   \t  \n"
        "retry prob 0.5  # trailing comment\n");
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.faults[0].kind, FaultKind::SpuriousRetry);
}

TEST(FaultPlanTest, DescribeRoundTripsThroughParse)
{
    const std::string text =
        "retry prob 0.25\n"
        "delayreply at 10 cycles 50\n"
        "addrflip prob 0.5 bit 12\n"
        "tagflip at 7 node 1 bit 4\n"
        "slotloss at 3 slots 16 cycles 100\n"
        "stall prob 0.125 cycles 64\n";
    const FaultPlan plan = FaultPlan::parse(text);
    const FaultPlan again = FaultPlan::parse(plan.describe());
    EXPECT_EQ(plan.describe(), again.describe());
    ASSERT_EQ(again.size(), plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(again.faults[i].kind, plan.faults[i].kind) << i;
        EXPECT_EQ(again.faults[i].atTenure, plan.faults[i].atTenure)
            << i;
        EXPECT_DOUBLE_EQ(again.faults[i].probability,
                         plan.faults[i].probability)
            << i;
    }
}

TEST(FaultPlanTest, RejectsMalformedPlans)
{
    EXPECT_THROW(FaultPlan::parse("gremlin prob 0.1\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry prob\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry prob 1.5\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry prob -0.1\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry at 0\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry at 5 prob 0.5\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("retry prob 0.1 flavor 3\n"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("addrflip prob 0.1 bit 64\n"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("tagflip at 1 node 256\n"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("delayreply prob 0.1\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stall at 1\n"), FatalError);
    EXPECT_THROW(FaultPlan::parse("slotloss at 1 slots 4\n"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("slotloss at 1 cycles 4\n"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("retry at 1x\n"), FatalError);
}

TEST(FaultPlanTest, EmptyTextIsAnEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("# only comments\n\n").empty());
}

TEST(FaultPlanTest, LoadsFromDisk)
{
    const std::string path =
        ::testing::TempDir() + "faultplan_test.plan";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string text = "dropreply prob 0.25\nstall at 9 cycles 3\n";
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);

    const FaultPlan plan = FaultPlan::load(path);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.faults[0].kind, FaultKind::DropReply);
    EXPECT_EQ(plan.faults[1].kind, FaultKind::RetirementStall);
    std::remove(path.c_str());

    EXPECT_THROW(FaultPlan::load("/nonexistent/no.plan"), FatalError);
}

TEST(FaultPlanTest, KindNamesAreStable)
{
    // Plan files are operator-facing artifacts: renaming a mnemonic
    // breaks saved plans, so pin them.
    EXPECT_EQ(faultKindName(FaultKind::SpuriousRetry), "retry");
    EXPECT_EQ(faultKindName(FaultKind::DropReply), "dropreply");
    EXPECT_EQ(faultKindName(FaultKind::DelayReply), "delayreply");
    EXPECT_EQ(faultKindName(FaultKind::AddressFlip), "addrflip");
    EXPECT_EQ(faultKindName(FaultKind::TagFlip), "tagflip");
    EXPECT_EQ(faultKindName(FaultKind::SlotLoss), "slotloss");
    EXPECT_EQ(faultKindName(FaultKind::RetirementStall), "stall");
}

} // namespace
} // namespace memories::fault
