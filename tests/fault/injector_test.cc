/**
 * @file
 * FaultInjector unit behaviour: scheduled specs fire at exactly their
 * opportunity index, stream faults mutate the tenure the way the board
 * expects, spurious retries never touch replays (no livelock), and the
 * whole decision sequence is a pure function of (plan, seed, stream).
 */

#include "fault/injector.hh"

#include <gtest/gtest.h>

#include <vector>

namespace memories::fault
{
namespace
{

bus::BusTransaction
readAt(Addr addr, Cycle cycle)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.cycle = cycle;
    t.op = bus::BusOp::Read;
    t.cpu = 0;
    return t;
}

TEST(FaultInjectorTest, ScheduledFaultFiresExactlyOnce)
{
    FaultInjector inj(FaultPlan::parse("dropreply at 3\n"), 1);
    std::vector<bool> dropped;
    for (int i = 0; i < 6; ++i) {
        auto t = readAt(0x1000, 10);
        dropped.push_back(inj.onTenure(t).drop);
    }
    const std::vector<bool> expect = {false, false, true,
                                      false, false, false};
    EXPECT_EQ(dropped, expect);
    EXPECT_EQ(inj.injected(FaultKind::DropReply), 1u);
    EXPECT_EQ(inj.totalInjected(), 1u);
}

TEST(FaultInjectorTest, DelayAndAddressFlipMutateTheTenure)
{
    FaultInjector inj(FaultPlan::parse("delayreply at 1 cycles 50\n"
                                       "addrflip at 2 bit 4\n"),
                      1);
    auto t1 = readAt(0x1000, 100);
    EXPECT_FALSE(inj.onTenure(t1).drop);
    EXPECT_EQ(t1.cycle, 150u);
    EXPECT_EQ(t1.addr, 0x1000u);

    auto t2 = readAt(0x1000, 200);
    EXPECT_FALSE(inj.onTenure(t2).drop);
    EXPECT_EQ(t2.cycle, 200u);
    EXPECT_EQ(t2.addr, 0x1010u);

    EXPECT_EQ(inj.injected(FaultKind::DelayReply), 1u);
    EXPECT_EQ(inj.injected(FaultKind::AddressFlip), 1u);
}

TEST(FaultInjectorTest, SpuriousRetryNeverTouchesReplays)
{
    FaultInjector inj(FaultPlan::parse("retry prob 1.0\n"), 7);

    auto live = readAt(0x80, 5);
    EXPECT_EQ(inj.snoop(live), bus::SnoopResponse::Retry);

    auto replay = readAt(0x80, 6);
    replay.isRetryReplay = true;
    EXPECT_EQ(inj.snoop(replay), bus::SnoopResponse::None);

    auto io = readAt(0x80, 7);
    io.op = bus::BusOp::IoRead;
    EXPECT_EQ(inj.snoop(io), bus::SnoopResponse::None);

    EXPECT_EQ(inj.injected(FaultKind::SpuriousRetry), 1u);
}

TEST(FaultInjectorTest, CommitFaultsCarryTheirParameters)
{
    FaultInjector inj(
        FaultPlan::parse("tagflip at 1 node 3 bit 2\n"
                         "slotloss at 2 slots 16 cycles 100\n"
                         "stall at 3 cycles 40\n"),
        1);

    const auto c1 = inj.onCommit(readAt(0x100, 10));
    EXPECT_TRUE(c1.tagFlip);
    EXPECT_EQ(c1.tagNode, 3u);
    EXPECT_EQ(c1.tagBit, 2u);
    EXPECT_FALSE(c1.slotLoss);
    EXPECT_FALSE(c1.stall);

    const auto c2 = inj.onCommit(readAt(0x100, 20));
    EXPECT_TRUE(c2.slotLoss);
    EXPECT_EQ(c2.slots, 16u);
    EXPECT_EQ(c2.slotsUntil, 120u);

    const auto c3 = inj.onCommit(readAt(0x100, 30));
    EXPECT_TRUE(c3.stall);
    EXPECT_EQ(c3.stallUntil, 70u);
}

TEST(FaultInjectorTest, EmptyPlanIsInert)
{
    FaultInjector inj(FaultPlan{}, 42);
    auto t = readAt(0xABCD00, 77);
    const auto before = t;
    EXPECT_FALSE(inj.onTenure(t).drop);
    EXPECT_EQ(t.addr, before.addr);
    EXPECT_EQ(t.cycle, before.cycle);
    EXPECT_EQ(inj.snoop(t), bus::SnoopResponse::None);
    const auto c = inj.onCommit(t);
    EXPECT_FALSE(c.stall);
    EXPECT_FALSE(c.slotLoss);
    EXPECT_FALSE(c.tagFlip);
    EXPECT_EQ(inj.totalInjected(), 0u);
}

TEST(FaultInjectorTest, SameSeedSamePlanSameDecisions)
{
    const FaultPlan plan = FaultPlan::parse(
        "dropreply prob 0.1\n"
        "delayreply prob 0.2 cycles 10\n"
        "addrflip prob 0.05 bit 3\n");
    auto run = [&](std::uint64_t seed) {
        FaultInjector inj(plan, seed);
        std::vector<std::uint64_t> fingerprint;
        for (std::uint64_t i = 0; i < 2000; ++i) {
            auto t = readAt(i << 7, i);
            const bool drop = inj.onTenure(t).drop;
            fingerprint.push_back((t.addr << 1) ^ t.cycle ^
                                  (drop ? 1u : 0u));
        }
        fingerprint.push_back(inj.totalInjected());
        return fingerprint;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(FaultInjectorTest, CountersAreNamedPerKind)
{
    FaultInjector inj(FaultPlan::parse("dropreply at 1\n"), 1);
    auto t = readAt(0, 0);
    inj.onTenure(t);
    EXPECT_EQ(inj.counters().valueByName("faults.dropreply"), 1u);
    EXPECT_EQ(inj.counters().valueByName("faults.retry"), 0u);
    EXPECT_EQ(inj.counters().valueByName("faults.tagflip"), 0u);
}

} // namespace
} // namespace memories::fault
