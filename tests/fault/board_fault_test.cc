/**
 * @file
 * MemoriesBoard + FaultInjector + HealthMonitor integration: every
 * fault kind lands in the board path it targets, the old overflow
 * panic paths now recover and count, degradation sheds instead of
 * wedging, and a quarantined board resyncs from a healthy one.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "fault/injector.hh"
#include "ies/analysis.hh"
#include "ies/board.hh"
#include "trace/lifecycle.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
readAt(Addr addr, Cycle cycle)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.cycle = cycle;
    t.op = bus::BusOp::Read;
    t.cpu = 0;
    return t;
}

BoardConfig
boardWithBuffer(std::size_t entries)
{
    BoardConfig cfg = makeUniformBoard(1, 4, smallCache());
    cfg.bufferEntries = entries;
    return cfg;
}

TEST(BoardFaultTest, DroppedTenuresNeverReachTheBuffer)
{
    MemoriesBoard board(boardWithBuffer(512));
    fault::FaultInjector inj(fault::FaultPlan::parse("dropreply at 2\n"),
                             1);
    board.attachFaultInjector(inj);

    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_TRUE(board.feedCommitted(readAt(i * 128, 0)));
    board.drainAll();

    const auto &g = board.globalCounters();
    EXPECT_EQ(g.valueByName("global.tenures.memory"), 3u);
    EXPECT_EQ(g.valueByName("global.tenures.committed"), 2u);
    EXPECT_EQ(g.valueByName("global.tenures.fault_dropped"), 1u);
    EXPECT_EQ(inj.injected(fault::FaultKind::DropReply), 1u);
    // The dropped tenure was never emulated.
    EXPECT_EQ(board.node(0).stats().localRefs, 2u);
}

TEST(BoardFaultTest, SlotLossLosesCommittedTenureWithoutPanic)
{
    // Fill six of eight slots at cycle 0 (no drain credits yet), then
    // have the seventh commit lose six slots: its own push lands on a
    // buffer that is suddenly too small. The hardware would have
    // wedged; the board must count a lost-in-flight tenure and go on.
    MemoriesBoard board(boardWithBuffer(8));
    fault::FaultInjector inj(
        fault::FaultPlan::parse("slotloss at 7 slots 6 cycles 100000\n"),
        1);
    board.attachFaultInjector(inj);
    trace::FlightRecorder recorder(256);
    board.attachFlightRecorder(recorder);

    for (std::uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(board.feedCommitted(readAt(i * 128, 0)));
    EXPECT_TRUE(board.feedCommitted(readAt(6 * 128, 0)));

    const auto &g = board.globalCounters();
    EXPECT_EQ(g.valueByName("global.tenures.committed"), 7u);
    EXPECT_EQ(board.tenuresLostInflight(), 1u);

    // The shrunk buffer now rejects at the snoop-time check too.
    EXPECT_FALSE(board.feedCommitted(readAt(7 * 128, 0)));
    EXPECT_EQ(g.valueByName("global.retries_posted"), 1u);

    // The loss is a recorded anomaly, not a silent divergence.
    const auto events = recorder.snapshot();
    const bool saw_loss = std::any_of(
        events.begin(), events.end(), [](const auto &ev) {
            return ev.kind == trace::EventKind::BufferOverflow &&
                   ev.arg0 == 2;
        });
    EXPECT_TRUE(saw_loss);
    EXPECT_GE(recorder.anomalies(), 1u);

    // Capacity returns once the slot-loss window expires.
    EXPECT_TRUE(board.feedCommitted(readAt(8 * 128, 200000)));
    board.drainAll();
    EXPECT_NE(board.dumpStats().find("lost-inflight 1"),
              std::string::npos);

    const auto report = BoardReport::capture(board);
    EXPECT_EQ(report.lostInflight, 1u);
    EXPECT_NE(report.toCsv().find("lost_inflight"), std::string::npos);
    EXPECT_NE(report.toText().find("lost in flight"),
              std::string::npos);
}

TEST(BoardFaultTest, RetirementStallDefersRetirement)
{
    MemoriesBoard board(boardWithBuffer(512));
    fault::FaultInjector inj(
        fault::FaultPlan::parse("stall at 1 cycles 1000\n"), 1);
    board.attachFaultInjector(inj);

    ASSERT_TRUE(board.feedCommitted(readAt(0, 0)));
    // 500 cycles later a healthy board would have retired the tenure;
    // the stalled SDRAM earned no credits.
    ASSERT_TRUE(board.feedCommitted(readAt(128, 500)));
    EXPECT_EQ(board.node(0).stats().localRefs, 0u);
    // Once the stall window passes, credits accrue again.
    ASSERT_TRUE(board.feedCommitted(readAt(256, 2000)));
    EXPECT_EQ(board.node(0).stats().localRefs, 2u);
    board.drainAll();
    EXPECT_EQ(board.node(0).stats().localRefs, 3u);
}

TEST(BoardFaultTest, TagFlipIsDetectedScrubbedAndRecounted)
{
    MemoriesBoard board(boardWithBuffer(512));
    fault::FaultInjector inj(
        fault::FaultPlan::parse("tagflip at 2 node 0 bit 1\n"), 1);
    board.attachFaultInjector(inj);

    // Warm the line, then touch it again; the second commit flips a
    // tag bit on it. Parity detects the corruption at the next access,
    // scrubs (invalidates) the line, and the access misses instead of
    // hitting.
    ASSERT_TRUE(board.feedCommitted(readAt(0x4000, 0)));
    board.drainAll();
    ASSERT_EQ(board.node(0).stats().localMisses, 1u);

    ASSERT_TRUE(board.feedCommitted(readAt(0x4000, 1000)));
    board.drainAll();

    EXPECT_EQ(board.node(0).parityScrubs(), 1u);
    EXPECT_EQ(board.node(0).stats().localMisses, 2u);
    EXPECT_EQ(board.node(0).stats().localHits, 0u);
    EXPECT_EQ(inj.injected(fault::FaultKind::TagFlip), 1u);
    // The scrub refilled the line: a third access hits normally.
    ASSERT_TRUE(board.feedCommitted(readAt(0x4000, 2000)));
    board.drainAll();
    EXPECT_EQ(board.node(0).stats().localHits, 1u);
}

BoardConfig
degradingConfig()
{
    BoardConfig cfg = boardWithBuffer(4);
    cfg.health.enabled = true;
    cfg.health.degradeWindow = 100; // overflow, not occupancy, degrades
    cfg.health.backoffLimit = 1;    // shed 2 tenures per storm
    cfg.health.quarantineStorms = 2;
    return cfg;
}

TEST(BoardFaultTest, OverflowStormsDegradeThenQuarantine)
{
    MemoriesBoard board(degradingConfig());

    // Even line indices only, so degraded sampling (shift 1) never
    // sheds these tenures and the storm accounting stays exact.
    auto feed = [&](std::uint64_t i) {
        return board.feedCommitted(readAt(i * 256, 0));
    };

    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(feed(i)); // fill the 4-entry buffer
    EXPECT_EQ(board.healthState(), fault::HealthState::Healthy);

    // Storm 1: the overflow retries (live behaviour) and degrades.
    EXPECT_FALSE(feed(4));
    EXPECT_EQ(board.healthState(), fault::HealthState::Degraded);
    // Backoff: the next two overflows shed instead of retrying.
    EXPECT_TRUE(feed(5));
    EXPECT_TRUE(feed(6));
    // Storm 2 hits the quarantine limit.
    EXPECT_TRUE(feed(7));
    EXPECT_EQ(board.healthState(), fault::HealthState::Quarantined);
    // Quarantined: tenures are ignored, not buffered.
    EXPECT_TRUE(feed(8));
    EXPECT_TRUE(feed(9));

    const auto &g = board.globalCounters();
    EXPECT_EQ(g.valueByName("global.retries_posted"), 1u);
    EXPECT_EQ(g.valueByName("global.tenures.shed"), 3u);
    EXPECT_EQ(g.valueByName("global.tenures.quarantined"), 2u);
    EXPECT_EQ(g.valueByName("global.health.transitions"), 2u);
    EXPECT_EQ(g.valueByName("global.tenures.committed"), 4u);

    const auto report = BoardReport::capture(board);
    EXPECT_EQ(report.healthState, "quarantined");
    EXPECT_EQ(report.shed, 3u);
    EXPECT_NE(report.toText().find("quarantined"), std::string::npos);
}

TEST(BoardFaultTest, DegradedBoardSamplesInsteadOfDropping)
{
    MemoriesBoard board(degradingConfig());
    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(board.feedCommitted(readAt(i * 256, 0)));
    EXPECT_FALSE(board.feedCommitted(readAt(4 * 256, 0))); // degrade

    // Far in the future the buffer has drained; an odd-line tenure is
    // now sampled out (kept statistics, shed load), an even-line one
    // is accepted.
    EXPECT_TRUE(board.feedCommitted(readAt(3 * 128, 1000000)));
    EXPECT_TRUE(board.feedCommitted(readAt(4 * 128, 1000001)));
    const auto &g = board.globalCounters();
    EXPECT_EQ(g.valueByName("global.tenures.sampled_out"), 1u);
    EXPECT_EQ(board.healthState(), fault::HealthState::Degraded);
}

TEST(BoardFaultTest, QuarantinedBoardResyncsFromHealthyBoard)
{
    MemoriesBoard healthy(boardWithBuffer(512));
    for (std::uint64_t i = 0; i < 32; ++i)
        ASSERT_TRUE(healthy.feedCommitted(readAt(i * 128, 0)));
    healthy.drainAll();

    MemoriesBoard sick(degradingConfig());
    for (std::uint64_t i = 0; i < 8; ++i)
        sick.feedCommitted(readAt(i * 256, 0));
    ASSERT_EQ(sick.healthState(), fault::HealthState::Quarantined);

    sick.resyncFrom(healthy);
    EXPECT_EQ(sick.healthState(), fault::HealthState::Healthy);
    // Stale buffered tenures were discarded, not emulated against the
    // mirrored directories.
    EXPECT_EQ(sick.tenuresLostInflight(), 4u);
    EXPECT_EQ(sick.node(0).stats().localRefs, 0u);
    // The directories now mirror the healthy board exactly.
    for (std::uint64_t i = 0; i < 32; ++i) {
        EXPECT_EQ(sick.node(0).probeState(i * 128),
                  healthy.node(0).probeState(i * 128))
            << "line " << i;
    }
    // And the board emulates again.
    ASSERT_TRUE(sick.feedCommitted(readAt(0, 1000000)));
    sick.drainAll();
    EXPECT_EQ(sick.node(0).stats().localHits, 1u);
}

TEST(BoardFaultTest, ResyncRejectsMismatchedGeometry)
{
    MemoriesBoard a(boardWithBuffer(512));
    MemoriesBoard b(makeUniformBoard(
        1, 4,
        cache::CacheConfig{4 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    EXPECT_THROW(a.resyncFrom(b), FatalError);
    EXPECT_THROW(a.resyncFrom(a), FatalError);

    MemoriesBoard c(makeUniformBoard(2, 2, smallCache()));
    EXPECT_THROW(a.resyncFrom(c), FatalError);
}

} // namespace
} // namespace memories::ies
