/**
 * @file
 * Property test for the fault-plan grammar: parse(describe(p)) == p
 * for randomly generated plans. faultplan_test.cc checks hand-picked
 * examples; this closes the loop over the whole reachable grammar —
 * every kind, both trigger forms, every printable parameter field —
 * so a formatting or parsing regression cannot hide in an untested
 * corner of the round trip.
 */

#include "fault/faultplan.hh"

#include <gtest/gtest.h>

#include "common/random.hh"
#include "oracle/stimulus.hh"

namespace memories::fault
{
namespace
{

TEST(FaultPlanPropertyTest, DescribeParseRoundTripsRandomPlans)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        Rng rng(seed);
        const FaultPlan plan = oracle::randomFaultPlan(rng);
        const std::string text = plan.describe();
        const FaultPlan reparsed = FaultPlan::parse(text);
        EXPECT_EQ(reparsed, plan)
            << "seed " << seed << " plan did not round-trip:\n"
            << text << "\nre-described as:\n"
            << reparsed.describe();
    }
}

TEST(FaultPlanPropertyTest, RoundTripIsAFixpoint)
{
    // describe() of a parsed plan is byte-identical to the original
    // describe(): the text format has one canonical rendering.
    for (std::uint64_t seed = 500; seed < 550; ++seed) {
        Rng rng(seed);
        const FaultPlan plan = oracle::randomFaultPlan(rng);
        const std::string once = plan.describe();
        const std::string twice = FaultPlan::parse(once).describe();
        EXPECT_EQ(once, twice) << "seed " << seed;
    }
}

TEST(FaultPlanPropertyTest, SingleSpecsRoundTripToo)
{
    for (std::uint64_t seed = 1000; seed < 1100; ++seed) {
        Rng rng(seed);
        const FaultSpec spec = oracle::randomFaultSpec(rng);
        FaultPlan plan;
        plan.faults.push_back(spec);
        EXPECT_EQ(FaultPlan::parse(plan.describe()), plan)
            << "seed " << seed << ": " << plan.describe();
    }
}

} // namespace
} // namespace memories::fault
