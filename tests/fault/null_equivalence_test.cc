/**
 * @file
 * Null-injection equivalence: a board carrying a FaultInjector with an
 * empty plan must be bit-exact with a board carrying no injector at
 * all — identical counter banks, identical reports, identical Chrome
 * traces. This is the guarantee that makes fault campaigns trustable:
 * the instrumentation itself perturbs nothing.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hh"
#include "ies/analysis.hh"
#include "ies/board.hh"
#include "ies/fanout.hh"
#include "trace/chrometrace.hh"
#include "trace/lifecycle.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

/**
 * A deterministic mixed-op tenure stream: reads, RWITMs and
 * write-backs across a few CPUs and a strided, re-referencing address
 * pattern, with some filtered I/O traffic sprinkled in.
 */
std::vector<bus::BusTransaction>
workload(std::size_t events)
{
    std::vector<bus::BusTransaction> txns;
    txns.reserve(events);
    for (std::size_t i = 0; i < events; ++i) {
        bus::BusTransaction t;
        t.addr = ((i * 7) % 96) * 128;
        t.cycle = i * 10;
        t.cpu = static_cast<std::uint8_t>(i % 4);
        t.traceId = static_cast<std::uint32_t>(i);
        switch (i % 5) {
          case 0: case 1: t.op = bus::BusOp::Read; break;
          case 2: t.op = bus::BusOp::Rwitm; break;
          case 3: t.op = bus::BusOp::WriteBack; break;
          default: t.op = bus::BusOp::IoRead; break;
        }
        txns.push_back(t);
    }
    return txns;
}

struct RunResult
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::string boardCsv;
    std::string boardText;
    std::string chromeJson;
};

RunResult
runBoard(bool with_null_injector)
{
    BoardConfig cfg = makeUniformBoard(1, 4, smallCache());
    MemoriesBoard board(cfg);
    trace::FlightRecorder recorder(4096);
    board.attachFlightRecorder(recorder);

    fault::FaultInjector inj(fault::FaultPlan{}, 12345);
    if (with_null_injector)
        board.attachFaultInjector(inj);

    for (const auto &t : workload(500))
        board.feedCommitted(t);
    board.drainAll();

    RunResult r;
    for (const auto &s : board.globalCounters().snapshot())
        r.counters.emplace_back(std::string(s.name), s.value);
    for (const auto &s : board.node(0).counters().snapshot())
        r.counters.emplace_back(std::string(s.name), s.value);
    const auto report = BoardReport::capture(board);
    r.boardCsv = report.toCsv();
    r.boardText = report.toText();
    r.chromeJson = trace::chromeTraceToString(recorder.snapshot(),
                                              &recorder);
    return r;
}

TEST(NullEquivalenceTest, EmptyPlanBoardIsBitExactWithBareBoard)
{
    const RunResult bare = runBoard(false);
    const RunResult nulled = runBoard(true);

    ASSERT_EQ(bare.counters.size(), nulled.counters.size());
    for (std::size_t i = 0; i < bare.counters.size(); ++i) {
        EXPECT_EQ(bare.counters[i].first, nulled.counters[i].first) << i;
        EXPECT_EQ(bare.counters[i].second, nulled.counters[i].second)
            << bare.counters[i].first;
    }
    EXPECT_EQ(bare.boardCsv, nulled.boardCsv);
    EXPECT_EQ(bare.boardText, nulled.boardText);
    EXPECT_EQ(bare.chromeJson, nulled.chromeJson);
}

TEST(NullEquivalenceTest, FleetWithNullInjectorsMatchesBareFleet)
{
    std::vector<fault::FaultInjector> injectors;
    injectors.emplace_back(fault::FaultPlan{}, 1);
    injectors.emplace_back(fault::FaultPlan{}, 2);

    auto run = [&](bool with_injectors) {
        ExperimentFleet fleet;
        fleet.addExperiment(makeUniformBoard(1, 4, smallCache()), 1,
                            "a");
        BoardConfig big = makeUniformBoard(1, 4, smallCache());
        big.bufferEntries = 64;
        fleet.addExperiment(big, 2, "b");
        if (with_injectors) {
            fleet.attachFaultInjector(0, injectors[0]);
            fleet.attachFaultInjector(1, injectors[1]);
        }
        fleet.start(2);
        for (const auto &t : workload(500))
            fleet.publish(t);
        fleet.finish();
        return FleetReport::capture(fleet).toCsv();
    };

    EXPECT_EQ(run(false), run(true));
}

TEST(NullEquivalenceTest, HealthCountersExistEvenWithoutFaults)
{
    // Null equivalence requires the fault/health counters to be
    // registered unconditionally: the counter bank layout must not
    // depend on whether an injector ever showed up.
    MemoriesBoard board(makeUniformBoard(1, 4, smallCache()));
    const auto &g = board.globalCounters();
    for (const char *name :
         {"global.tenures.lost_inflight", "global.tenures.fault_dropped",
          "global.tenures.sampled_out", "global.tenures.shed",
          "global.tenures.quarantined", "global.health.transitions"}) {
        EXPECT_TRUE(g.has(name)) << name;
        EXPECT_EQ(g.valueByName(name), 0u) << name;
    }
    const auto report = BoardReport::capture(board);
    EXPECT_EQ(report.healthState, "healthy");
    EXPECT_EQ(report.lostInflight, 0u);
}

} // namespace
} // namespace memories::ies
