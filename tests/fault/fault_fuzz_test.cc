/**
 * @file
 * Fault-plan fuzz: 100 seeded random plans against a board with a
 * small buffer and (on odd seeds) an armed health monitor. Whatever
 * the plan does, the board must not panic, every memory tenure must
 * land in exactly one accounting bucket, and running the identical
 * campaign twice must produce byte-identical reports — the
 * determinism guarantee that makes a fault campaign reproducible from
 * nothing but (plan, seed).
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hh"
#include "ies/analysis.hh"
#include "ies/board.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

/** Render a random but always-grammatical plan for @p seed. */
std::string
randomPlanText(unsigned seed)
{
    std::mt19937_64 rng(seed * 2654435761u + 1);
    std::ostringstream os;
    const std::size_t specs = 1 + rng() % 6;
    for (std::size_t i = 0; i < specs; ++i) {
        const unsigned kind = rng() % 7;
        const bool scheduled = (rng() % 2) == 0;
        auto when = [&]() -> std::ostream & {
            if (scheduled)
                os << " at " << (1 + rng() % 200);
            else
                os << " prob 0." << (rng() % 20);
            return os;
        };
        switch (kind) {
          case 0: os << "retry"; when(); break;
          case 1: os << "dropreply"; when(); break;
          case 2:
            os << "delayreply";
            when() << " cycles " << (1 + rng() % 400);
            break;
          case 3:
            os << "addrflip";
            when() << " bit " << (rng() % 16);
            break;
          case 4:
            os << "tagflip";
            when() << " node " << (rng() % 4) << " bit " << (rng() % 8);
            break;
          case 5:
            os << "slotloss";
            when() << " slots " << (1 + rng() % 24) << " cycles "
                   << (1 + rng() % 2000);
            break;
          default:
            os << "stall";
            when() << " cycles " << (1 + rng() % 2000);
            break;
        }
        os << "\n";
    }
    return os.str();
}

struct CampaignResult
{
    std::uint64_t fedFiltered = 0;
    std::uint64_t fedMemory = 0;
    std::uint64_t fedRejected = 0; // feedCommitted returned false
    std::string boardCsv;
    std::string boardText;
    std::string dumpStats;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

CampaignResult
runCampaign(unsigned seed)
{
    BoardConfig cfg = makeUniformBoard(1, 4, smallCache());
    cfg.bufferEntries = 16;
    if (seed % 2 == 1) {
        cfg.health.enabled = true;
        cfg.health.degradeWindow = 8;
        cfg.health.recoverWindow = 16;
        cfg.health.backoffLimit = 2;
        cfg.health.quarantineStorms = 4;
    }
    MemoriesBoard board(cfg);

    const fault::FaultPlan plan =
        fault::FaultPlan::parse(randomPlanText(seed));
    fault::FaultInjector inj(plan, seed);
    board.attachFaultInjector(inj);

    CampaignResult r;
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    Cycle cycle = 0;
    for (std::size_t i = 0; i < 400; ++i) {
        cycle += rng() % 25;
        bus::BusTransaction t;
        t.addr = (rng() % 256) * 128;
        t.cycle = cycle;
        t.cpu = static_cast<std::uint8_t>(rng() % 4);
        t.traceId = static_cast<std::uint32_t>(i);
        switch (rng() % 8) {
          case 0: t.op = bus::BusOp::Rwitm; break;
          case 1: t.op = bus::BusOp::WriteBack; break;
          case 2: t.op = bus::BusOp::IoRead; break;
          default: t.op = bus::BusOp::Read; break;
        }
        if (bus::isFilteredOp(t.op))
            ++r.fedFiltered;
        else
            ++r.fedMemory;
        if (!board.feedCommitted(t))
            ++r.fedRejected;
    }
    board.drainAll();

    const auto report = BoardReport::capture(board);
    r.boardCsv = report.toCsv();
    r.boardText = report.toText();
    r.dumpStats = board.dumpStats();
    for (const auto &s : board.globalCounters().snapshot())
        r.counters.emplace_back(std::string(s.name), s.value);
    for (const auto &s : inj.counters().snapshot())
        r.counters.emplace_back(std::string(s.name), s.value);
    return r;
}

class FaultFuzzTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FaultFuzzTest, NoPanicAndConservedAccounting)
{
    const unsigned seed = GetParam();
    const CampaignResult r = runCampaign(seed);

    auto counter = [&](const std::string &name) -> std::uint64_t {
        for (const auto &[n, v] : r.counters)
            if (n == name)
                return v;
        ADD_FAILURE() << "missing counter " << name;
        return 0;
    };

    // Every fed transaction is either filtered or a memory tenure.
    EXPECT_EQ(counter("global.tenures.filtered"), r.fedFiltered);
    EXPECT_EQ(counter("global.tenures.memory"), r.fedMemory);

    // Every memory tenure lands in exactly one bucket.
    const std::uint64_t accounted =
        counter("global.tenures.committed") +
        counter("global.tenures.fault_dropped") +
        counter("global.tenures.sampled_out") +
        counter("global.tenures.shed") +
        counter("global.tenures.quarantined") +
        counter("global.retries_posted");
    EXPECT_EQ(accounted, r.fedMemory) << "seed " << seed;

    // A fed tenure is rejected iff the overflow watchdog said Retry.
    EXPECT_EQ(counter("global.retries_posted"), r.fedRejected);

    // Lost-in-flight tenures were committed first.
    EXPECT_LE(counter("global.tenures.lost_inflight"),
              counter("global.tenures.committed"));
}

TEST_P(FaultFuzzTest, SameSeedSamePlanByteIdenticalReports)
{
    const unsigned seed = GetParam();
    const CampaignResult a = runCampaign(seed);
    const CampaignResult b = runCampaign(seed);
    EXPECT_EQ(a.boardCsv, b.boardCsv);
    EXPECT_EQ(a.boardText, b.boardText);
    EXPECT_EQ(a.dumpStats, b.dumpStats);
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].first, b.counters[i].first) << i;
        EXPECT_EQ(a.counters[i].second, b.counters[i].second)
            << a.counters[i].first;
    }
}

INSTANTIATE_TEST_SUITE_P(HundredSeeds, FaultFuzzTest,
                         ::testing::Range(0u, 100u));

} // namespace
} // namespace memories::ies
