/**
 * @file
 * HealthMonitor state machine: the degradation ladder moves exactly at
 * its configured thresholds, the retry-storm watchdog backs off
 * exponentially up to its bound, quarantine latches until resync, and
 * a disabled monitor is a pure pass-through.
 */

#include "fault/health.hh"

#include <gtest/gtest.h>

#include <vector>

namespace memories::fault
{
namespace
{

HealthPolicy
tinyPolicy()
{
    HealthPolicy p;
    p.enabled = true;
    p.degradeOccupancyPercent = 75;
    p.degradeWindow = 4;
    p.recoverWindow = 8;
    p.degradedSamplingShift = 1;
    p.backoffLimit = 3;
    p.quarantineStorms = 5;
    return p;
}

TEST(HealthMonitorTest, DisabledIsPassThrough)
{
    HealthMonitor mon; // default policy: disabled
    EXPECT_FALSE(mon.enabled());
    for (int i = 0; i < 1000; ++i) {
        mon.onAdmit(100, 100); // fully pressured
        EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
    }
    EXPECT_EQ(mon.state(), HealthState::Healthy);
    EXPECT_FALSE(mon.sampledOut(0x1080, 7));
}

TEST(HealthMonitorTest, DegradesAfterSustainedPressure)
{
    HealthMonitor mon(tinyPolicy());
    // Three pressured admits: not yet (window is 4).
    for (int i = 0; i < 3; ++i)
        mon.onAdmit(80, 100);
    EXPECT_EQ(mon.state(), HealthState::Healthy);
    // One calm admit resets the streak.
    mon.onAdmit(10, 100);
    for (int i = 0; i < 3; ++i)
        mon.onAdmit(80, 100);
    EXPECT_EQ(mon.state(), HealthState::Healthy);
    mon.onAdmit(75, 100); // exactly at the threshold counts
    EXPECT_EQ(mon.state(), HealthState::Degraded);
}

TEST(HealthMonitorTest, DegradedSamplingKeepsOneLineInTwoToTheShift)
{
    HealthMonitor mon(tinyPolicy());
    for (int i = 0; i < 4; ++i)
        mon.onAdmit(90, 100);
    ASSERT_EQ(mon.state(), HealthState::Degraded);

    // shift 1, 128-byte lines: even line indices stay, odd are shed.
    EXPECT_FALSE(mon.sampledOut(0 << 7, 7));
    EXPECT_TRUE(mon.sampledOut(1 << 7, 7));
    EXPECT_FALSE(mon.sampledOut(2 << 7, 7));
    EXPECT_TRUE(mon.sampledOut(3 << 7, 7));
    // Offsets within a line never change the verdict.
    EXPECT_FALSE(mon.sampledOut((2 << 7) + 127, 7));
}

TEST(HealthMonitorTest, RecoversAfterCalmWindow)
{
    HealthMonitor mon(tinyPolicy());
    for (int i = 0; i < 4; ++i)
        mon.onAdmit(90, 100);
    ASSERT_EQ(mon.state(), HealthState::Degraded);

    for (int i = 0; i < 7; ++i)
        mon.onAdmit(10, 100);
    EXPECT_EQ(mon.state(), HealthState::Degraded);
    // A pressured admit in the middle restarts the recovery window.
    mon.onAdmit(90, 100);
    for (int i = 0; i < 7; ++i)
        mon.onAdmit(10, 100);
    EXPECT_EQ(mon.state(), HealthState::Degraded);
    mon.onAdmit(10, 100);
    EXPECT_EQ(mon.state(), HealthState::Healthy);
}

TEST(HealthMonitorTest, OverflowDegradesImmediatelyAndBacksOff)
{
    HealthMonitor mon(tinyPolicy());
    ASSERT_EQ(mon.state(), HealthState::Healthy);

    // Storm 1: the overflow itself retries (pass-through) but degrades
    // the board and schedules 2^1 shed tenures before the next retry.
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
    EXPECT_EQ(mon.state(), HealthState::Degraded);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed);

    // Storm 2: 2^2 sheds.
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed) << i;

    // Storm 3: exponent capped at backoffLimit = 3 -> 8 sheds.
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed) << i;

    // A successful admit ends the storm: the next overflow starts a
    // fresh storm count (but the board is already Degraded).
    mon.onAdmit(10, 100);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
}

TEST(HealthMonitorTest, QuarantinesAfterStormLimitAndLatches)
{
    HealthMonitor mon(tinyPolicy()); // quarantineStorms = 5
    int retries = 0;
    // Without any successful admit, storms accumulate to the limit.
    for (int i = 0; i < 1000 && mon.state() != HealthState::Quarantined;
         ++i) {
        if (mon.onOverflow() == OverflowAction::Retry)
            ++retries;
    }
    EXPECT_EQ(mon.state(), HealthState::Quarantined);
    // Storms 1..4 retried; the 5th quarantined instead of retrying.
    EXPECT_EQ(retries, 4);

    // Quarantine latches: admits and overflows change nothing.
    mon.onAdmit(0, 100);
    EXPECT_EQ(mon.state(), HealthState::Quarantined);
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Shed);

    mon.resync();
    EXPECT_EQ(mon.state(), HealthState::Healthy);
    // Post-resync the watchdog starts from scratch.
    EXPECT_EQ(mon.onOverflow(), OverflowAction::Retry);
}

TEST(HealthMonitorTest, TransitionHookSeesEveryEdge)
{
    HealthMonitor mon(tinyPolicy());
    std::vector<std::pair<HealthState, HealthState>> edges;
    mon.onTransition([&](HealthState from, HealthState to) {
        edges.emplace_back(from, to);
    });

    for (int i = 0; i < 4; ++i)
        mon.onAdmit(90, 100); // -> Degraded
    for (int i = 0; i < 8; ++i)
        mon.onAdmit(0, 100); // -> Healthy
    while (mon.state() != HealthState::Quarantined)
        mon.onOverflow(); // -> Degraded -> Quarantined
    mon.resync();         // -> Healthy

    using HS = HealthState;
    const std::vector<std::pair<HS, HS>> expect = {
        {HS::Healthy, HS::Degraded},    {HS::Degraded, HS::Healthy},
        {HS::Healthy, HS::Degraded},    {HS::Degraded, HS::Quarantined},
        {HS::Quarantined, HS::Healthy},
    };
    EXPECT_EQ(edges, expect);
}

TEST(HealthMonitorTest, DescribeNamesTheState)
{
    HealthMonitor off;
    EXPECT_NE(off.describe().find("monitor disabled"),
              std::string::npos);
    HealthMonitor on(tinyPolicy());
    EXPECT_EQ(on.describe().rfind("healthy", 0), 0u);
    EXPECT_EQ(healthStateName(HealthState::Degraded), "degraded");
    EXPECT_EQ(healthStateName(HealthState::Quarantined), "quarantined");
}

} // namespace
} // namespace memories::fault
