/**
 * @file
 * DiffHarness tests. Two halves:
 *
 *  - *Agreement*: the production board and the faithful oracle agree
 *    bit-for-bit over generated streams on every lattice config (a
 *    miniature of the CI sweep, kept small enough for the unit tier).
 *
 *  - *Mutation smoke*: a harness that can only ever pass proves
 *    nothing. Seeding the oracle with a known bug (a skipped PLRU
 *    touch, a dropped snooper downgrade, a flipped protocol-table
 *    entry) must produce a divergence, and ddmin must shrink the
 *    witness to a handful of transactions — the paper-trail an
 *    engineer actually debugs from.
 */

#include "oracle/diff.hh"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/logging.hh"
#include "ies/board.hh"
#include "oracle/stimulus.hh"
#include "protocol/state.hh"
#include "protocol/table.hh"

namespace memories::oracle
{
namespace
{

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count,
       const StimulusParams &base = {})
{
    StimulusParams p = base;
    p.seed = seed;
    p.count = count;
    return StimulusGen(p).generate();
}

/**
 * Few-set geometry for the replacement-policy smoke: 2MiB / (4KiB
 * lines x 4 ways) = 128 sets, so a short stream piles plenty of
 * conflict misses into every set and replacement decisions matter.
 */
ies::BoardConfig
conflictBoard(cache::ReplacementPolicy policy)
{
    return ies::makeUniformBoard(
        1, 8, cache::CacheConfig{2 * MiB, 4, 4096, policy});
}

/** Hot small footprint: frequent hits between the conflict misses. */
StimulusParams
hotParams()
{
    StimulusParams p;
    p.footprintLines = 1 << 13; // 1MiB per CPU: ~16 4KiB lines per set
    p.sharedLines = 256;
    return p;
}

TEST(DiffLatticeTest, LatticeIsBroadAndUniquelyNamed)
{
    const auto lattice = latticeConfigs();
    EXPECT_GE(lattice.size(), 12u);

    std::set<std::string> names;
    std::set<std::string> policies;
    std::set<std::string> protocols;
    bool multi_node = false;
    bool sampled = false;
    for (const auto &lc : lattice) {
        names.insert(lc.name);
        EXPECT_TRUE(lc.config.validationErrors().empty()) << lc.name;
        for (const auto &node : lc.config.nodes) {
            policies.insert(
                cache::replacementPolicyName(node.cache.policy));
            protocols.insert(node.protocol.name());
            sampled |= node.setSamplingShift > 0;
        }
        multi_node |= lc.config.nodes.size() > 1;
    }
    EXPECT_EQ(names.size(), lattice.size()) << "duplicate config names";
    EXPECT_GE(policies.size(), 4u) << "lattice misses a policy";
    EXPECT_GE(protocols.size(), 2u) << "lattice misses a protocol";
    EXPECT_TRUE(multi_node) << "lattice has no coherent multi-node box";
    EXPECT_TRUE(sampled) << "lattice has no set-sampled config";
}

TEST(DiffLatticeTest, SmallSweepIsClean)
{
    // A miniature of the CI acceptance sweep: every lattice config,
    // three seeds. The 100-seed version runs in CI via oracle_diff.
    const LatticeRun run = runLattice(1, 3, 300);
    EXPECT_EQ(run.comparisons, 3 * latticeConfigs().size());
    for (const auto &div : run.divergences) {
        ADD_FAILURE() << "config " << div.configName << " seed "
                      << div.seed << ":\n"
                      << div.report.describe();
    }
}

TEST(DiffLatticeTest, ShardedSweepIsClean)
{
    // Same miniature sweep, but the production board is fed through
    // the set-sharded batch pipeline. The oracle never batches, so
    // this diffs the whole sharded hot path against the naive model;
    // the 100-seed versions run in CI via oracle_diff --shards.
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
        DiffOptions opts;
        opts.shards = shards;
        opts.batchSize = 128;
        const LatticeRun run = runLattice(1, 2, 300, "", opts);
        EXPECT_EQ(run.comparisons, 2 * latticeConfigs().size());
        for (const auto &div : run.divergences) {
            ADD_FAILURE() << "config " << div.configName << " seed "
                          << div.seed << " @" << shards << " shards:\n"
                          << div.report.describe();
        }
    }
}

TEST(DiffHarnessTest, ShardedFeedStillCatchesMutations)
{
    // The sharded feed must not blunt the harness: a mutated oracle
    // still has to diverge when the production side batches.
    const auto cfg = conflictBoard(cache::ReplacementPolicy::TreePLRU);
    DiffOptions opts;
    opts.mutation = RefMutation::SkipPlruTouchOnHit;
    opts.shards = 4;
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed)
        caught = diffStream(cfg, stream(seed, 600, hotParams()), opts)
                     .diverged;
    EXPECT_TRUE(caught)
        << "PLRU mutation survived the sharded-feed harness";
}

TEST(DiffHarnessTest, AgreesOnDefaultBoard)
{
    const auto cfg = conflictBoard(cache::ReplacementPolicy::LRU);
    const DiffReport report = diffStream(cfg, stream(21, 500));
    EXPECT_FALSE(report.diverged) << report.describe();
    EXPECT_TRUE(report.summary.empty());
    EXPECT_TRUE(report.flightDump.empty());
}

TEST(DiffHarnessTest, PlruMutationIsCaughtAndShrinksSmall)
{
    const auto cfg = conflictBoard(cache::ReplacementPolicy::TreePLRU);
    DiffOptions opts;
    opts.mutation = RefMutation::SkipPlruTouchOnHit;

    // Find a seed the mutation bites on (it needs a hit wedged between
    // the fills and the conflict miss of one set; a hot footprint makes
    // that nearly certain immediately).
    std::vector<bus::BusTransaction> failing;
    DiffReport report;
    for (std::uint64_t seed = 1; seed <= 5 && failing.empty(); ++seed) {
        auto txns = stream(seed, 600, hotParams());
        report = diffStream(cfg, txns, opts);
        if (report.diverged)
            failing = std::move(txns);
    }
    ASSERT_FALSE(failing.empty())
        << "SkipPlruTouchOnHit never diverged: the harness is blind "
           "to replacement bugs";
    EXPECT_FALSE(report.summary.empty());
    EXPECT_FALSE(report.describe().empty());
    EXPECT_FALSE(report.flightDump.empty())
        << "divergence arrived without its flight-recorder dump";

    // The acceptance bar: ddmin reduces the witness to <= 10 txns
    // (minimum possible here is ~6: four fills, a hit, a conflict).
    const auto shrunk = shrinkStream(
        failing, [&](const std::vector<bus::BusTransaction> &s) {
            return diffStream(cfg, s, opts).diverged;
        });
    EXPECT_LE(shrunk.size(), 10u);
    EXPECT_TRUE(diffStream(cfg, shrunk, opts).diverged);
}

TEST(DiffHarnessTest, SnooperDowngradeMutationIsCaught)
{
    // Coherence bugs only bite across nodes: 4 nodes x 2 CPUs, with
    // enough sharing that remote Rwitm/Read snoops hit valid lines.
    const auto cfg = ies::makeUniformBoard(
        4, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    DiffOptions opts;
    opts.mutation = RefMutation::DropSnooperDowngrade;

    StimulusParams p = hotParams();
    p.shareFraction = 0.6;
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed)
        caught = diffStream(cfg, stream(seed, 600, p), opts).diverged;
    EXPECT_TRUE(caught)
        << "DropSnooperDowngrade never diverged: the harness is blind "
           "to coherence bugs";
}

TEST(DiffHarnessTest, ProtocolTableFlipIsCaught)
{
    // Flip one data bit of the spec itself: a clean Read miss installs
    // Shared instead of Exclusive in the oracle's copy of MESI. The
    // tables now disagree (fingerprint check), and the boards must too.
    const auto cfg = conflictBoard(cache::ReplacementPolicy::LRU);
    auto ref_cfg = cfg;
    ref_cfg.nodes[0].protocol.setRequester(
        bus::BusOp::Read, protocol::LineState::Invalid,
        protocol::SnoopSummary::None,
        {protocol::LineState::Shared, true});
    ASSERT_NE(cfg.nodes[0].protocol.fingerprint(),
              ref_cfg.nodes[0].protocol.fingerprint());

    DiffOptions opts;
    opts.refConfig = &ref_cfg;
    const DiffReport report = diffStream(cfg, stream(31, 400), opts);
    EXPECT_TRUE(report.diverged)
        << "a flipped protocol-table entry went undetected";
    EXPECT_FALSE(report.details.empty());
}

TEST(DiffHarnessTest, ReportDetailListIsBounded)
{
    // A protocol flip diverges nearly everywhere; the report must
    // still truncate at maxDetails instead of dumping thousands of
    // lines into a CI log.
    const auto cfg = conflictBoard(cache::ReplacementPolicy::LRU);
    auto ref_cfg = cfg;
    ref_cfg.nodes[0].protocol.setRequester(
        bus::BusOp::Read, protocol::LineState::Invalid,
        protocol::SnoopSummary::None,
        {protocol::LineState::Shared, true});

    DiffOptions opts;
    opts.refConfig = &ref_cfg;
    opts.maxDetails = 3;
    const DiffReport report = diffStream(cfg, stream(31, 400), opts);
    ASSERT_TRUE(report.diverged);
    EXPECT_LE(report.details.size(), 3u);
}

} // namespace
} // namespace memories::oracle
