/**
 * @file
 * RefBoard unit tests: the naive oracle rejects configurations it does
 * not model, exposes exactly the production counter name set (so a
 * counter added to one side without the other is a test failure, not a
 * silent blind spot), keeps its buffer bookkeeping invariants, and is
 * deterministic across rebuilds.
 */

#include "oracle/refboard.hh"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/logging.hh"
#include "ies/board.hh"
#include "oracle/stimulus.hh"

namespace memories::oracle
{
namespace
{

ies::BoardConfig
smallBoard()
{
    return ies::makeUniformBoard(
        1, 8,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
}

TEST(RefBoardTest, RejectsUnmodeledConfigs)
{
    auto cfg = smallBoard();
    cfg.health.enabled = true;
    EXPECT_THROW(RefBoard{cfg}, FatalError);

    cfg = smallBoard();
    cfg.traceCapture = true;
    EXPECT_THROW(RefBoard{cfg}, FatalError);

    cfg = smallBoard();
    cfg.nodes.clear();
    EXPECT_THROW(RefBoard{cfg}, FatalError);
}

TEST(RefBoardTest, CounterNameSetMatchesProductionExactly)
{
    const auto cfg = ies::makeUniformBoard(
        4, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    const RefBoard ref(cfg);
    const auto board = ies::MemoriesBoard::make(cfg, 1);

    std::set<std::string> prod_names;
    for (const CounterSample &s : board->globalCounters().snapshot())
        prod_names.insert(std::string(s.name));
    for (std::size_t n = 0; n < board->numNodes(); ++n) {
        for (const CounterSample &s : board->node(n).counters().snapshot())
            prod_names.insert(std::string(s.name));
    }

    std::set<std::string> ref_names;
    for (const auto &[name, value] : ref.counters())
        ref_names.insert(name);

    // Set equality with readable failure output: report the exact
    // names missing from each side rather than "sets differ".
    for (const auto &name : prod_names)
        EXPECT_TRUE(ref_names.count(name))
            << "oracle is missing production counter " << name;
    for (const auto &name : ref_names)
        EXPECT_TRUE(prod_names.count(name))
            << "oracle invented counter " << name;
}

TEST(RefBoardTest, UnknownCounterIsFatal)
{
    const RefBoard ref(smallBoard());
    EXPECT_THROW(ref.counter("no.such.counter"), FatalError);
    EXPECT_EQ(ref.counter("global.tenures.committed"), 0u);
}

TEST(RefBoardTest, BufferInvariantsAndRetirementOrder)
{
    // Tiny paced buffer plus a bursty stream (90% same-cycle tenures
    // against a 5%-rate drain) so the overflow path must trigger.
    auto cfg = smallBoard();
    cfg.bufferEntries = 16;
    cfg.sdramThroughputPercent = 5;

    StimulusParams p;
    p.seed = 7;
    p.count = 600;
    p.pBurst = 0.9;
    p.maxGap = 2;

    RefBoard ref(cfg);
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    for (const auto &t : StimulusGen(p).generate()) {
        if (ref.feedCommitted(t))
            ++accepted;
        else
            ++rejected;
        EXPECT_LE(ref.bufferSize(), cfg.bufferEntries);
        EXPECT_LE(ref.bufferSize(), ref.bufferHighWater());
    }
    ref.drainAll();

    EXPECT_GT(rejected, 0u) << "16-entry buffer never overflowed; the "
                               "overflow path went untested";
    EXPECT_EQ(ref.bufferSize(), 0u);
    EXPECT_EQ(ref.bufferRetired(), ref.retirements().size());
    EXPECT_EQ(ref.counter("global.retries_posted"), rejected);

    // Retirement is FIFO in commit order: traceIds strictly increase
    // (retire *cycles* can step back at the drainAll flush, which
    // stamps leftovers with their original commit cycle).
    const auto &rets = ref.retirements();
    for (std::size_t i = 1; i < rets.size(); ++i)
        EXPECT_GT(rets[i].traceId, rets[i - 1].traceId);
}

TEST(RefBoardTest, DeterministicAcrossRebuilds)
{
    // Few-set geometry (2MiB / 4KiB lines / 4 ways = 128 sets) so the
    // sets actually fill and the Random policy draws victims.
    const auto cfg = ies::makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 4096,
                           cache::ReplacementPolicy::Random});
    StimulusParams p;
    p.seed = 11;
    p.count = 1500;
    p.footprintLines = 1 << 13; // 1MiB per CPU: ~16 lines per set
    const auto txns = StimulusGen(p).generate();

    RefBoard a(cfg, 42);
    RefBoard b(cfg, 42);
    for (const auto &t : txns) {
        EXPECT_EQ(a.feedCommitted(t), b.feedCommitted(t));
    }
    a.drainAll();
    b.drainAll();

    EXPECT_EQ(a.counters(), b.counters());
    EXPECT_EQ(a.retirements(), b.retirements());
    for (std::size_t n = 0; n < a.numNodes(); ++n)
        EXPECT_EQ(a.directorySnapshot(n), b.directorySnapshot(n));

    // A different board seed draws a different Random-policy victim
    // sequence, so the directories (almost surely) differ.
    RefBoard c(cfg, 43);
    for (const auto &t : txns)
        c.feedCommitted(t);
    c.drainAll();
    bool any_diff = false;
    for (std::size_t n = 0; n < a.numNodes(); ++n)
        any_diff |= a.directorySnapshot(n) != c.directorySnapshot(n);
    EXPECT_TRUE(any_diff)
        << "Random replacement ignored the board seed";
}

TEST(RefBoardTest, FilteredOpsNeverTouchTheBuffer)
{
    RefBoard ref(smallBoard());
    bus::BusTransaction t;
    t.addr = 0x1000;
    t.op = bus::BusOp::IoRead;
    t.cycle = 5;
    t.traceId = 1;
    EXPECT_TRUE(ref.feedCommitted(t));
    EXPECT_EQ(ref.counter("global.tenures.filtered"), 1u);
    EXPECT_EQ(ref.counter("global.tenures.committed"), 0u);
    EXPECT_EQ(ref.bufferSize(), 0u);
}

} // namespace
} // namespace memories::oracle
