/**
 * @file
 * diffStreamFromCheckpoint: resume both the production board and the
 * independent RefBoard from one IESCKPT file and diff the tail. The
 * clean path must agree on tricky lattice points (per-set RNG draws,
 * set sampling, multi-node snooping); a deliberately mutated oracle
 * must still diverge (proving the resumed diff has teeth); and
 * checkpoints the oracle cannot model — fault-injector state, wrong
 * configuration — must be rejected up front.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fault/injector.hh"
#include "ies/board.hh"
#include "oracle/diff.hh"
#include "oracle/stimulus.hh"

namespace memories::oracle
{
namespace
{

const ies::BoardConfig &
latticeConfig(const std::string &name)
{
    static const std::vector<LatticeConfig> lattice = latticeConfigs();
    for (const LatticeConfig &c : lattice) {
        if (c.name == name)
            return c.config;
    }
    fatal("no lattice config named ", name);
}

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count = 600)
{
    StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = 8;
    return StimulusGen(p).generate();
}

class DiffFromCheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "diff_resume_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".ckpt";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Feed the first @p k of @p txns into a fresh board and save. */
    void writeCheckpoint(const ies::BoardConfig &cfg,
                         const std::vector<bus::BusTransaction> &txns,
                         std::size_t k, bool drainFirst = false)
    {
        ies::MemoriesBoard board(cfg);
        for (std::size_t i = 0; i < k; ++i)
            board.feedCommitted(txns[i]);
        if (drainFirst)
            board.drainAll();
        board.saveState(path_);
    }

    std::string path_;
};

TEST_F(DiffFromCheckpointTest, ResumedDiffAgreesOnTrickyConfigs)
{
    // Random replacement (per-set RNG streams must resume in step),
    // set sampling, and a four-node coherent machine.
    for (const char *name :
         {"mesi-2m-4w-random", "mesi-8m-sampled4", "mesi-4node-2cpu"}) {
        const ies::BoardConfig &cfg = latticeConfig(name);
        const auto txns = stream(17);
        writeCheckpoint(cfg, txns, txns.size() / 2);
        const std::vector<bus::BusTransaction> tail(
            txns.begin() + txns.size() / 2, txns.end());
        const DiffReport report =
            diffStreamFromCheckpoint(cfg, path_, tail);
        EXPECT_FALSE(report.diverged)
            << name << ": " << report.describe();
    }
}

TEST_F(DiffFromCheckpointTest, ResumedDiffAgreesOnDrainedCheckpoint)
{
    // A drained checkpoint (empty in-flight FIFO) is the documented
    // replay recipe; it must agree too.
    const ies::BoardConfig &cfg = latticeConfig("mesi-2m-4w-lru");
    const auto txns = stream(23);
    writeCheckpoint(cfg, txns, txns.size() / 2, /*drainFirst=*/true);
    const std::vector<bus::BusTransaction> tail(
        txns.begin() + txns.size() / 2, txns.end());
    const DiffReport report = diffStreamFromCheckpoint(cfg, path_, tail);
    EXPECT_FALSE(report.diverged) << report.describe();
}

TEST_F(DiffFromCheckpointTest, MutatedOracleStillDiverges)
{
    // Smoke check that the resumed comparison can actually fail: an
    // oracle that forgets PLRU touches must drift from the warm
    // production board within the tail. Needs a geometry where the
    // tail actually evicts — 2MiB / (4KiB x 4) = 128 sets with a hot
    // 1MiB-per-CPU footprint piles conflict misses into every set
    // (same recipe as diff_harness_test.cc's mutation smoke).
    const ies::BoardConfig cfg = ies::makeUniformBoard(
        1, 8,
        cache::CacheConfig{2 * MiB, 4, 4096,
                           cache::ReplacementPolicy::TreePLRU});
    DiffOptions opts;
    opts.mutation = RefMutation::SkipPlruTouchOnHit;
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed) {
        StimulusParams p;
        p.seed = seed;
        p.count = 1200;
        p.cpus = 8;
        p.footprintLines = 1 << 13;
        p.sharedLines = 256;
        const auto txns = StimulusGen(p).generate();
        writeCheckpoint(cfg, txns, txns.size() / 2);
        const std::vector<bus::BusTransaction> tail(
            txns.begin() + txns.size() / 2, txns.end());
        const DiffReport report =
            diffStreamFromCheckpoint(cfg, path_, tail, opts);
        if (report.diverged) {
            EXPECT_FALSE(report.summary.empty());
            caught = true;
        }
    }
    EXPECT_TRUE(caught)
        << "PLRU mutation survived the resumed-diff harness";
}

TEST_F(DiffFromCheckpointTest, RejectsInjectorBearingCheckpoint)
{
    const ies::BoardConfig &cfg = latticeConfig("mesi-2m-4w-lru");
    const auto txns = stream(31);
    {
        ies::MemoriesBoard board(cfg);
        const auto plan =
            fault::FaultPlan::parse("dropreply prob 0.02\n");
        fault::FaultInjector inj(plan, 5);
        board.attachFaultInjector(inj);
        for (std::size_t i = 0; i < txns.size() / 2; ++i)
            board.feedCommitted(txns[i]);
        board.saveState(path_);
    }
    const std::vector<bus::BusTransaction> tail(
        txns.begin() + txns.size() / 2, txns.end());
    EXPECT_THROW(diffStreamFromCheckpoint(cfg, path_, tail),
                 FatalError);
}

TEST_F(DiffFromCheckpointTest, RejectsMismatchedConfiguration)
{
    const ies::BoardConfig &saved = latticeConfig("mesi-2m-4w-lru");
    const auto txns = stream(37);
    writeCheckpoint(saved, txns, txns.size() / 2);
    const std::vector<bus::BusTransaction> tail(
        txns.begin() + txns.size() / 2, txns.end());
    EXPECT_THROW(diffStreamFromCheckpoint(
                     latticeConfig("moesi-4m-4w-lru"), path_, tail),
                 FatalError);
}

} // namespace
} // namespace memories::oracle
