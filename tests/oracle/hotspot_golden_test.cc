/**
 * @file
 * Golden-counter test for the hot-spot personality: drive the tracker
 * with property-generated streams and recount every cell with the
 * dumbest possible map — per-cell read/write tallies, tracked and
 * untracked totals, and the topN ordering must all match exactly.
 */

#include "ies/hotspot.hh"

#include <gtest/gtest.h>

#include <map>

#include "bus/busop.hh"
#include "oracle/stimulus.hh"

namespace memories::ies
{
namespace
{

struct GoldenCell
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/** The specification of observeResult(), restated independently. */
struct GoldenCount
{
    std::map<Addr, GoldenCell> cells; //!< keyed by cell base address
    std::uint64_t tracked = 0;
    std::uint64_t untracked = 0;

    void observe(const HotSpotConfig &cfg, const bus::BusTransaction &t)
    {
        if (!bus::isMemoryOp(t.op))
            return;
        if (t.addr < cfg.regionBase ||
            t.addr >= cfg.regionBase + cfg.regionBytes) {
            ++untracked;
            return;
        }
        ++tracked;
        const Addr base =
            cfg.regionBase + (t.addr - cfg.regionBase) /
                                 cfg.granularityBytes *
                                 cfg.granularityBytes;
        if (bus::isWriteIntentOp(t.op) || t.op == bus::BusOp::WriteBack)
            ++cells[base].writes;
        else
            ++cells[base].reads;
    }
};

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    // Keep a slice of the stream outside the tracked window so the
    // untracked path is exercised too (footprint spans ~32MiB/CPU).
    p.footprintLines = std::uint64_t{1} << 18;
    return oracle::StimulusGen(p).generate();
}

TEST(HotSpotGoldenTest, CountersMatchNaiveRecount)
{
    for (const std::uint64_t gran : {std::uint64_t{128},
                                     std::uint64_t{4096}}) {
        HotSpotConfig cfg;
        cfg.regionBase = 0;
        cfg.regionBytes = 16 * MiB;
        cfg.granularityBytes = gran;
        HotSpotTracker tracker(cfg);
        GoldenCount golden;

        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            for (const auto &t : stream(seed, 2000)) {
                tracker.observeResult(t, bus::SnoopResponse::None);
                golden.observe(cfg, t);
            }
        }

        EXPECT_EQ(tracker.tracked(), golden.tracked);
        EXPECT_EQ(tracker.untracked(), golden.untracked);
        EXPECT_GT(golden.tracked, 0u);
        EXPECT_GT(golden.untracked, 0u);

        for (const auto &[base, cell] : golden.cells) {
            const HotSpotEntry e = tracker.countsFor(base);
            EXPECT_EQ(e.base, base);
            EXPECT_EQ(e.reads, cell.reads) << "cell 0x" << std::hex
                                           << base;
            EXPECT_EQ(e.writes, cell.writes) << "cell 0x" << std::hex
                                             << base;
        }
    }
}

TEST(HotSpotGoldenTest, RetriedTenuresAreNotCounted)
{
    HotSpotConfig cfg;
    cfg.regionBase = 0;
    cfg.regionBytes = 16 * MiB;
    cfg.granularityBytes = 4096;
    HotSpotTracker tracker(cfg);

    for (const auto &t : stream(4, 500))
        tracker.observeResult(t, bus::SnoopResponse::Retry);
    EXPECT_EQ(tracker.tracked(), 0u);
    EXPECT_EQ(tracker.untracked(), 0u);
}

TEST(HotSpotGoldenTest, TopNMatchesGoldenOrdering)
{
    HotSpotConfig cfg;
    cfg.regionBase = 0;
    cfg.regionBytes = 16 * MiB;
    cfg.granularityBytes = 4096;
    HotSpotTracker tracker(cfg);
    GoldenCount golden;

    for (const auto &t : stream(5, 3000)) {
        tracker.observeResult(t, bus::SnoopResponse::None);
        golden.observe(cfg, t);
    }

    const auto top = tracker.topN(10);
    ASSERT_FALSE(top.empty());
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].total(), top[i].total());
    for (const auto &e : top) {
        const auto it = golden.cells.find(e.base);
        ASSERT_NE(it, golden.cells.end());
        EXPECT_EQ(e.reads, it->second.reads);
        EXPECT_EQ(e.writes, it->second.writes);
    }
}

} // namespace
} // namespace memories::ies
