/**
 * @file
 * Golden-counter tests for the NUMA personality: the local/remote
 * request split is recounted exactly from first principles (home
 * interleave math on the raw stream), the hit/miss ledger must
 * balance, and the emulator is deterministic per (config, seed).
 */

#include "ies/numa.hh"

#include <gtest/gtest.h>

#include "bus/busop.hh"
#include "oracle/stimulus.hh"

namespace memories::ies
{
namespace
{

NumaConfig
smallNuma()
{
    NumaConfig cfg;
    cfg.numNodes = 4;
    cfg.cpusPerNode = 2;
    cfg.l3 = cache::CacheConfig{2 * MiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.sparseEntries = 1 << 10;
    cfg.sparseAssoc = 4;
    cfg.homeGranularityBytes = 4096;
    return cfg;
}

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.shareFraction = 0.5; // plenty of cross-node traffic
    return oracle::StimulusGen(p).generate();
}

/** True when observeResult() lets @p t reach the directory walk. */
bool
consultsDirectory(const NumaConfig &cfg, const bus::BusTransaction &t)
{
    if (!bus::isMemoryOp(t.op))
        return false;
    if (t.cpu / cfg.cpusPerNode >= cfg.numNodes)
        return false;
    return bus::isReadOp(t.op) || bus::isWriteIntentOp(t.op);
}

TEST(NumaGoldenTest, LocalRemoteSplitMatchesInterleaveMath)
{
    const auto cfg = smallNuma();
    NumaEmulator emu(cfg);

    std::uint64_t golden_local = 0;
    std::uint64_t golden_remote = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (const auto &t : stream(seed, 2000)) {
            emu.observeResult(t, bus::SnoopResponse::None);
            if (!consultsDirectory(cfg, t))
                continue;
            const unsigned node = t.cpu / cfg.cpusPerNode;
            const unsigned home = static_cast<unsigned>(
                (t.addr / cfg.homeGranularityBytes) % cfg.numNodes);
            if (node == home)
                ++golden_local;
            else
                ++golden_remote;
        }
    }

    const NumaStats s = emu.stats();
    EXPECT_EQ(s.localRequests, golden_local);
    EXPECT_EQ(s.remoteRequests, golden_remote);
    EXPECT_GT(golden_local, 0u);
    EXPECT_GT(golden_remote, 0u);

    // Every directory consultation ends in exactly one of hit/miss.
    EXPECT_EQ(s.l3Hits + s.l3Misses, golden_local + golden_remote);
}

TEST(NumaGoldenTest, RetriedAndUnmappedTrafficIsIgnored)
{
    const auto cfg = smallNuma();
    NumaEmulator emu(cfg);

    for (const auto &t : stream(4, 500))
        emu.observeResult(t, bus::SnoopResponse::Retry);
    EXPECT_EQ(emu.stats().localRequests + emu.stats().remoteRequests,
              0u);

    // CPU 8+ is past the 4x2 node map: an unmapped bus master.
    bus::BusTransaction t;
    t.addr = 0x4000;
    t.op = bus::BusOp::Read;
    t.cpu = 9;
    emu.observeResult(t, bus::SnoopResponse::None);
    EXPECT_EQ(emu.stats().localRequests + emu.stats().remoteRequests,
              0u);
}

TEST(NumaGoldenTest, DeterministicPerSeed)
{
    const auto cfg = smallNuma();
    const auto txns = stream(7, 3000);

    NumaEmulator a(cfg, 5);
    NumaEmulator b(cfg, 5);
    for (const auto &t : txns) {
        a.observeResult(t, bus::SnoopResponse::None);
        b.observeResult(t, bus::SnoopResponse::None);
    }

    const NumaStats sa = a.stats();
    const NumaStats sb = b.stats();
    EXPECT_EQ(sa.localRequests, sb.localRequests);
    EXPECT_EQ(sa.remoteRequests, sb.remoteRequests);
    EXPECT_EQ(sa.l3Hits, sb.l3Hits);
    EXPECT_EQ(sa.l3Misses, sb.l3Misses);
    EXPECT_EQ(sa.sparseEvictions, sb.sparseEvictions);
    EXPECT_EQ(sa.invalidationsSent, sb.invalidationsSent);
    EXPECT_EQ(sa.writeInvalidations, sb.writeInvalidations);
    EXPECT_EQ(sa.overInvalidations, sb.overInvalidations);
}

TEST(NumaGoldenTest, CoarseVectorWithGroupOfOneIsFullMap)
{
    // One node per presence bit makes the coarse vector exact, so the
    // two schemes must agree on *every* statistic over any stream —
    // the cheapest cross-implementation oracle the scheme code has.
    const auto txns = stream(9, 4000);

    auto exact_cfg = smallNuma();
    exact_cfg.scheme = DirectoryScheme::FullMap;
    NumaEmulator exact(exact_cfg);

    auto coarse_cfg = smallNuma();
    coarse_cfg.scheme = DirectoryScheme::CoarseVector;
    coarse_cfg.coarseGroupNodes = 1;
    NumaEmulator coarse(coarse_cfg);

    for (const auto &t : txns) {
        exact.observeResult(t, bus::SnoopResponse::None);
        coarse.observeResult(t, bus::SnoopResponse::None);
    }

    const NumaStats se = exact.stats();
    const NumaStats sc = coarse.stats();
    EXPECT_EQ(se.localRequests, sc.localRequests);
    EXPECT_EQ(se.remoteRequests, sc.remoteRequests);
    EXPECT_EQ(se.l3Hits, sc.l3Hits);
    EXPECT_EQ(se.l3Misses, sc.l3Misses);
    EXPECT_EQ(se.sparseEvictions, sc.sparseEvictions);
    EXPECT_EQ(se.invalidationsSent, sc.invalidationsSent);
    EXPECT_EQ(se.writeInvalidations, sc.writeInvalidations);
    EXPECT_EQ(se.overInvalidations, sc.overInvalidations);
}

} // namespace
} // namespace memories::ies
