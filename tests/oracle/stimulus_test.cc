/**
 * @file
 * StimulusGen property tests: streams are pure functions of their
 * seed, structurally valid (aligned addresses, nondecreasing cycles,
 * dense traceIds), cover the op mix they were asked for, shrink
 * correctly under ddmin, and survive a trace-file round trip.
 */

#include "oracle/stimulus.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "bus/busop.hh"
#include "common/logging.hh"
#include "trace/record.hh"

namespace memories::oracle
{
namespace
{

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count = 1000)
{
    StimulusParams p;
    p.seed = seed;
    p.count = count;
    return StimulusGen(p).generate();
}

TEST(StimulusTest, DeterministicPerSeed)
{
    const auto a = stream(3);
    const auto b = stream(3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].cpu, b[i].cpu);
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].traceId, b[i].traceId);
    }

    const auto c = stream(4);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs |= a[i].addr != c[i].addr || a[i].op != c[i].op;
    EXPECT_TRUE(differs) << "seeds 3 and 4 generated identical streams";
}

TEST(StimulusTest, StructurallyValidStreams)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto txns = stream(seed);
        ASSERT_EQ(txns.size(), 1000u);
        Cycle prev = 0;
        for (std::size_t i = 0; i < txns.size(); ++i) {
            const auto &t = txns[i];
            EXPECT_EQ(t.addr % 128, 0u);
            EXPECT_EQ(t.size, 128u);
            EXPECT_EQ(t.traceId, i + 1);
            EXPECT_LT(t.cpu, 8u);
            EXPECT_GE(t.cycle, 1u);
            EXPECT_GE(t.cycle, prev);
            prev = t.cycle;
        }
    }
}

TEST(StimulusTest, OpMixCoversEveryRequestedClass)
{
    const auto txns = stream(1, 4000);
    std::set<bus::BusOp> seen;
    for (const auto &t : txns)
        seen.insert(t.op);

    // The default mix weights every memory op and the filtered class;
    // 4000 draws make each one all but certain.
    for (const bus::BusOp op :
         {bus::BusOp::Read, bus::BusOp::ReadIfetch, bus::BusOp::Rwitm,
          bus::BusOp::DClaim, bus::BusOp::WriteBack})
        EXPECT_TRUE(seen.count(op)) << bus::busOpName(op);

    const bool any_filtered = std::any_of(
        txns.begin(), txns.end(), [](const bus::BusTransaction &t) {
            return !bus::isMemoryOp(t.op);
        });
    EXPECT_TRUE(any_filtered)
        << "pFiltered > 0 but no filtered op was generated";
}

TEST(StimulusTest, SharingActuallyShares)
{
    // With shareFraction > 0, some line must be referenced by two
    // different CPUs — that is the whole point of the shared pool.
    const auto txns = stream(2, 2000);
    std::map<Addr, std::set<std::uint8_t>> users;
    for (const auto &t : txns)
        if (bus::isMemoryOp(t.op))
            users[t.addr].insert(t.cpu);
    const bool shared = std::any_of(
        users.begin(), users.end(),
        [](const auto &kv) { return kv.second.size() >= 2; });
    EXPECT_TRUE(shared);
}

TEST(StimulusTest, ShrinkFindsMinimalWitness)
{
    const auto txns = stream(5, 600);

    // Synthetic failure: the stream fails while it still holds a Rwitm
    // and a WriteBack. The minimal witness is exactly two transactions.
    const FailPredicate pred =
        [](const std::vector<bus::BusTransaction> &s) {
            bool rwitm = false;
            bool wb = false;
            for (const auto &t : s) {
                rwitm |= t.op == bus::BusOp::Rwitm;
                wb |= t.op == bus::BusOp::WriteBack;
            }
            return rwitm && wb;
        };
    ASSERT_TRUE(pred(txns));

    const auto shrunk = shrinkStream(txns, pred);
    EXPECT_EQ(shrunk.size(), 2u);
    EXPECT_TRUE(pred(shrunk));
}

TEST(StimulusTest, ShrinkOfPassingStreamIsFatal)
{
    const auto txns = stream(6, 50);
    const FailPredicate never =
        [](const std::vector<bus::BusTransaction> &) { return false; };
    EXPECT_THROW(shrinkStream(txns, never), FatalError);
}

TEST(StimulusTest, CanonicalStreamSurvivesTraceRoundTrip)
{
    const auto canonical = canonicalizeForReplay(stream(9, 400));
    ASSERT_FALSE(canonical.empty());
    EXPECT_EQ(canonical.front().cycle, 1u);
    for (std::size_t i = 1; i < canonical.size(); ++i) {
        EXPECT_LE(canonical[i].cycle - canonical[i - 1].cycle,
                  trace::maxCycleDelta);
    }

    const std::string path =
        ::testing::TempDir() + "stimulus_roundtrip.trace";
    writeTrace(path, canonical);
    const auto replayed = readTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(replayed.size(), canonical.size());
    for (std::size_t i = 0; i < canonical.size(); ++i) {
        EXPECT_EQ(replayed[i].addr, canonical[i].addr);
        EXPECT_EQ(replayed[i].op, canonical[i].op);
        EXPECT_EQ(replayed[i].cpu, canonical[i].cpu);
        EXPECT_EQ(replayed[i].cycle, canonical[i].cycle);
        EXPECT_EQ(replayed[i].size, canonical[i].size);
        EXPECT_EQ(replayed[i].traceId, canonical[i].traceId);
    }
}

TEST(StimulusTest, GeneratedFaultPlansAreValidAndDeterministic)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        const fault::FaultPlan plan = randomFaultPlan(rng);
        EXPECT_GE(plan.faults.size(), 1u);
        EXPECT_LE(plan.faults.size(), 6u);
        // describe() must render every generated plan without fatal():
        // the generator only sets fields the grammar can express.
        EXPECT_FALSE(plan.describe().empty());
    }

    Rng a(23);
    Rng b(23);
    EXPECT_EQ(randomFaultPlan(a), randomFaultPlan(b));
}

TEST(StimulusTest, RejectsDegenerateParams)
{
    StimulusParams p;
    p.cpus = 0;
    EXPECT_THROW(StimulusGen{p}, FatalError);

    p = StimulusParams{};
    p.footprintLines = 0;
    EXPECT_THROW(StimulusGen{p}, FatalError);
}

} // namespace
} // namespace memories::oracle
