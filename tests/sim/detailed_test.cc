#include "sim/detailed.hh"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.hh"

namespace memories::sim
{
namespace
{

DetailedParams
smallParams()
{
    DetailedParams p;
    p.cache = cache::CacheConfig{64 * KiB, 4, 128,
                                 cache::ReplacementPolicy::LRU};
    return p;
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op = bus::BusOp::Read, Cycle cycle = 0)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cycle = cycle;
    return t;
}

TEST(DetailedSimTest, RejectsBadParams)
{
    auto p = smallParams();
    p.sdramBanks = 0;
    EXPECT_THROW(DetailedCacheSimulator{p}, FatalError);
    p = smallParams();
    p.reuseSamplePeriod = 0;
    EXPECT_THROW(DetailedCacheSimulator{p}, FatalError);
}

TEST(DetailedSimTest, ColdMissThenHit)
{
    DetailedCacheSimulator sim(smallParams());
    sim.process(txn(0x1000));
    sim.process(txn(0x1000));
    sim.finish();
    const auto s = sim.stats();
    EXPECT_EQ(s.accesses, 2u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.5);
}

TEST(DetailedSimTest, IgnoresNonMemoryOps)
{
    DetailedCacheSimulator sim(smallParams());
    sim.process(txn(0x1000, bus::BusOp::IoRead));
    EXPECT_EQ(sim.stats().accesses, 0u);
}

TEST(DetailedSimTest, MissesCostMoreThanHits)
{
    DetailedCacheSimulator sim(smallParams());
    for (int i = 0; i < 1000; ++i)
        sim.process(txn(0x1000u + 128u * (i % 512),
                        bus::BusOp::Read, 100u * i));
    sim.finish();
    const auto s = sim.stats();
    EXPECT_GT(s.meanLatencyCycles,
              static_cast<double>(smallParams().directoryLookupCycles));
    EXPECT_GT(s.misses, 0u);
}

TEST(DetailedSimTest, LatencyHistogramPopulated)
{
    DetailedCacheSimulator sim(smallParams());
    for (int i = 0; i < 100; ++i)
        sim.process(txn(0x1000u + 128u * i, bus::BusOp::Read, 10u * i));
    sim.finish();
    EXPECT_EQ(sim.latencyHistogram().samples(), 100u);
    EXPECT_GT(sim.latencyHistogram().mean(), 0.0);
}

TEST(DetailedSimTest, ReuseHistogramSamples)
{
    DetailedCacheSimulator sim(smallParams());
    for (int i = 0; i < 1000; ++i)
        sim.process(txn(0x1000, bus::BusOp::Read, i));
    sim.finish();
    EXPECT_GT(sim.reuseHistogram().samples(), 0u);
}

TEST(DetailedSimTest, EvictionsCounted)
{
    auto p = smallParams();
    p.cache = cache::CacheConfig{8 * KiB, 1, 128,
                                 cache::ReplacementPolicy::LRU};
    DetailedCacheSimulator sim(p);
    for (int i = 0; i < 128; ++i)
        sim.process(txn(128u * i));
    for (int i = 0; i < 128; ++i)
        sim.process(txn(8 * KiB + 128u * i)); // conflicts
    sim.finish();
    EXPECT_GT(sim.stats().evictions, 0u);
}

TEST(DetailedSimTest, RunTraceConsumesWholeFile)
{
    const std::string path = ::testing::TempDir() + "detailed_trace.ies";
    {
        trace::TraceWriter writer(path);
        for (int i = 0; i < 500; ++i) {
            bus::BusTransaction t = txn(0x1000u + 128u * (i % 64),
                                        bus::BusOp::Read, 5u * i);
            writer.append(t);
        }
        writer.flush();
    }
    trace::TraceReader reader(path);
    DetailedCacheSimulator sim(smallParams());
    EXPECT_EQ(sim.runTrace(reader), 500u);
    EXPECT_EQ(sim.stats().accesses, 500u);
    std::remove(path.c_str());
}

TEST(DetailedSimTest, WriteOpsDirtyTheLine)
{
    DetailedCacheSimulator sim(smallParams());
    sim.process(txn(0x1000, bus::BusOp::Rwitm));
    sim.process(txn(0x1000, bus::BusOp::Read, 100));
    sim.finish();
    EXPECT_EQ(sim.stats().hits, 1u);
}

TEST(DetailedSimTest, ManagementOpsNeverAllocate)
{
    DetailedCacheSimulator sim(smallParams());
    sim.process(txn(0x1000, bus::BusOp::Flush));
    sim.process(txn(0x2000, bus::BusOp::Kill, 10));
    sim.process(txn(0x3000, bus::BusOp::Clean, 20));
    // None of the lines is resident afterwards.
    sim.process(txn(0x1000, bus::BusOp::Read, 30));
    sim.finish();
    EXPECT_EQ(sim.stats().hits, 0u);
    EXPECT_EQ(sim.stats().misses, 4u);
}

TEST(DetailedSimTest, FlushEvictsResidentLine)
{
    DetailedCacheSimulator sim(smallParams());
    sim.process(txn(0x1000, bus::BusOp::Read));
    sim.process(txn(0x1000, bus::BusOp::Flush, 10));
    sim.process(txn(0x1000, bus::BusOp::Read, 20));
    sim.finish();
    // Read miss, flush hit, read miss again.
    EXPECT_EQ(sim.stats().hits, 1u);
    EXPECT_EQ(sim.stats().misses, 2u);
}

} // namespace
} // namespace memories::sim
