#include "sim/execdriven.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/synthetic.hh"

namespace memories::sim
{
namespace
{

ExecDrivenParams
smallParams()
{
    ExecDrivenParams p;
    p.l1 = cache::CacheConfig{8 * KiB, 2, 128,
                              cache::ReplacementPolicy::LRU};
    p.l2 = cache::CacheConfig{64 * KiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
    p.shared.cache = cache::CacheConfig{1 * MiB, 4, 128,
                                        cache::ReplacementPolicy::LRU};
    return p;
}

TEST(ExecDrivenTest, ExecutesRequestedInstructions)
{
    workload::UniformWorkload wl(4, 1 * MiB, 0.2);
    ExecutionDrivenSimulator sim(smallParams(), wl);
    sim.run(1000);
    EXPECT_EQ(sim.stats().instructions, 4000u); // 4 threads x 1000
}

TEST(ExecDrivenTest, MemoryRefsMatchWorkloadDensity)
{
    workload::UniformWorkload wl(2, 1 * MiB, 0.2);
    ExecutionDrivenSimulator sim(smallParams(), wl);
    sim.run(10000);
    const auto s = sim.stats();
    // refsPerInstruction = 0.35 -> period 2 -> one ref per 2 instrs.
    EXPECT_NEAR(static_cast<double>(s.memoryRefs) /
                    static_cast<double>(s.instructions),
                0.5, 0.01);
}

TEST(ExecDrivenTest, CacheHierarchyFiltersRefs)
{
    workload::UniformWorkload wl(2, 16 * KiB, 0.2); // fits L2
    ExecutionDrivenSimulator sim(smallParams(), wl);
    sim.run(20000);
    const auto s = sim.stats();
    EXPECT_LT(s.l2Misses, s.l1Misses);
    EXPECT_LT(s.l1Misses, s.memoryRefs);
    // After warmup nearly everything hits.
    EXPECT_LT(static_cast<double>(s.l2Misses) /
                  static_cast<double>(s.memoryRefs),
              0.05);
}

TEST(ExecDrivenTest, SharedCacheSeesL2Misses)
{
    workload::UniformWorkload wl(2, 8 * MiB, 0.2); // misses everywhere
    ExecutionDrivenSimulator sim(smallParams(), wl);
    sim.run(20000);
    const auto s = sim.stats();
    EXPECT_EQ(s.shared.accesses, s.l2Misses);
    EXPECT_GT(s.shared.accesses, 100u);
}

TEST(ExecDrivenTest, SimulatedCyclesGrowWithMisses)
{
    workload::UniformWorkload hot(2, 8 * KiB, 0.2);
    workload::UniformWorkload cold(2, 8 * MiB, 0.2);
    ExecutionDrivenSimulator fast(smallParams(), hot);
    ExecutionDrivenSimulator slow(smallParams(), cold);
    fast.run(20000);
    slow.run(20000);
    EXPECT_GT(slow.stats().simulatedCycles,
              fast.stats().simulatedCycles);
}

TEST(ExecDrivenTest, RejectsBadRefsPerInstruction)
{
    class BadWorkload : public workload::Workload
    {
      public:
        workload::MemRef next(unsigned) override { return {}; }
        unsigned threads() const override { return 1; }
        std::uint64_t footprintBytes() const override { return 1024; }
        const std::string &name() const override { return name_; }
        double refsPerInstruction() const override { return 0.0; }

      private:
        std::string name_ = "bad";
    };

    BadWorkload wl;
    EXPECT_THROW(ExecutionDrivenSimulator sim(smallParams(), wl),
                 FatalError);
}

} // namespace
} // namespace memories::sim
