#include "sim/projection.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::sim
{
namespace
{

TEST(ProjectionTest, MemoriesTimeMatchesTable3)
{
    // Table 3: 10 billion vectors at 100MHz / 20% = 500 seconds
    // ~= 8.33 minutes... the paper says 16.67 minutes, which is
    // 10e9 / (1e8 x 0.10): their 20%-utilization wording corresponds
    // to counting data+address tenure cycles. We reproduce the
    // published number with the effective 10% address-tenure rate.
    const double secs = memoriesSeconds(10e9, 1e8, 0.10);
    EXPECT_NEAR(secs / 60.0, 16.67, 0.05);
}

TEST(ProjectionTest, SmallTraceMatchesTable3Milliseconds)
{
    // Table 3: 32768 vectors -> 3.28 ms at the same effective rate.
    const double secs = memoriesSeconds(32768, 1e8, 0.10);
    EXPECT_NEAR(secs * 1e3, 3.28, 0.02);
}

TEST(ProjectionTest, SimulatorTimeScalesLinearly)
{
    const double t1 = simulatorSeconds(1e6, 30.0);
    const double t2 = simulatorSeconds(2e6, 30.0);
    EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
    EXPECT_DOUBLE_EQ(t1, 0.03);
}

TEST(ProjectionTest, RejectsBadRates)
{
    EXPECT_THROW(memoriesSeconds(1e6, 0.0, 0.2), FatalError);
    EXPECT_THROW(memoriesSeconds(1e6, 1e8, 0.0), FatalError);
    EXPECT_THROW(memoriesSeconds(1e6, 1e8, 1.5), FatalError);
}

TEST(ProjectionTest, ScaleToPaperHostSlowsDown)
{
    // A 3GHz machine is ~22.5x the paper's 133MHz simulation host.
    EXPECT_NEAR(scaleToPaperHost(10.0, 3.0, 133.0), 225.56, 0.1);
}

TEST(ProjectionTest, HumanTimeRenders)
{
    EXPECT_NE(humanTime(3.28e-3).find("ms"), std::string::npos);
    EXPECT_NE(humanTime(1000.5).find("min"), std::string::npos);
    EXPECT_NE(humanTime(260000.0).find("days"), std::string::npos);
}

} // namespace
} // namespace memories::sim
