#include "ies/analysis.hh"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
cacheOf(std::uint64_t mb)
{
    return cache::CacheConfig{mb * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
readTxn(Addr addr, CpuId cpu = 0)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = bus::BusOp::Read;
    t.cpu = cpu;
    return t;
}

TEST(AnalysisTest, MissRatioCurveSortsBySize)
{
    bus::Bus6xx bus;
    MemoriesBoard board(
        makeMultiConfigBoard({cacheOf(64), cacheOf(2), cacheOf(16)}, 8));
    board.plugInto(bus);
    bus.issue(readTxn(0x1000));
    board.drainAll();

    const auto curve = missRatioCurve(board);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve[0].sizeBytes, 2 * MiB);
    EXPECT_EQ(curve[1].sizeBytes, 16 * MiB);
    EXPECT_EQ(curve[2].sizeBytes, 64 * MiB);
    for (const auto &p : curve) {
        EXPECT_EQ(p.refs, 1u);
        EXPECT_EQ(p.misses, 1u);
        EXPECT_DOUBLE_EQ(p.missRatio, 1.0);
    }
}

TEST(AnalysisTest, BoardReportCaptures)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, cacheOf(2)));
    board.plugInto(bus);
    bus.issue(readTxn(0x1000));
    bus.tick(1000);
    bus.issue(readTxn(0x1000));
    board.drainAll();

    const auto report = BoardReport::capture(board);
    EXPECT_EQ(report.memoryTenures, 2u);
    EXPECT_EQ(report.committed, 2u);
    EXPECT_EQ(report.retriesPosted, 0u);
    ASSERT_EQ(report.nodes.size(), 1u);
    EXPECT_EQ(report.nodes[0].localHits, 1u);
}

TEST(AnalysisTest, CsvHasHeaderAndRows)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(2, 4, cacheOf(2)));
    board.plugInto(bus);
    bus.issue(readTxn(0x1000));
    board.drainAll();

    const auto csv = BoardReport::capture(board).toCsv();
    EXPECT_NE(csv.find("node,refs,hits,misses"), std::string::npos);
    // Header + 2 node rows = 3 lines.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(AnalysisTest, TextReportMentionsNodes)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, cacheOf(2)));
    board.plugInto(bus);
    const auto text = BoardReport::capture(board).toText();
    EXPECT_NE(text.find("miss-ratio"), std::string::npos);
}

TEST(AnalysisTest, CountersToCsv)
{
    CounterBank bank;
    bank.bump(bank.add("a.b"), 7);
    const auto csv = countersToCsv(bank);
    EXPECT_NE(csv.find("counter,value"), std::string::npos);
    EXPECT_NE(csv.find("a.b,7"), std::string::npos);
}

TEST(AnalysisTest, L3SpeedupEstimateMatchesCaseStudy3)
{
    // Paper: "performance improves from 2-25% for these applications".
    // A workload spending 30% of cycles in L2 misses with a 60% L3 hit
    // ratio lands inside that band.
    const double gain = l3SpeedupEstimate(0.30, 0.60);
    EXPECT_GT(gain, 0.02);
    EXPECT_LT(gain, 0.25);
}

TEST(AnalysisTest, L3SpeedupBoundsChecked)
{
    EXPECT_THROW(l3SpeedupEstimate(1.5, 0.5), FatalError);
    EXPECT_THROW(l3SpeedupEstimate(0.5, -0.1), FatalError);
}

TEST(AnalysisTest, NoL3HitsNoGain)
{
    EXPECT_DOUBLE_EQ(l3SpeedupEstimate(0.4, 0.0), 0.0);
}

} // namespace
} // namespace memories::ies
