/**
 * @file
 * Fault injection and board health under the sharded batch path.
 *
 * The coordinator owns every fault and health hook (PR 4 semantics):
 * stream faults fire at admission, commit faults at commit, retry
 * storms walk the degradation ladder, and a pending tag flip forces
 * retirement emulation back inline until its parity scrub lands. None
 * of that may produce a single byte of difference against the serial
 * path — including the anomaly stream and the flight-recorder ring —
 * and re-running the same scenario must reproduce it exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/faultplan.hh"
#include "fault/injector.hh"
#include "ies/board.hh"
#include "oracle/stimulus.hh"
#include "trace/chrometrace.hh"
#include "trace/lifecycle.hh"

namespace memories::ies
{
namespace
{

struct RunResult
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>> dirs;
    std::uint64_t bufferRetired = 0;
    std::size_t bufferSize = 0;
    std::string chromeTrace;
    std::uint64_t anomalies = 0;
    fault::HealthState finalHealth = fault::HealthState::Healthy;
    std::uint64_t parityScrubs = 0;
};

std::uint64_t
counterValue(const RunResult &r, const std::string &name)
{
    for (const auto &[n, v] : r.counters) {
        if (n == name)
            return v;
    }
    ADD_FAILURE() << "no counter named " << name;
    return 0;
}

/** Tiny pressured board so overflow/health paths actually fire. */
BoardConfig
pressuredConfig(bool health_on)
{
    BoardConfig cfg = makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    cfg.bufferEntries = 24;
    cfg.sdramThroughputPercent = 12;
    if (health_on) {
        cfg.health.enabled = true;
        cfg.health.degradeOccupancyPercent = 60;
        cfg.health.degradeWindow = 16;
        cfg.health.recoverWindow = 256;
        cfg.health.quarantineStorms = 4;
    }
    return cfg;
}

fault::FaultPlan
mixedPlan()
{
    fault::FaultPlan plan;
    auto add = [&plan](fault::FaultKind kind, auto setup) {
        fault::FaultSpec spec;
        spec.kind = kind;
        setup(spec);
        plan.faults.push_back(spec);
    };
    add(fault::FaultKind::TagFlip, [](fault::FaultSpec &s) {
        s.probability = 0.01;
        s.bit = 1;
        s.node = 0;
    });
    add(fault::FaultKind::TagFlip, [](fault::FaultSpec &s) {
        s.atTenure = 200;
        s.bit = 2;
        s.node = 1;
    });
    add(fault::FaultKind::SlotLoss, [](fault::FaultSpec &s) {
        s.probability = 0.005;
        s.slots = 12;
        s.cycles = 400;
    });
    add(fault::FaultKind::RetirementStall, [](fault::FaultSpec &s) {
        s.probability = 0.005;
        s.cycles = 300;
    });
    add(fault::FaultKind::DropReply,
        [](fault::FaultSpec &s) { s.probability = 0.01; });
    add(fault::FaultKind::AddressFlip, [](fault::FaultSpec &s) {
        s.probability = 0.01;
        s.bit = 9;
    });
    return plan;
}

std::vector<bus::BusTransaction>
burstyStream(std::uint64_t seed, std::size_t count)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = 8;
    p.pBurst = 0.7; // keep the tiny buffer under pressure
    p.maxGap = 4;
    return oracle::StimulusGen(p).generate();
}

/**
 * Calm pacing and a tight working set: nearly every tenure commits
 * and the directories stay warm, so commit-time tag flips land on
 * live lines and later touches scrub them.
 */
std::vector<bus::BusTransaction>
calmLocalStream(std::uint64_t seed, std::size_t count)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = 8;
    p.footprintLines = 1u << 9;
    p.sharedLines = 1u << 8;
    p.shareFraction = 0.5;
    return oracle::StimulusGen(p).generate();
}

/**
 * One full scenario: faulted, health-monitored run of @p txns.
 * @p shards == 0 means the serial feedCommitted path; otherwise the
 * stream goes through feedBatch in chunks of 256 at that shard count.
 */
RunResult
runScenario(const BoardConfig &cfg, const fault::FaultPlan &plan,
            const std::vector<bus::BusTransaction> &txns,
            std::size_t shards, std::uint64_t seed = 7)
{
    MemoriesBoard board(cfg);
    trace::FlightRecorder recorder(1 << 14);
    board.attachFlightRecorder(recorder);
    fault::FaultInjector injector(plan, seed);
    board.attachFaultInjector(injector);
    if (shards > 1)
        board.enableSharding(shards);

    if (shards == 0) {
        for (const auto &t : txns)
            board.feedCommitted(t);
    } else {
        constexpr std::size_t chunk = 256;
        for (std::size_t at = 0; at < txns.size(); at += chunk)
            board.feedBatch(&txns[at],
                            std::min(chunk, txns.size() - at));
    }

    RunResult r;
    board.globalCounters().snapshot([&](const CounterSample &s) {
        r.counters.emplace_back(s.name, s.value);
    });
    for (std::size_t i = 0; i < board.numNodes(); ++i) {
        board.node(i).counters().snapshot([&](const CounterSample &s) {
            r.counters.emplace_back(s.name, s.value);
        });
        r.dirs.push_back(board.node(i).directorySnapshot());
        r.parityScrubs += board.node(i).parityScrubs();
    }
    r.bufferRetired = board.bufferRetired();
    r.bufferSize = board.bufferSize();
    r.chromeTrace =
        trace::chromeTraceToString(recorder.snapshot(), &recorder);
    r.anomalies = recorder.anomalies();
    r.finalHealth = board.healthState();
    board.detachFaultInjector();
    return r;
}

void
expectSameRun(const RunResult &serial, const RunResult &sharded,
              const std::string &what)
{
    ASSERT_EQ(serial.counters.size(), sharded.counters.size()) << what;
    for (std::size_t i = 0; i < serial.counters.size(); ++i) {
        EXPECT_EQ(serial.counters[i].second, sharded.counters[i].second)
            << what << ": counter " << serial.counters[i].first;
    }
    EXPECT_EQ(serial.dirs, sharded.dirs) << what;
    EXPECT_EQ(serial.bufferRetired, sharded.bufferRetired) << what;
    EXPECT_EQ(serial.bufferSize, sharded.bufferSize) << what;
    EXPECT_EQ(serial.chromeTrace, sharded.chromeTrace) << what;
    EXPECT_EQ(serial.anomalies, sharded.anomalies) << what;
    EXPECT_EQ(serial.finalHealth, sharded.finalHealth) << what;
}

TEST(ShardFaultTest, FaultedRunMatchesSerialAtEveryShardCount)
{
    // Roomy default buffer so commits actually land: tag flips then
    // corrupt live lines and the parity scrubber has work to do.
    const BoardConfig cfg = makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    const fault::FaultPlan plan = mixedPlan();
    const auto txns = calmLocalStream(101, 6000);
    const RunResult serial = runScenario(cfg, plan, txns, 0);

    // The scenario must actually exercise the hard paths, or this
    // test proves nothing.
    EXPECT_GT(serial.parityScrubs, 0u) << "no tag flip was scrubbed";
    EXPECT_GT(serial.anomalies, 0u) << "no anomaly fired";

    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
        const RunResult sharded = runScenario(cfg, plan, txns, shards);
        expectSameRun(serial, sharded,
                      "faulted run @" + std::to_string(shards));
    }
}

TEST(ShardFaultTest, FaultedHealthRunMatchesSerialAtEveryShardCount)
{
    // Pressured board with health monitoring on top of the full fault
    // plan: the ugliest interaction the batch path has to reproduce.
    const BoardConfig cfg = pressuredConfig(true);
    const fault::FaultPlan plan = mixedPlan();
    const auto txns = burstyStream(101, 6000);
    const RunResult serial = runScenario(cfg, plan, txns, 0);
    EXPECT_GT(serial.anomalies, 0u) << "no anomaly fired";

    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
        const RunResult sharded = runScenario(cfg, plan, txns, shards);
        expectSameRun(serial, sharded,
                      "faulted health run @" + std::to_string(shards));
    }
}

TEST(ShardFaultTest, RetryStormLadderMatchesSerial)
{
    // No injector needed: the tiny buffer plus bursty traffic drives
    // overflow storms through the health ladder on its own.
    const BoardConfig cfg = pressuredConfig(true);
    const auto txns = burstyStream(211, 8000);
    const RunResult serial =
        runScenario(cfg, fault::FaultPlan{}, txns, 0);
    EXPECT_GT(counterValue(serial, "global.health.transitions"), 0u)
        << "stream never pressured the board";

    for (std::size_t shards : {2u, 4u}) {
        const RunResult sharded =
            runScenario(cfg, fault::FaultPlan{}, txns, shards);
        expectSameRun(serial, sharded,
                      "retry storm @" + std::to_string(shards));
    }
}

TEST(ShardFaultTest, TenureAccountingConserved)
{
    const BoardConfig cfg = pressuredConfig(true);
    const fault::FaultPlan plan = mixedPlan();
    const auto txns = burstyStream(307, 6000);
    const RunResult r = runScenario(cfg, plan, txns, 4);

    // Every committed tenure is either retired by the SDRAM side,
    // still buffered, or was lost in flight to a commit-time fault.
    const std::uint64_t committed =
        counterValue(r, "global.tenures.committed");
    const std::uint64_t lost =
        counterValue(r, "global.tenures.lost_inflight");
    EXPECT_EQ(committed, r.bufferRetired + r.bufferSize + lost);
}

TEST(ShardFaultTest, RunTwiceIsByteIdentical)
{
    const BoardConfig cfg = pressuredConfig(true);
    const fault::FaultPlan plan = mixedPlan();
    const auto txns = burstyStream(401, 5000);
    const RunResult first = runScenario(cfg, plan, txns, 4);
    const RunResult second = runScenario(cfg, plan, txns, 4);
    expectSameRun(first, second, "second identical run");
}

TEST(ShardFaultTest, ResyncFromHealthyMatchesSerial)
{
    const BoardConfig cfg = pressuredConfig(true);
    const auto txns = burstyStream(503, 8000);
    const std::size_t half = txns.size() / 2;

    auto run = [&](std::size_t shards) {
        MemoriesBoard board(cfg);
        MemoriesBoard healthy(cfg);
        if (shards > 0) {
            board.enableSharding(shards);
            healthy.enableSharding(shards);
        }
        auto feed = [shards](MemoriesBoard &b,
                             const bus::BusTransaction *t,
                             std::size_t n) {
            if (shards == 0) {
                for (std::size_t i = 0; i < n; ++i)
                    b.feedCommitted(t[i]);
            } else {
                b.feedBatch(t, n);
            }
        };
        // Only the victim sees the pressure; the healthy twin idles
        // through a calm prefix so its directories are warm.
        feed(healthy, txns.data(), half / 4);
        feed(board, txns.data(), half);
        if (board.healthState() == fault::HealthState::Quarantined)
            board.resyncFrom(healthy);
        feed(board, txns.data() + half, txns.size() - half);

        std::vector<std::uint64_t> values;
        board.globalCounters().snapshot(
            [&](const CounterSample &s) { values.push_back(s.value); });
        for (std::size_t i = 0; i < board.numNodes(); ++i) {
            board.node(i).counters().snapshot([&](const CounterSample &s) {
                values.push_back(s.value);
            });
        }
        std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>>
            dirs;
        for (std::size_t i = 0; i < board.numNodes(); ++i)
            dirs.push_back(board.node(i).directorySnapshot());
        return std::make_pair(values, dirs);
    };

    const auto serial = run(0);
    for (std::size_t shards : {2u, 4u}) {
        const auto sharded = run(shards);
        EXPECT_EQ(serial.first, sharded.first)
            << "resync counters @" << shards;
        EXPECT_EQ(serial.second, sharded.second)
            << "resync directories @" << shards;
    }
}

} // namespace
} // namespace memories::ies
