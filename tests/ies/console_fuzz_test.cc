/**
 * @file
 * Console robustness: arbitrary command strings must come back as
 * error text, never as crashes or exceptions escaping execute().
 */

#include "ies/console.hh"

#include <gtest/gtest.h>

#include "campaign/console.hh"
#include "common/random.hh"

namespace memories::ies
{
namespace
{

TEST(ConsoleFuzzTest, GarbageCommandsNeverEscape)
{
    bus::Bus6xx bus;
    Console console(bus);
    campaign::registerConsoleCommands(console);

    const char *garbage[] = {
        "",
        "   ",
        "node",
        "node x cache",
        "node 0 cache huge 4 128B",
        "node 99999999 cache 2MB 4 128B",
        "node 0 cpus",
        "node 0 cpus ,,,",
        "node 0 protocol",
        "node 0 protocol-file",
        "buffer",
        "buffer -1",
        "throughput 0",
        "capture",
        "init init init",
        "stats now please",
        "dump-trace",
        "save-state",
        "load-state /definitely/not/there",
        "ckpt",
        "ckpt save",
        "ckpt save /no/such/dir/state.ckpt",
        "ckpt load /definitely/not/there.ckpt",
        "ckpt info /definitely/not/there.ckpt",
        "ckpt info",
        "ckpt frobnicate state.ckpt",
        "script",
        "export-csv",
        "\t\tnode\t0",
        "unknown-command with args",
        "fault",
        "fault load",
        "fault load /definitely/not/there.plan",
        "fault arm",
        "fault arm not-a-seed",
        "fault arm 1 2 3",
        "fault status extra",
        "fault disarm",
        "fault gremlins",
        "health on off",
        "health degrade-window",
        "health degrade-window banana",
        "health sampling-shift -1",
        "health quarantine-storms 0 0",
        "health mystery-knob 7",
        "prof",
        "prof start",
        "prof start not-a-count",
        "prof start 0",
        "prof show extra-token",
        "prof dump",
        "prof dump /no/such/dir/stacks.folded",
        "prof chrome",
        "prof chrome /no/such/dir/trace.json",
        "prof stop stop stop",
        "prof frobnicate",
        "campaign",
        "campaign start",
        "campaign start somedir notanumber 500",
        "campaign resume /definitely/not/there",
        "campaign status /definitely/not/there",
        "campaign status",
        "campaign frobnicate x",
    };
    for (const char *cmd : garbage)
        EXPECT_NO_THROW(console.execute(cmd)) << "command: " << cmd;
}

TEST(ConsoleFuzzTest, RandomTokenSoupIsHandled)
{
    bus::Bus6xx bus;
    Console console(bus);
    Rng rng(31);
    const char *words[] = {"node",  "0",      "cache", "2MB",   "4",
                           "128B",  "cpus",   "init",  "stats", "LRU",
                           "->",    "*",      "0x10",  "-5",    "reset",
                           "fault", "health", "arm",   "load",  "on",
                           "ckpt",  "info",   "prof",  "start", "dump"};
    for (int i = 0; i < 500; ++i) {
        std::string cmd;
        const auto len = 1 + rng.nextBounded(6);
        for (std::uint64_t w = 0; w < len; ++w) {
            cmd += words[rng.nextBounded(std::size(words))];
            cmd += ' ';
        }
        EXPECT_NO_THROW(console.execute(cmd)) << "command: " << cmd;
    }
}

TEST(ConsoleFuzzTest, ValidSessionStillWorksAfterFuzzing)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("buffer garbage");
    console.execute("node 0 cache banana");
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    EXPECT_NE(console.execute("init").find("initialized"),
              std::string::npos);
}

} // namespace
} // namespace memories::ies
