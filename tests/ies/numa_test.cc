#include "ies/numa.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::ies
{
namespace
{

NumaConfig
smallNuma()
{
    NumaConfig cfg;
    cfg.numNodes = 4;
    cfg.cpusPerNode = 2;
    cfg.l3 = cache::CacheConfig{2 * MiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.sparseEntries = 1 << 10;
    cfg.sparseAssoc = 4;
    cfg.homeGranularityBytes = 4096;
    return cfg;
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    return t;
}

TEST(NumaConfigTest, Validation)
{
    auto cfg = smallNuma();
    cfg.numNodes = 5;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallNuma();
    cfg.sparseEntries = 1000; // not a power of two
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallNuma();
    cfg.homeGranularityBytes = 100;
    EXPECT_THROW(cfg.validate(), FatalError);

    EXPECT_NO_THROW(smallNuma().validate());
}

TEST(NumaConfigTest, SdramBudgetShared)
{
    auto cfg = smallNuma();
    cfg.l3 = cache::CacheConfig{8 * GiB, 8, 128,
                                cache::ReplacementPolicy::LRU};
    // The 8GB L3 directory alone eats the whole 256MB budget: adding
    // any sparse directory must overflow it.
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(NumaTest, HomePartitioningInterleaves)
{
    NumaEmulator numa(smallNuma());
    EXPECT_EQ(numa.homeOf(0), 0u);
    EXPECT_EQ(numa.homeOf(4096), 1u);
    EXPECT_EQ(numa.homeOf(2 * 4096), 2u);
    EXPECT_EQ(numa.homeOf(3 * 4096), 3u);
    EXPECT_EQ(numa.homeOf(4 * 4096), 0u);
}

TEST(NumaTest, CpuToNodeMapping)
{
    NumaEmulator numa(smallNuma());
    EXPECT_EQ(numa.nodeOfCpu(0), 0u);
    EXPECT_EQ(numa.nodeOfCpu(1), 0u);
    EXPECT_EQ(numa.nodeOfCpu(2), 1u);
    EXPECT_EQ(numa.nodeOfCpu(7), 3u);
}

TEST(NumaTest, ClassifiesLocalAndRemote)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);

    bus.issue(txn(0, bus::BusOp::Read, 0));      // home 0, node 0: local
    bus.issue(txn(4096, bus::BusOp::Read, 0));   // home 1, node 0: remote
    const auto s = numa.stats();
    EXPECT_EQ(s.localRequests, 1u);
    EXPECT_EQ(s.remoteRequests, 1u);
}

TEST(NumaTest, L3CachesRepeatAccesses)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);

    bus.issue(txn(0x2000, bus::BusOp::Read, 0));
    bus.issue(txn(0x2000, bus::BusOp::Read, 1)); // same node, same line
    const auto s = numa.stats();
    EXPECT_EQ(s.l3Misses, 1u);
    EXPECT_EQ(s.l3Hits, 1u);
}

TEST(NumaTest, SparseDirectoryTracksPresence)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);

    bus.issue(txn(0x2000, bus::BusOp::Read, 0)); // node 0
    bus.issue(txn(0x2000, bus::BusOp::Read, 2)); // node 1
    EXPECT_EQ(numa.presenceOf(0x2000), 0b0011);
}

TEST(NumaTest, WriteInvalidatesOtherSharers)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);

    bus.issue(txn(0x2000, bus::BusOp::Read, 0));  // node 0 shares
    bus.issue(txn(0x2000, bus::BusOp::Read, 2));  // node 1 shares
    bus.issue(txn(0x2000, bus::BusOp::Rwitm, 4)); // node 2 writes
    EXPECT_EQ(numa.presenceOf(0x2000), 0b0100);
    EXPECT_FALSE(numa.l3Resident(0, 0x2000));
    EXPECT_FALSE(numa.l3Resident(1, 0x2000));
    EXPECT_TRUE(numa.l3Resident(2, 0x2000));
    EXPECT_EQ(numa.stats().writeInvalidations, 2u);
}

TEST(NumaTest, SparseEvictionInvalidatesL3s)
{
    auto cfg = smallNuma();
    cfg.sparseEntries = 4; // tiny sparse directory: 1 set at 4-way
    cfg.sparseAssoc = 4;
    NumaEmulator numa(cfg);
    bus::Bus6xx bus;
    numa.plugInto(bus);

    // Five distinct lines with home 0 (stride = numNodes*granularity).
    const Addr stride = 4 * 4096;
    for (int i = 0; i < 5; ++i)
        bus.issue(txn(i * stride, bus::BusOp::Read, 0));

    const auto s = numa.stats();
    EXPECT_GE(s.sparseEvictions, 1u);
    EXPECT_GE(s.invalidationsSent, 1u);
    // The evicted line is gone from node 0's L3 despite fitting there.
    EXPECT_FALSE(numa.l3Resident(0, 0));
}

TEST(NumaTest, RemoteCacheCatchesRemoteReuse)
{
    auto cfg = smallNuma();
    cfg.remoteCacheEnabled = true;
    cfg.remoteCache = cache::CacheConfig{2 * MiB, 4, 128,
                                         cache::ReplacementPolicy::LRU};
    // Shrink the L3 so it thrashes while the remote cache retains.
    cfg.l3 = cache::CacheConfig{2 * MiB, 1, 128,
                                cache::ReplacementPolicy::LRU};
    NumaEmulator numa(cfg);
    bus::Bus6xx bus;
    numa.plugInto(bus);

    // Remote line (home 1) accessed by node 0, evicted from L3 by a
    // conflicting line, then re-accessed: the remote cache catches it.
    const Addr remote_line = 4096;           // home 1
    const Addr conflicting = 4096 + 2 * MiB; // same L3 set (DM), home 1
    bus.issue(txn(remote_line, bus::BusOp::Read, 0));
    bus.issue(txn(conflicting, bus::BusOp::Read, 0));
    bus.issue(txn(remote_line, bus::BusOp::Read, 0));
    EXPECT_GE(numa.stats().remoteCacheHits, 1u);
}

TEST(NumaTest, IgnoresUnmappedCpusAndNonMemoryOps)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);
    bus.issue(txn(0x1000, bus::BusOp::Read, 12));  // beyond 4 nodes
    bus.issue(txn(0x1000, bus::BusOp::IoRead, 0)); // filtered
    const auto s = numa.stats();
    EXPECT_EQ(s.localRequests + s.remoteRequests, 0u);
}

TEST(NumaTest, ClearResetsEverything)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);
    bus.issue(txn(0x2000, bus::BusOp::Read, 0));
    numa.clear();
    EXPECT_EQ(numa.stats().l3Misses, 0u);
    EXPECT_FALSE(numa.l3Resident(0, 0x2000));
    EXPECT_EQ(numa.presenceOf(0x2000), 0u);
}

TEST(NumaTest, PassiveOnTheBus)
{
    NumaEmulator numa(smallNuma());
    bus::Bus6xx bus;
    numa.plugInto(bus);
    EXPECT_EQ(bus.issue(txn(0x1000, bus::BusOp::Read, 0)),
              bus::SnoopResponse::None);
}

} // namespace
} // namespace memories::ies
