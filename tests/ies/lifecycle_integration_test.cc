/**
 * @file
 * End-to-end lifecycle-tracing tests: a recorder attached to the bus
 * and board must capture every stage of a tenure's life, an anomaly
 * (forced transaction-buffer overflow) must trigger the auto-dump hook
 * with the full history leading up to it, and per-board fleet
 * recorders must produce diffable (equivalent) streams for identical
 * configurations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "bus/bus6xx.hh"
#include "ies/board.hh"
#include "ies/fanout.hh"
#include "trace/lifecycle.hh"
#include "trace/tracefile.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    return t;
}

bool
hasKind(const std::vector<trace::LifecycleEvent> &events,
        trace::EventKind kind)
{
    return std::any_of(events.begin(), events.end(),
                       [kind](const trace::LifecycleEvent &ev) {
                           return ev.kind == kind;
                       });
}

TEST(LifecycleIntegrationTest, BusAndBoardEmitFullTenureLifecycle)
{
    trace::FlightRecorder recorder(1 << 10);
    bus::Bus6xx bus;
    bus.attachFlightRecorder(recorder);
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.plugInto(bus);
    board.attachFlightRecorder(recorder, 0);

    bus.issue(txn(0x1000, bus::BusOp::Read, 0)); // miss + fill
    bus.tick(1000);
    bus.issue(txn(0x1000, bus::BusOp::Read, 1)); // hit
    board.drainAll();

    const auto events = recorder.snapshot();
    EXPECT_TRUE(hasKind(events, trace::EventKind::BusIssue));
    EXPECT_TRUE(hasKind(events, trace::EventKind::SnoopReply));
    EXPECT_TRUE(hasKind(events, trace::EventKind::Combine));
    EXPECT_TRUE(hasKind(events, trace::EventKind::BoardCommit));
    EXPECT_TRUE(hasKind(events, trace::EventKind::CacheMiss));
    EXPECT_TRUE(hasKind(events, trace::EventKind::CacheHit));
    EXPECT_TRUE(hasKind(events, trace::EventKind::StateTransition));
    EXPECT_TRUE(hasKind(events, trace::EventKind::Retire));

    // Both tenures got distinct 1-based trace ids, and every
    // tenure-bound event refers to one of them.
    for (const auto &ev : events) {
        if (ev.kind == trace::EventKind::BusIssue) {
            EXPECT_TRUE(ev.traceId == 1u || ev.traceId == 2u);
        }
        if (ev.traceId != 0) {
            EXPECT_LE(ev.traceId, 2u);
        }
    }
}

TEST(LifecycleIntegrationTest, DetachedComponentsRecordNothing)
{
    trace::FlightRecorder recorder(1 << 10);
    bus::Bus6xx bus;
    bus.attachFlightRecorder(recorder);
    bus.detachFlightRecorder();
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.plugInto(bus);

    bus.issue(txn(0x1000, bus::BusOp::Read, 0));
    board.drainAll();
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(LifecycleIntegrationTest, ForcedOverflowAutoDumpsFullLifecycle)
{
    // A 2-entry transaction buffer with back-to-back issues (no bus
    // cycles for SDRAM pacing to drain) must overflow; the anomaly
    // hook then dumps the ring — the flight-recorder workflow the
    // console's `trace autodump` wires up.
    const std::string dumpPath =
        ::testing::TempDir() + "lifecycle_autodump_test.iesspan";
    std::remove(dumpPath.c_str());

    trace::FlightRecorder recorder(1 << 10);
    std::uint64_t dumps = 0;
    recorder.onAnomaly([&](const trace::FlightRecorder &rec,
                           const trace::LifecycleEvent &) {
        trace::LifecycleWriter writer(dumpPath);
        for (const auto &ev : rec.snapshot())
            writer.append(ev);
        writer.flush();
        ++dumps;
    });

    bus::Bus6xx bus;
    bus.attachFlightRecorder(recorder);
    BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    cfg.bufferEntries = 2;
    MemoriesBoard board(cfg);
    board.plugInto(bus);
    board.attachFlightRecorder(recorder, 0);

    for (int i = 0; i < 8; ++i)
        bus.issue(txn(0x1000u + 128u * i, bus::BusOp::Read, 0));

    EXPECT_GE(recorder.anomalies(), 1u);
    EXPECT_GE(dumps, 1u);

    trace::LifecycleReader reader(dumpPath);
    const auto dumped = reader.readAll();
    EXPECT_TRUE(hasKind(dumped, trace::EventKind::BusIssue));
    EXPECT_TRUE(hasKind(dumped, trace::EventKind::BoardCommit));
    EXPECT_TRUE(hasKind(dumped, trace::EventKind::BufferOverflow));
    EXPECT_TRUE(hasKind(dumped, trace::EventKind::Anomaly));
    std::remove(dumpPath.c_str());
}

TEST(LifecycleIntegrationTest, FleetRecordersProduceEquivalentStreams)
{
    // Two identical fleet boards with one recorder each: the streams
    // must be equivalent under firstDivergence (which ignores the
    // board-id tag), making configuration sweeps diffable.
    trace::FlightRecorder recA(1 << 12), recB(1 << 12);
    ExperimentFleet fleet;
    fleet.addExperiment(makeUniformBoard(2, 4, smallCache()), 99, "a");
    fleet.addExperiment(makeUniformBoard(2, 4, smallCache()), 99, "b");
    fleet.attachFlightRecorder(0, recA);
    fleet.attachFlightRecorder(1, recB);
    fleet.start(2);
    for (int i = 0; i < 200; ++i) {
        auto t = txn(0x1000u + 128u * (i % 64),
                     i % 3 ? bus::BusOp::Read : bus::BusOp::Rwitm,
                     static_cast<CpuId>(i % 8));
        t.cycle = 20u * i;
        t.traceId = static_cast<std::uint32_t>(i + 1);
        fleet.publish(t);
    }
    fleet.finish();

    const auto a = recA.snapshot();
    const auto b = recB.snapshot();
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(trace::firstDivergence(a, b), SIZE_MAX)
        << "identical configurations must record identical lifecycles";
}

} // namespace
} // namespace memories::ies
