#include "ies/board.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    return t;
}

TEST(BoardConfigTest, ValidatesNodeCount)
{
    BoardConfig cfg;
    EXPECT_THROW(cfg.validate(), FatalError); // no nodes

    cfg = makeUniformBoard(9, 1, smallCache());
    EXPECT_THROW(cfg.validate(), FatalError); // > 2 boards
}

TEST(BoardConfigTest, MoreThanFourNodesWarnsButWorks)
{
    setLoggingQuiet(true);
    auto cfg = makeUniformBoard(8, 1, smallCache());
    EXPECT_NO_THROW(cfg.validate());
    setLoggingQuiet(false);
}

TEST(BoardConfigTest, RejectsOverSizedDirectory)
{
    // 8GB with 128B lines is exactly the budget; 8GB with 128B lines
    // on every node is fine, but 8GB with 64B lines is not even a
    // legal board geometry - use 16KB lines at 8GB (tiny directory)
    // versus an illegal large-directory config instead.
    BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    cfg.nodes[0].cache =
        cache::CacheConfig{8 * GiB, 8, 128, cache::ReplacementPolicy::LRU};
    EXPECT_NO_THROW(cfg.validate()); // exactly 256MB of directory
}

TEST(BoardConfigTest, RejectsDuplicateCpuInMachine)
{
    BoardConfig cfg = makeUniformBoard(2, 2, smallCache());
    cfg.nodes[1].cpus = {1, 4}; // CPU 1 already in node 0
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(BoardConfigTest, SameCpuAcrossMachinesIsLegal)
{
    // Figure 4: different target machines emulate the same CPUs.
    auto cfg = makeMultiConfigBoard({smallCache(), smallCache()}, 4);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(BoardConfigTest, RejectsNineCpusPerNode)
{
    BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    cfg.nodes[0].cpus.push_back(8); // ninth CPU
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(BoardTest, EmulatesViaBusSnooping)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.plugInto(bus);

    bus.issue(txn(0x1000, bus::BusOp::Read, 0));
    bus.tick(1000);
    bus.issue(txn(0x1000, bus::BusOp::Read, 1));
    board.drainAll();

    const auto s = board.node(0).stats();
    EXPECT_EQ(s.localRefs, 2u);
    EXPECT_EQ(s.localMisses, 1u);
    EXPECT_EQ(s.localHits, 1u);
}

TEST(BoardTest, FiltersNonMemoryOps)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.plugInto(bus);

    bus.issue(txn(0x1000, bus::BusOp::IoRead, 0));
    bus.issue(txn(0x1000, bus::BusOp::Interrupt, 0));
    bus.issue(txn(0x1000, bus::BusOp::Sync, 0));
    board.drainAll();

    EXPECT_EQ(board.globalCounters().valueByName(
                  "global.tenures.filtered"), 3u);
    EXPECT_EQ(board.node(0).stats().localRefs, 0u);
}

TEST(BoardTest, MultiNodeInterventions)
{
    // Two nodes of one target machine: node 0's modified line answers
    // node 1's read with a modified intervention.
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(2, 4, smallCache()));
    board.plugInto(bus);

    bus.issue(txn(0x8000, bus::BusOp::Rwitm, 0)); // node 0 takes M
    bus.tick(1000);
    bus.issue(txn(0x8000, bus::BusOp::Read, 4));  // node 1 reads
    board.drainAll();

    const auto s1 = board.node(1).stats();
    EXPECT_EQ(s1.satisfiedByModIntervention, 1u);
    EXPECT_EQ(board.node(0).stats().suppliedModified, 1u);
    // MESI: the supplier is downgraded to Shared.
    EXPECT_EQ(board.node(0).probeState(0x8000),
              protocol::LineState::Shared);
}

TEST(BoardTest, MultiConfigNodesNeverInteract)
{
    // Figure 4 mode: the same traffic measured against two geometries;
    // the two nodes are alternative universes and must not snoop each
    // other.
    bus::Bus6xx bus;
    MemoriesBoard board(
        makeMultiConfigBoard({smallCache(), smallCache()}, 8));
    board.plugInto(bus);

    bus.issue(txn(0x8000, bus::BusOp::Rwitm, 0));
    bus.tick(1000);
    bus.issue(txn(0x8000, bus::BusOp::Read, 1));
    board.drainAll();

    for (std::size_t n = 0; n < 2; ++n) {
        const auto s = board.node(n).stats();
        EXPECT_EQ(s.localRefs, 2u) << "node " << n;
        EXPECT_EQ(s.satisfiedByModIntervention, 0u) << "node " << n;
        EXPECT_EQ(s.suppliedModified, 0u) << "node " << n;
    }
}

TEST(BoardTest, IdenticalConfigsSeeIdenticalStats)
{
    bus::Bus6xx bus;
    MemoriesBoard board(
        makeMultiConfigBoard({smallCache(), smallCache()}, 8));
    board.plugInto(bus);

    for (int i = 0; i < 2000; ++i) {
        bus.issue(txn((i % 64) * 4096, i % 3 == 0 ? bus::BusOp::Rwitm
                                                  : bus::BusOp::Read,
                      static_cast<CpuId>(i % 8)));
        bus.tick(4);
    }
    board.drainAll();

    const auto a = board.node(0).stats();
    const auto b = board.node(1).stats();
    EXPECT_EQ(a.localRefs, b.localRefs);
    EXPECT_EQ(a.localHits, b.localHits);
    EXPECT_EQ(a.localMisses, b.localMisses);
}

TEST(BoardTest, DroppedOnExternalRetry)
{
    // A tenure retried by another agent must not be emulated.
    class Retrier : public bus::BusSnooper
    {
      public:
        bus::SnoopResponse
        snoop(const bus::BusTransaction &) override
        {
            return bus::SnoopResponse::Retry;
        }
        std::string snooperName() const override { return "retrier"; }
    };

    bus::Bus6xx bus;
    Retrier retrier;
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    bus.attach(&retrier);
    board.plugInto(bus);

    bus.issue(txn(0x1000, bus::BusOp::Read, 0));
    board.drainAll();

    EXPECT_EQ(board.node(0).stats().localRefs, 0u);
    EXPECT_EQ(board.globalCounters().valueByName(
                  "global.tenures.dropped_retry"), 1u);
}

TEST(BoardTest, PostsRetryOnBufferOverflow)
{
    // A tiny buffer and a burst far above the SDRAM rate must trip
    // the board's only non-passive behaviour.
    BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    cfg.bufferEntries = 4;
    bus::Bus6xx bus;
    MemoriesBoard board(cfg);
    board.plugInto(bus);

    bus::SnoopResponse worst = bus::SnoopResponse::None;
    for (int i = 0; i < 64; ++i) {
        const auto resp = bus.issue(txn(0x1000u + 128u * i,
                                        bus::BusOp::Read, 0));
        worst = bus::combineSnoop(worst, resp);
    }
    EXPECT_EQ(worst, bus::SnoopResponse::Retry);
    EXPECT_GT(board.retriesPosted(), 0u);
}

TEST(BoardTest, NeverRetriesAtPaperUtilization)
{
    // Paper section 3.3: at 2-20% utilization the board never posted
    // a retry. One tenure per 5 cycles = 20%.
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(4, 2, smallCache()));
    board.plugInto(bus);

    for (int i = 0; i < 50'000; ++i) {
        bus.issue(txn((i % 4096) * 128, bus::BusOp::Read,
                      static_cast<CpuId>(i % 8)));
        bus.tick(4);
    }
    board.drainAll();
    EXPECT_EQ(board.retriesPosted(), 0u);
}

TEST(BoardTest, TraceCaptureRecordsCommittedTenures)
{
    BoardConfig cfg = makeUniformBoard(1, 8, smallCache());
    cfg.traceCapture = true;
    cfg.traceCaptureRecords = 1024;
    bus::Bus6xx bus;
    MemoriesBoard board(cfg);
    board.plugInto(bus);

    for (int i = 0; i < 10; ++i) {
        bus.issue(txn(0x1000u + 128u * i, bus::BusOp::Read, 0));
        bus.tick(10);
    }
    bus.issue(txn(0, bus::BusOp::IoRead, 0)); // filtered: not captured
    board.drainAll();

    ASSERT_NE(board.captureBuffer(), nullptr);
    EXPECT_EQ(board.captureBuffer()->size(), 10u);
}

TEST(BoardTest, ResetColdStartsDirectories)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.plugInto(bus);
    bus.issue(txn(0x1000, bus::BusOp::Read, 0));
    board.drainAll();
    EXPECT_EQ(board.node(0).directoryOccupancy(), 1u);
    board.reset();
    EXPECT_EQ(board.node(0).directoryOccupancy(), 0u);
    EXPECT_EQ(board.node(0).stats().localRefs, 0u);
}

TEST(BoardTest, DumpStatsMentionsEveryNode)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(2, 4, smallCache()));
    const auto dump = board.dumpStats();
    EXPECT_NE(dump.find("node 0"), std::string::npos);
    EXPECT_NE(dump.find("node 1"), std::string::npos);
    EXPECT_NE(dump.find("MESI"), std::string::npos);
}

TEST(BoardTest, UnpluggedBoardSeesNothing)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.plugInto(bus);
    board.unplug(bus);
    bus.issue(txn(0x1000, bus::BusOp::Read, 0));
    board.drainAll();
    EXPECT_EQ(board.node(0).stats().localRefs, 0u);
}

TEST(BoardTest, UnmappedCpuTrafficSnoopsAllNodes)
{
    // Traffic from bus masters outside any node (I/O bridges) still
    // invalidates emulated lines, like real coherent DMA.
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 4, smallCache()));
    board.plugInto(bus);

    bus.issue(txn(0x5000, bus::BusOp::Read, 0));
    bus.tick(1000);
    bus.issue(txn(0x5000, bus::BusOp::WriteKill, 12)); // unmapped CPU
    board.drainAll();

    EXPECT_EQ(board.node(0).probeState(0x5000),
              protocol::LineState::Invalid);
}

TEST(BoardConfigTest, ValidationErrorsEmptyForGoodConfig)
{
    EXPECT_TRUE(
        makeUniformBoard(2, 4, smallCache()).validationErrors().empty());
}

TEST(BoardConfigTest, ValidationErrorsCollectsEveryProblem)
{
    // One broken config, many independent problems: the collector must
    // report them all instead of unwinding at the first like validate().
    BoardConfig cfg = makeUniformBoard(2, 4, smallCache());
    cfg.bufferEntries = 0;                // problem 1
    cfg.sdramThroughputPercent = 101;     // problem 2
    cfg.nodes[0].cpus = {};               // problem 3
    cfg.nodes[1].cpus.push_back(20);      // problem 4: beyond host bus

    const auto errors = cfg.validationErrors();
    ASSERT_EQ(errors.size(), 4u);

    auto contains = [&errors](const std::string &needle) {
        for (const std::string &e : errors)
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(contains("transaction buffer depth"));
    EXPECT_TRUE(contains("SDRAM throughput percent"));
    EXPECT_TRUE(contains("node 0 has no CPUs"));
    EXPECT_TRUE(contains("node 1 references CPU 20 beyond the host bus"));
}

TEST(BoardConfigTest, ValidateReportsAllProblemsInOneThrow)
{
    BoardConfig cfg = makeUniformBoard(1, 4, smallCache());
    cfg.bufferEntries = 0;
    cfg.sdramThroughputPercent = 0;
    try {
        cfg.validate();
        FAIL() << "validate() should have thrown";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("2 problems"), std::string::npos);
        EXPECT_NE(what.find("transaction buffer depth"),
                  std::string::npos);
        EXPECT_NE(what.find("SDRAM throughput percent"),
                  std::string::npos);
    }
}

} // namespace
} // namespace memories::ies
