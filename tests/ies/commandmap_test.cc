#include "ies/commandmap.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ies/board.hh"

namespace memories::ies
{
namespace
{

ForeignTransaction
foreign(std::uint32_t opcode, Addr addr = 0x1000, CpuId agent = 0)
{
    ForeignTransaction txn;
    txn.opcode = opcode;
    txn.addr = addr;
    txn.agent = agent;
    return txn;
}

TEST(CommandMapTest, MapAndTranslate)
{
    CommandMap cmap;
    cmap.map(0x21, bus::BusOp::Read);
    const auto op = cmap.translate(0x21);
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(*op, bus::BusOp::Read);
    EXPECT_EQ(cmap.size(), 1u);
}

TEST(CommandMapTest, DropIsExplicitNullopt)
{
    CommandMap cmap;
    cmap.drop(0x3f);
    EXPECT_FALSE(cmap.translate(0x3f).has_value());
    EXPECT_EQ(cmap.size(), 0u);
}

TEST(CommandMapTest, RemapOverridesWithoutDoubleCount)
{
    CommandMap cmap;
    cmap.map(0x10, bus::BusOp::Read);
    cmap.map(0x10, bus::BusOp::Rwitm);
    EXPECT_EQ(cmap.size(), 1u);
    EXPECT_EQ(*cmap.translate(0x10), bus::BusOp::Rwitm);
}

TEST(CommandMapTest, UnknownDefaultsToDrop)
{
    CommandMap cmap;
    EXPECT_FALSE(cmap.translate(0x77).has_value());
}

TEST(CommandMapTest, UnknownFatalPolicy)
{
    CommandMap cmap;
    cmap.setUnknownPolicy(CommandMap::UnknownPolicy::Fatal);
    EXPECT_THROW(cmap.translate(0x77), FatalError);
}

TEST(CommandMapTest, ParseTextFormat)
{
    const auto cmap = CommandMap::parse(
        "# example map\n"
        "map 0x00 READ\n"
        "map 0x01 RWITM\n"
        "drop 0x1f\n"
        "unknown fatal\n");
    EXPECT_EQ(*cmap.translate(0), bus::BusOp::Read);
    EXPECT_EQ(*cmap.translate(1), bus::BusOp::Rwitm);
    EXPECT_FALSE(cmap.translate(0x1f).has_value());
    EXPECT_THROW(cmap.translate(0x55), FatalError);
}

TEST(CommandMapTest, ParseRejectsGarbage)
{
    EXPECT_THROW(CommandMap::parse("map 0x00\n"), FatalError);
    EXPECT_THROW(CommandMap::parse("map 0x00 LOAD\n"), FatalError);
    EXPECT_THROW(CommandMap::parse("remap 0x00 READ\n"), FatalError);
    EXPECT_THROW(CommandMap::parse("unknown maybe\n"), FatalError);
}

TEST(CommandMapTest, P6MapCoversTheBasics)
{
    const auto cmap = makeP6BusCommandMap();
    EXPECT_EQ(*cmap.translate(0x00), bus::BusOp::Read);
    EXPECT_EQ(*cmap.translate(0x01), bus::BusOp::Rwitm);
    EXPECT_EQ(*cmap.translate(0x02), bus::BusOp::WriteBack);
    EXPECT_EQ(*cmap.translate(0x08), bus::BusOp::IoRead);
    EXPECT_FALSE(cmap.translate(0x0f).has_value()); // deferred reply
}

TEST(InterposerTest, TranslatesAndIssues)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(
        1, 8,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(bus);

    InterposerCard card(bus, makeP6BusCommandMap());
    card.deliver(foreign(0x00, 0x8000, 1)); // read line
    bus.tick(1000);
    card.deliver(foreign(0x00, 0x8000, 2)); // second read: L3 hit
    board.drainAll();

    EXPECT_EQ(card.stats().translated, 2u);
    const auto s = board.node(0).stats();
    EXPECT_EQ(s.localRefs, 2u);
    EXPECT_EQ(s.localHits, 1u);
}

TEST(InterposerTest, DropsUnmappedAndCounts)
{
    bus::Bus6xx bus;
    InterposerCard card(bus, makeP6BusCommandMap());
    card.deliver(foreign(0xee));
    EXPECT_EQ(card.stats().dropped, 1u);
    EXPECT_EQ(bus.stats().tenures, 0u);
}

TEST(InterposerTest, ForeignTimestampsAdvanceTheBus)
{
    bus::Bus6xx bus;
    InterposerCard card(bus, makeP6BusCommandMap());
    ForeignTransaction txn = foreign(0x00);
    txn.cycle = 500;
    card.deliver(txn);
    EXPECT_GE(bus.now(), 500u);
}

TEST(InterposerTest, ForeignWriteInvalidatesEmulatedLine)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    board.plugInto(bus);

    InterposerCard card(bus, makeP6BusCommandMap());
    card.deliver(foreign(0x00, 0x9000, 0)); // node 0 reads
    bus.tick(1000);
    card.deliver(foreign(0x01, 0x9000, 4)); // node 1 BRIL (RWITM)
    board.drainAll();

    EXPECT_EQ(board.node(0).probeState(0x9000),
              protocol::LineState::Invalid);
    EXPECT_EQ(board.node(1).probeState(0x9000),
              protocol::LineState::Modified);
}

} // namespace
} // namespace memories::ies
