#include "ies/nodecontroller.hh"

#include <gtest/gtest.h>

namespace memories::ies
{
namespace
{

using protocol::LineState;

NodeConfig
smallNode(std::vector<CpuId> cpus = {0, 1},
          const std::string &proto = "MESI")
{
    NodeConfig cfg;
    cfg.cache = cache::CacheConfig{2 * MiB, 4, 128,
                                   cache::ReplacementPolicy::LRU};
    cfg.protocol = protocol::makeBuiltinTable(proto);
    cfg.cpus = std::move(cpus);
    return cfg;
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    return t;
}

TEST(NodeControllerTest, OwnsConfiguredCpus)
{
    NodeController node(0, smallNode({2, 5}));
    EXPECT_TRUE(node.ownsCpu(2));
    EXPECT_TRUE(node.ownsCpu(5));
    EXPECT_FALSE(node.ownsCpu(0));
}

TEST(NodeControllerTest, LocalReadMissFillsExclusive)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x1000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None);
    EXPECT_EQ(node.probeState(0x1000), LineState::Exclusive);
    const auto s = node.stats();
    EXPECT_EQ(s.localMisses, 1u);
    EXPECT_EQ(s.satisfiedByMemory, 1u);
    EXPECT_EQ(s.fills, 1u);
}

TEST(NodeControllerTest, LocalReadMissWithSharedFillsShared)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x1000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::Shared);
    EXPECT_EQ(node.probeState(0x1000), LineState::Shared);
    EXPECT_EQ(node.stats().satisfiedByShrIntervention, 1u);
}

TEST(NodeControllerTest, LocalReadMissWithModifiedIsModIntervention)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x1000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::Modified);
    EXPECT_EQ(node.stats().satisfiedByModIntervention, 1u);
}

TEST(NodeControllerTest, LocalReadHitCountsCacheSatisfaction)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x1000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None);
    node.processLocal(txn(0x1000, bus::BusOp::Read, 1),
                      bus::SnoopResponse::None);
    const auto s = node.stats();
    EXPECT_EQ(s.localHits, 1u);
    EXPECT_EQ(s.satisfiedByCache, 1u);
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.5);
}

TEST(NodeControllerTest, RwitmFillsModified)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x2000, bus::BusOp::Rwitm, 0),
                      bus::SnoopResponse::None);
    EXPECT_EQ(node.probeState(0x2000), LineState::Modified);
}

TEST(NodeControllerTest, DClaimUpgradesShared)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x2000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::Shared); // fills S
    node.processLocal(txn(0x2000, bus::BusOp::DClaim, 0),
                      bus::SnoopResponse::None);
    EXPECT_EQ(node.probeState(0x2000), LineState::Modified);
}

TEST(NodeControllerTest, WritebackAbsorbedAsModified)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x3000, bus::BusOp::WriteBack, 0),
                      bus::SnoopResponse::None);
    EXPECT_EQ(node.probeState(0x3000), LineState::Modified);
}

TEST(NodeControllerTest, RemoteReadDowngradesModified)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x4000, bus::BusOp::Rwitm, 0),
                      bus::SnoopResponse::None); // M
    const auto resp = node.snoopRemote(txn(0x4000, bus::BusOp::Read, 9));
    EXPECT_EQ(resp, bus::SnoopResponse::Modified);
    EXPECT_EQ(node.probeState(0x4000), LineState::Shared);
    EXPECT_EQ(node.stats().suppliedModified, 1u);
}

TEST(NodeControllerTest, RemoteRwitmInvalidates)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x4000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None); // E
    const auto resp =
        node.snoopRemote(txn(0x4000, bus::BusOp::Rwitm, 9));
    EXPECT_EQ(resp, bus::SnoopResponse::Shared); // clean copy existed
    EXPECT_EQ(node.probeState(0x4000), LineState::Invalid);
    EXPECT_EQ(node.stats().remoteInvalidations, 1u);
}

TEST(NodeControllerTest, RemoteMissAnswersNone)
{
    NodeController node(0, smallNode());
    EXPECT_EQ(node.snoopRemote(txn(0x7000, bus::BusOp::Read, 9)),
              bus::SnoopResponse::None);
}

TEST(NodeControllerTest, MoesiKeepsOwnership)
{
    NodeController node(0, smallNode({0, 1}, "MOESI"));
    node.processLocal(txn(0x4000, bus::BusOp::Rwitm, 0),
                      bus::SnoopResponse::None); // M
    node.snoopRemote(txn(0x4000, bus::BusOp::Read, 9));
    EXPECT_EQ(node.probeState(0x4000), LineState::Owned);
    // Owned keeps intervening.
    EXPECT_EQ(node.snoopRemote(txn(0x4000, bus::BusOp::Read, 10)),
              bus::SnoopResponse::Modified);
}

TEST(NodeControllerTest, ConflictEvictionCountsDirtyCastout)
{
    // 2MB 4-way 128B -> 4096 sets; same-set stride = 512KB.
    NodeController node(0, smallNode());
    const std::uint64_t stride = 2 * MiB / 4;
    for (int i = 0; i < 5; ++i) {
        node.processLocal(txn(i * stride, bus::BusOp::Rwitm, 0),
                          bus::SnoopResponse::None);
    }
    const auto s = node.stats();
    EXPECT_EQ(s.fills, 5u);
    EXPECT_EQ(s.evictionsDirty, 1u);
    EXPECT_EQ(s.evictionsClean, 0u);
}

TEST(NodeControllerTest, DirectoryOccupancyTracksFills)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x0000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None);
    node.processLocal(txn(0x1000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None);
    EXPECT_EQ(node.directoryOccupancy(), 2u);
    node.resetDirectory();
    EXPECT_EQ(node.directoryOccupancy(), 0u);
}

TEST(NodeControllerTest, CountersClearIndependentlyOfDirectory)
{
    NodeController node(0, smallNode());
    node.processLocal(txn(0x0000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None);
    node.clearCounters();
    EXPECT_EQ(node.stats().localRefs, 0u);
    EXPECT_EQ(node.directoryOccupancy(), 1u); // directory stays warm
}

TEST(NodeControllerTest, CounterBankIsRich)
{
    // The board advertises >400 counters across its FPGAs; each node
    // controller must expose a few dozen at least.
    NodeController node(0, smallNode());
    EXPECT_GE(node.counters().size(), 50u);
}

TEST(NodeControllerTest, LineGranularityRespectsConfig)
{
    auto cfg = smallNode();
    cfg.cache.lineSize = 1024;
    NodeController node(0, cfg);
    node.processLocal(txn(0x1000, bus::BusOp::Read, 0),
                      bus::SnoopResponse::None);
    // Same 1KB line, different 128B offset: must hit.
    node.processLocal(txn(0x1380, bus::BusOp::Read, 1),
                      bus::SnoopResponse::None);
    EXPECT_EQ(node.stats().localHits, 1u);
}

} // namespace
} // namespace memories::ies
