/**
 * @file
 * Property test for the batch feed path: for any generated stream,
 * any board geometry, and any batch size, feedBatch must be
 * byte-identical to feeding the same stream through feedCommitted one
 * transaction at a time — acceptance flags, counters, directories,
 * and buffer statistics alike.
 *
 * A divergence does not just fail: it is handed to the oracle's
 * delta-debugging shrinker (oracle::shrinkStream), so the log carries
 * a minimal reproducing stream instead of a 4000-transaction haystack.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ies/board.hh"
#include "oracle/stimulus.hh"

namespace memories::ies
{
namespace
{

struct FeedOutcome
{
    std::vector<std::uint8_t> accepted;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>> dirs;
    std::uint64_t bufferRetired = 0;
    std::size_t bufferSize = 0;
    std::size_t bufferHighWater = 0;

    bool operator==(const FeedOutcome &) const = default;
};

FeedOutcome
outcomeOf(MemoriesBoard &board, std::vector<std::uint8_t> accepted)
{
    FeedOutcome out;
    out.accepted = std::move(accepted);
    board.globalCounters().snapshot([&](const CounterSample &s) {
        out.counters.emplace_back(s.name, s.value);
    });
    for (std::size_t i = 0; i < board.numNodes(); ++i) {
        board.node(i).counters().snapshot([&](const CounterSample &s) {
            out.counters.emplace_back(s.name, s.value);
        });
        out.dirs.push_back(board.node(i).directorySnapshot());
    }
    out.bufferRetired = board.bufferRetired();
    out.bufferSize = board.bufferSize();
    out.bufferHighWater = board.bufferHighWater();
    return out;
}

FeedOutcome
runSerial(const BoardConfig &cfg,
          const std::vector<bus::BusTransaction> &txns)
{
    MemoriesBoard board(cfg);
    std::vector<std::uint8_t> accepted;
    accepted.reserve(txns.size());
    for (const auto &t : txns)
        accepted.push_back(board.feedCommitted(t) ? 1 : 0);
    return outcomeOf(board, std::move(accepted));
}

FeedOutcome
runBatched(const BoardConfig &cfg,
           const std::vector<bus::BusTransaction> &txns,
           std::size_t batch_size, std::size_t shards)
{
    MemoriesBoard board(cfg);
    if (shards > 1)
        board.enableSharding(shards);
    std::vector<std::uint8_t> accepted(txns.size(), 0);
    std::vector<char> flags(batch_size, 0);
    for (std::size_t at = 0; at < txns.size(); at += batch_size) {
        const std::size_t n = std::min(batch_size, txns.size() - at);
        board.feedBatch(&txns[at], n,
                        reinterpret_cast<bool *>(flags.data()));
        for (std::size_t i = 0; i < n; ++i)
            accepted[at + i] = static_cast<std::uint8_t>(flags[i]);
    }
    return outcomeOf(board, std::move(accepted));
}

std::string
firstDifference(const FeedOutcome &serial, const FeedOutcome &batched)
{
    std::ostringstream os;
    for (std::size_t i = 0;
         i < std::min(serial.accepted.size(), batched.accepted.size());
         ++i) {
        if (serial.accepted[i] != batched.accepted[i]) {
            os << "acceptance of txn " << i << ": serial "
               << int{serial.accepted[i]} << " batched "
               << int{batched.accepted[i]};
            return os.str();
        }
    }
    for (std::size_t i = 0; i < serial.counters.size(); ++i) {
        if (serial.counters[i].second != batched.counters[i].second) {
            os << "counter " << serial.counters[i].first << ": serial "
               << serial.counters[i].second << " batched "
               << batched.counters[i].second;
            return os.str();
        }
    }
    for (std::size_t n = 0; n < serial.dirs.size(); ++n) {
        if (serial.dirs[n] != batched.dirs[n]) {
            os << "node " << n << " directory contents";
            return os.str();
        }
    }
    os << "buffer stats: retired " << serial.bufferRetired << "/"
       << batched.bufferRetired << " size " << serial.bufferSize << "/"
       << batched.bufferSize << " high-water "
       << serial.bufferHighWater << "/" << batched.bufferHighWater;
    return os.str();
}

/** The property; on failure, shrink to a minimal stream and report. */
void
checkEquivalence(const BoardConfig &cfg,
                 const std::vector<bus::BusTransaction> &txns,
                 std::size_t batch_size, std::size_t shards,
                 const std::string &what)
{
    const FeedOutcome serial = runSerial(cfg, txns);
    const FeedOutcome batched =
        runBatched(cfg, txns, batch_size, shards);
    if (serial == batched)
        return;

    const auto still_fails =
        [&](const std::vector<bus::BusTransaction> &candidate) {
            return runSerial(cfg, candidate) !=
                   runBatched(cfg, candidate, batch_size, shards);
        };
    const auto shrunk = oracle::shrinkStream(txns, still_fails);
    const FeedOutcome s2 = runSerial(cfg, shrunk);
    const FeedOutcome b2 = runBatched(cfg, shrunk, batch_size, shards);
    ADD_FAILURE() << what << ": feedBatch diverged ("
                  << firstDifference(serial, batched)
                  << "); ddmin shrank " << txns.size() << " txns to "
                  << shrunk.size() << " ("
                  << firstDifference(s2, b2) << ")";
}

std::vector<bus::BusTransaction>
propertyStream(std::uint64_t seed)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = 4000;
    p.cpus = 8;
    p.pBurst = 0.4;
    return oracle::StimulusGen(p).generate();
}

TEST(FeedBatchPropertyTest, BatchSizesAreEquivalentToSerial)
{
    const BoardConfig cfg = makeUniformBoard(
        4, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    for (std::uint64_t seed : {3u, 17u, 91u}) {
        const auto txns = propertyStream(seed);
        for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{4096}}) {
            checkEquivalence(cfg, txns, batch, 1,
                             "seed " + std::to_string(seed) +
                                 " batch " + std::to_string(batch));
        }
    }
}

TEST(FeedBatchPropertyTest, BatchSizesAreEquivalentUnderSharding)
{
    const BoardConfig cfg = makeUniformBoard(
        4, 2,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    const auto txns = propertyStream(7);
    for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{4096}}) {
        checkEquivalence(cfg, txns, batch, 4,
                         "sharded batch " + std::to_string(batch));
    }
}

TEST(FeedBatchPropertyTest, PacedBufferStaysEquivalent)
{
    // A slow, tiny buffer makes retirement timing and overflow depend
    // on exactly when drainDue runs — the riskiest batching surface.
    BoardConfig cfg = makeUniformBoard(
        2, 4,
        cache::CacheConfig{2 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU});
    cfg.bufferEntries = 32;
    cfg.sdramThroughputPercent = 10;
    for (std::uint64_t seed : {5u, 23u}) {
        const auto txns = propertyStream(seed);
        for (std::size_t batch :
             {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
            checkEquivalence(cfg, txns, batch, 2,
                             "paced seed " + std::to_string(seed) +
                                 " batch " + std::to_string(batch));
        }
    }
}

} // namespace
} // namespace memories::ies
