/**
 * @file
 * The sharding equivalence tier: MemoriesBoard::feedBatch — threadless,
 * and sharded across every supported worker count — must be
 * byte-identical to the serial feedCommitted path. "Byte-identical"
 * is taken literally: every global and node counter, every node's
 * directorySnapshot(), the retirement order, the buffer statistics,
 * and the chrome-trace JSON rendered from the flight-recorder ring
 * must match, transaction stream for transaction stream.
 *
 * Run under TSan (MEMORIES_SANITIZE=thread) this doubles as the data
 * race proof for the shard pool: docs/SHARDING.md documents the
 * partitioning invariant these tests pin down.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ies/board.hh"
#include "oracle/stimulus.hh"
#include "trace/chrometrace.hh"
#include "trace/lifecycle.hh"

namespace memories::ies
{
namespace
{

/** Everything observable about a board after a run. */
struct BoardSignature
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::vector<std::pair<Addr, cache::LineStateRaw>>> dirs;
    std::uint64_t bufferRetired = 0;
    std::size_t bufferSize = 0;
    std::size_t bufferHighWater = 0;
    /** traceIds of Retire events, in ring order. */
    std::vector<std::uint32_t> retirementOrder;
    /** Chrome-trace JSON of the full recorder ring. */
    std::string chromeTrace;
};

BoardSignature
signatureOf(const MemoriesBoard &board,
            const trace::FlightRecorder *recorder)
{
    BoardSignature sig;
    board.globalCounters().snapshot([&](const CounterSample &s) {
        sig.counters.emplace_back(s.name, s.value);
    });
    for (std::size_t i = 0; i < board.numNodes(); ++i) {
        board.node(i).counters().snapshot([&](const CounterSample &s) {
            sig.counters.emplace_back(s.name, s.value);
        });
        sig.dirs.push_back(board.node(i).directorySnapshot());
    }
    sig.bufferRetired = board.bufferRetired();
    sig.bufferSize = board.bufferSize();
    sig.bufferHighWater = board.bufferHighWater();
    if (recorder) {
        const auto events = recorder->snapshot();
        for (const auto &ev : events) {
            if (ev.kind == trace::EventKind::Retire)
                sig.retirementOrder.push_back(ev.traceId);
        }
        sig.chromeTrace = trace::chromeTraceToString(events, recorder);
    }
    return sig;
}

void
expectIdentical(const BoardSignature &serial,
                const BoardSignature &sharded, const std::string &what)
{
    ASSERT_EQ(serial.counters.size(), sharded.counters.size()) << what;
    for (std::size_t i = 0; i < serial.counters.size(); ++i) {
        EXPECT_EQ(serial.counters[i].second, sharded.counters[i].second)
            << what << ": counter " << serial.counters[i].first;
    }
    ASSERT_EQ(serial.dirs.size(), sharded.dirs.size()) << what;
    for (std::size_t n = 0; n < serial.dirs.size(); ++n)
        EXPECT_EQ(serial.dirs[n], sharded.dirs[n])
            << what << ": node " << n << " directory";
    EXPECT_EQ(serial.bufferRetired, sharded.bufferRetired) << what;
    EXPECT_EQ(serial.bufferSize, sharded.bufferSize) << what;
    EXPECT_EQ(serial.bufferHighWater, sharded.bufferHighWater) << what;
    EXPECT_EQ(serial.retirementOrder, sharded.retirementOrder) << what;
    EXPECT_EQ(serial.chromeTrace, sharded.chromeTrace) << what;
}

std::vector<bus::BusTransaction>
stream(std::uint64_t seed, std::size_t count, unsigned cpus = 8)
{
    oracle::StimulusParams p;
    p.seed = seed;
    p.count = count;
    p.cpus = cpus;
    return oracle::StimulusGen(p).generate();
}

cache::CacheConfig
cacheCfg(std::uint64_t bytes, unsigned assoc,
         cache::ReplacementPolicy policy = cache::ReplacementPolicy::LRU)
{
    return cache::CacheConfig{bytes, assoc, 128, policy};
}

/** The geometries the tier sweeps; each stresses a different path. */
struct EquivConfig
{
    std::string name;
    BoardConfig board;
};

std::vector<EquivConfig>
equivConfigs()
{
    std::vector<EquivConfig> cfgs;
    cfgs.push_back({"mesi-4node", makeUniformBoard(4, 2, cacheCfg(2 * MiB, 4))});
    cfgs.push_back(
        {"mesi-2node-random",
         makeUniformBoard(2, 4,
                          cacheCfg(2 * MiB, 4,
                                   cache::ReplacementPolicy::Random))});
    cfgs.push_back(
        {"moesi-2node-fifo",
         makeUniformBoard(2, 4,
                          cacheCfg(2 * MiB, 2,
                                   cache::ReplacementPolicy::FIFO),
                          "MOESI")});
    {
        // Multi-configuration board: three geometries against the same
        // traffic, multiple target-machine groups per emulation step.
        BoardConfig multi = makeMultiConfigBoard(
            {cacheCfg(2 * MiB, 2), cacheCfg(4 * MiB, 4),
             cacheCfg(8 * MiB, 8)},
            4);
        cfgs.push_back({"multicfg", std::move(multi)});
    }
    {
        // Set sampling: shard keys must come from the sampled window.
        BoardConfig sampled = makeUniformBoard(2, 4, cacheCfg(8 * MiB, 4));
        for (auto &node : sampled.nodes)
            node.setSamplingShift = 2;
        cfgs.push_back({"sampled4", std::move(sampled)});
    }
    {
        // Tiny, slow buffer: pacing, overflow, and drop paths fire.
        BoardConfig tiny = makeUniformBoard(2, 4, cacheCfg(2 * MiB, 4));
        tiny.bufferEntries = 32;
        tiny.sdramThroughputPercent = 10;
        cfgs.push_back({"tinybuf", std::move(tiny)});
    }
    return cfgs;
}

/** Serial reference: feedCommitted per element. */
BoardSignature
runSerial(const BoardConfig &cfg,
          const std::vector<bus::BusTransaction> &txns,
          std::vector<bool> *accepted = nullptr, bool record = false)
{
    MemoriesBoard board(cfg);
    std::unique_ptr<trace::FlightRecorder> recorder;
    if (record) {
        recorder = std::make_unique<trace::FlightRecorder>(1 << 14);
        board.attachFlightRecorder(*recorder);
    }
    for (const auto &t : txns) {
        const bool ok = board.feedCommitted(t);
        if (accepted)
            accepted->push_back(ok);
    }
    return signatureOf(board, recorder.get());
}

/** Batched run at a requested shard count. */
BoardSignature
runSharded(const BoardConfig &cfg,
           const std::vector<bus::BusTransaction> &txns,
           std::size_t shards, std::vector<bool> *accepted = nullptr,
           bool record = false, std::size_t batchSize = 0)
{
    MemoriesBoard board(cfg);
    std::unique_ptr<trace::FlightRecorder> recorder;
    if (record) {
        recorder = std::make_unique<trace::FlightRecorder>(1 << 14);
        board.attachFlightRecorder(*recorder);
    }
    if (shards > 1)
        board.enableSharding(shards);
    if (batchSize == 0)
        batchSize = txns.size();
    std::vector<std::uint8_t> raw(txns.size(), 0);
    for (std::size_t at = 0; at < txns.size(); at += batchSize) {
        const std::size_t n = std::min(batchSize, txns.size() - at);
        // bool* out array: use a plain buffer, vector<bool> is packed.
        std::vector<char> out(n, 0);
        board.feedBatch(&txns[at], n,
                        reinterpret_cast<bool *>(out.data()));
        for (std::size_t i = 0; i < n; ++i)
            raw[at + i] = static_cast<std::uint8_t>(out[i]);
    }
    if (accepted)
        for (std::size_t i = 0; i < txns.size(); ++i)
            accepted->push_back(raw[i] != 0);
    return signatureOf(board, recorder.get());
}

TEST(ShardEquivTest, BatchPathMatchesSerialWithoutRecorder)
{
    for (const auto &cfg : equivConfigs()) {
        const auto txns = stream(11, 4000);
        std::vector<bool> serial_ok, batch_ok;
        const auto serial = runSerial(cfg.board, txns, &serial_ok);
        const auto batch = runSharded(cfg.board, txns, 1, &batch_ok);
        EXPECT_EQ(serial_ok, batch_ok) << cfg.name;
        expectIdentical(serial, batch, cfg.name + " turbo batch");
    }
}

TEST(ShardEquivTest, ShardedMatchesSerialAcrossThreadCounts)
{
    for (const auto &cfg : equivConfigs()) {
        const auto txns = stream(23, 4000);
        std::vector<bool> serial_ok;
        const auto serial = runSerial(cfg.board, txns, &serial_ok, true);
        for (std::size_t shards : {1u, 2u, 4u, 8u}) {
            std::vector<bool> sharded_ok;
            const auto sharded = runSharded(cfg.board, txns, shards,
                                            &sharded_ok, true);
            const std::string what =
                cfg.name + " @" + std::to_string(shards) + " shards";
            EXPECT_EQ(serial_ok, sharded_ok) << what;
            expectIdentical(serial, sharded, what);
        }
    }
}

TEST(ShardEquivTest, ChunkedBatchesMatchOneBigBatch)
{
    const BoardConfig cfg = makeUniformBoard(4, 2, cacheCfg(2 * MiB, 4));
    const auto txns = stream(31, 3000);
    const auto serial = runSerial(cfg, txns, nullptr, true);
    for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{4096}}) {
        const auto sharded =
            runSharded(cfg, txns, 4, nullptr, true, batch);
        expectIdentical(serial, sharded,
                        "batch size " + std::to_string(batch));
    }
}

TEST(ShardEquivTest, ShardCountClampsToSmallestNodeWindow)
{
    // 2MB / 8 ways / 16KB lines = 16 sets; sampling shift 2 keeps 4.
    // A 4-set directory can contain at most 4 shards, so a request
    // for 8 must clamp — and the clamped pool stays bit-exact.
    BoardConfig cfg = makeUniformBoard(2, 4, cacheCfg(2 * MiB, 4));
    cfg.nodes[0].cache = cache::CacheConfig{
        2 * MiB, 8, 16 * KiB, cache::ReplacementPolicy::LRU};
    cfg.nodes[0].setSamplingShift = 2;
    {
        MemoriesBoard board(cfg);
        EXPECT_EQ(board.enableSharding(8), 4u);
    }
    {
        // Sampling shift 4 leaves a single set: everything must
        // serialize onto one shard.
        BoardConfig one = cfg;
        one.nodes[0].setSamplingShift = 4;
        MemoriesBoard board(one);
        EXPECT_EQ(board.enableSharding(8), 1u);
    }

    // Whatever the clamp chose must still be bit-exact.
    const auto txns = stream(47, 2000);
    const auto serial = runSerial(cfg, txns, nullptr, true);
    const auto sharded = runSharded(cfg, txns, 8, nullptr, true);
    expectIdentical(serial, sharded, "clamped shard count");
}

TEST(ShardEquivTest, NonPowerOfTwoRequestRoundsDown)
{
    BoardConfig cfg = makeUniformBoard(2, 4, cacheCfg(2 * MiB, 4));
    MemoriesBoard board(cfg);
    EXPECT_EQ(board.enableSharding(3), 2u);
    EXPECT_EQ(board.enableSharding(7), 4u);
    EXPECT_EQ(board.enableSharding(1), 1u);
    EXPECT_EQ(board.enableSharding(0), 1u);
    board.disableSharding();
    EXPECT_EQ(board.shardCount(), 1u);
}

TEST(ShardEquivTest, MixedSerialAndBatchFeedsAgree)
{
    const BoardConfig cfg = makeUniformBoard(4, 2, cacheCfg(2 * MiB, 4));
    const auto txns = stream(59, 3000);
    const auto serial = runSerial(cfg, txns, nullptr, true);

    MemoriesBoard board(cfg);
    trace::FlightRecorder recorder(1 << 14);
    board.attachFlightRecorder(recorder);
    board.enableSharding(4);
    // First third serial, middle third batched, last third serial.
    const std::size_t third = txns.size() / 3;
    for (std::size_t i = 0; i < third; ++i)
        board.feedCommitted(txns[i]);
    board.feedBatch(&txns[third], third);
    for (std::size_t i = 2 * third; i < txns.size(); ++i)
        board.feedCommitted(txns[i]);
    expectIdentical(serial, signatureOf(board, &recorder),
                    "mixed serial/batch feeds");
}

TEST(ShardEquivTest, DrainAllAfterBatchMatchesSerial)
{
    const BoardConfig cfg = makeUniformBoard(2, 4, cacheCfg(2 * MiB, 4));
    const auto txns = stream(67, 2000);

    MemoriesBoard serial_board(cfg);
    for (const auto &t : txns)
        serial_board.feedCommitted(t);
    serial_board.drainAll();

    MemoriesBoard sharded_board(cfg);
    sharded_board.enableSharding(4);
    sharded_board.feedBatch(txns);
    sharded_board.drainAll();

    expectIdentical(signatureOf(serial_board, nullptr),
                    signatureOf(sharded_board, nullptr),
                    "post-drainAll state");
}

} // namespace
} // namespace memories::ies
