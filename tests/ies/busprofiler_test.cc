#include "ies/busprofiler.hh"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/exporter.hh"

namespace memories::ies
{
namespace
{

bus::BusTransaction
readAt(Addr addr, CpuId cpu = 0)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.cpu = cpu;
    t.op = bus::BusOp::Read;
    return t;
}

TEST(BusProfilerTest, RejectsZeroWindow)
{
    BusProfilerConfig cfg;
    cfg.windowCycles = 0;
    EXPECT_THROW(BusProfiler{cfg}, FatalError);
}

TEST(BusProfilerTest, WindowUtilization)
{
    BusProfilerConfig cfg;
    cfg.windowCycles = 100;
    BusProfiler profiler(cfg);
    bus::Bus6xx bus;
    profiler.plugInto(bus);

    // 10 tenures in the first window, 20 in the second.
    for (int i = 0; i < 10; ++i) {
        bus.issue(readAt(0x1000u + 128u * i));
        bus.tick(9);
    }
    for (int i = 0; i < 20; ++i) {
        bus.issue(readAt(0x9000u + 128u * i));
        bus.tick(4);
    }
    profiler.finish();

    ASSERT_GE(profiler.utilizationSeries().size(), 2u);
    EXPECT_NEAR(profiler.utilizationSeries()[0], 0.10, 1e-9);
    EXPECT_NEAR(profiler.utilizationSeries()[1], 0.20, 1e-9);
    EXPECT_NEAR(profiler.peakUtilization(), 0.20, 1e-9);
    EXPECT_GT(profiler.meanUtilization(), 0.0);
}

TEST(BusProfilerTest, BurstDetection)
{
    BusProfilerConfig cfg;
    cfg.burstGapCycles = 4;
    BusProfiler profiler(cfg);
    bus::Bus6xx bus;
    profiler.plugInto(bus);

    // A 5-tenure back-to-back burst, a long gap, then one lone tenure.
    for (int i = 0; i < 5; ++i)
        bus.issue(readAt(0x1000u + 128u * i));
    bus.tick(100);
    bus.issue(readAt(0x9000));
    profiler.finish();

    EXPECT_EQ(profiler.burstHistogram().samples(), 2u);
    EXPECT_NEAR(profiler.burstHistogram().max(), 5.0, 1e-9);
    EXPECT_NEAR(profiler.burstHistogram().min(), 1.0, 1e-9);
}

TEST(BusProfilerTest, PerOpAndPerCpuCounts)
{
    BusProfiler profiler;
    bus::Bus6xx bus;
    profiler.plugInto(bus);

    bus.issue(readAt(0x1000, 3));
    bus::BusTransaction w = readAt(0x2000, 5);
    w.op = bus::BusOp::Rwitm;
    bus.issue(w);
    profiler.finish();

    EXPECT_EQ(profiler.opCount(bus::BusOp::Read), 1u);
    EXPECT_EQ(profiler.opCount(bus::BusOp::Rwitm), 1u);
    EXPECT_EQ(profiler.cpuCount(3), 1u);
    EXPECT_EQ(profiler.cpuCount(5), 1u);
    EXPECT_EQ(profiler.totalTenures(), 2u);
}

TEST(BusProfilerTest, CountsNonMemoryOpsToo)
{
    // The profiler measures the *bus*, not the cacheable subset.
    BusProfiler profiler;
    bus::Bus6xx bus;
    profiler.plugInto(bus);
    bus::BusTransaction io;
    io.op = bus::BusOp::IoRead;
    bus.issue(io);
    profiler.finish();
    EXPECT_EQ(profiler.totalTenures(), 1u);
}

TEST(BusProfilerTest, ClearResets)
{
    BusProfiler profiler;
    bus::Bus6xx bus;
    profiler.plugInto(bus);
    bus.issue(readAt(0x1000));
    profiler.finish();
    profiler.clear();
    EXPECT_EQ(profiler.totalTenures(), 0u);
    EXPECT_TRUE(profiler.utilizationSeries().empty());
}

TEST(BusProfilerTest, PassiveOnTheBus)
{
    BusProfiler profiler;
    bus::Bus6xx bus;
    profiler.plugInto(bus);
    EXPECT_EQ(bus.issue(readAt(0x1000)), bus::SnoopResponse::None);
}

TEST(BusProfilerTest, AttachTelemetryExportsProfilerSources)
{
    // Captures the last exported window to check the profiler's
    // counters, gauges and utilization histogram flow through the
    // telemetry sampler.
    class LastWindow final : public telemetry::Exporter
    {
      public:
        void exportWindow(const telemetry::WindowRecord &w) override
        {
            names.clear();
            for (const auto &c : w.counters)
                names.push_back(*c.name);
            for (const auto &g : w.gauges)
                names.push_back(*g.name);
            histogramSamples = 0;
            for (const auto *h : w.histograms)
                histogramSamples += h->samples();
        }
        std::vector<std::string> names;
        std::uint64_t histogramSamples = 0;
    };

    BusProfilerConfig cfg;
    cfg.windowCycles = 100;
    BusProfiler profiler(cfg);
    bus::Bus6xx bus;
    profiler.plugInto(bus);

    telemetry::Sampler sampler(1000);
    LastWindow sink;
    sampler.addExporter(sink);
    profiler.attachTelemetry(sampler);

    for (int i = 0; i < 50; ++i) {
        bus.issue(readAt(0x1000u + 128u * i));
        bus.tick(9);
    }
    sampler.advanceTo(bus.now());
    sampler.finish(bus.now());

    auto has = [&](const std::string &name) {
        return std::find(sink.names.begin(), sink.names.end(), name) !=
               sink.names.end();
    };
    EXPECT_TRUE(has("profiler.tenures"));
    EXPECT_TRUE(has("profiler.mean_utilization"));
    EXPECT_TRUE(has("profiler.peak_utilization"));
    EXPECT_GT(sink.histogramSamples, 0u)
        << "profiler windows must feed the utilization histogram";
}

} // namespace
} // namespace memories::ies
