#include "ies/txnbuffer.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::ies
{
namespace
{

bus::BusTransaction
txnAt(Cycle cycle, Addr addr = 0x1000)
{
    bus::BusTransaction txn;
    txn.addr = addr;
    txn.cycle = cycle;
    txn.op = bus::BusOp::Read;
    return txn;
}

TEST(TxnBufferTest, RejectsBadParameters)
{
    EXPECT_THROW(TransactionBuffer(0, 42), FatalError);
    EXPECT_THROW(TransactionBuffer(512, 0), FatalError);
    EXPECT_THROW(TransactionBuffer(512, 101), FatalError);
}

TEST(TxnBufferTest, PushPopFifoOrder)
{
    TransactionBuffer buf(8, 100);
    buf.push(txnAt(0, 0x1000));
    buf.push(txnAt(1, 0x2000));
    const auto a = buf.drain(10);
    const auto b = buf.drain(10);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->addr, 0x1000u);
    EXPECT_EQ(b->addr, 0x2000u);
}

TEST(TxnBufferTest, RejectsWhenFull)
{
    TransactionBuffer buf(2, 42);
    EXPECT_TRUE(buf.push(txnAt(0)));
    EXPECT_TRUE(buf.push(txnAt(1)));
    EXPECT_FALSE(buf.push(txnAt(2)));
    EXPECT_EQ(buf.rejected(), 1u);
}

TEST(TxnBufferTest, DrainIsRateLimited)
{
    // 42% throughput: 100 elapsed cycles earn 42 retirements.
    TransactionBuffer buf(512, 42);
    for (int i = 0; i < 100; ++i)
        buf.push(txnAt(0));
    int drained = 0;
    while (buf.drain(100))
        ++drained;
    EXPECT_EQ(drained, 42);
    // Another 100 cycles drain the rest at the same rate.
    while (buf.drain(200))
        ++drained;
    EXPECT_EQ(drained, 84);
}

TEST(TxnBufferTest, CreditsDoNotDrainEmptyFutureWork)
{
    // Idle cycles bank credits, but the bank is capped so a long idle
    // stretch cannot buy unbounded instant throughput later.
    TransactionBuffer buf(4, 50);
    ASSERT_FALSE(buf.drain(1'000'000).has_value());
    for (int i = 0; i < 4; ++i)
        buf.push(txnAt(1'000'000));
    int drained = 0;
    while (buf.drain(1'000'000))
        ++drained;
    EXPECT_EQ(drained, 4); // at most capacity's worth of banked credits
}

TEST(TxnBufferTest, NoCreditsNoDrain)
{
    TransactionBuffer buf(8, 42);
    buf.push(txnAt(0));
    EXPECT_FALSE(buf.drain(0).has_value());
    EXPECT_FALSE(buf.drain(1).has_value()); // 42 credits < 100
    EXPECT_TRUE(buf.drain(3).has_value());  // 126 credits
}

TEST(TxnBufferTest, HighWaterTracksDeepestOccupancy)
{
    TransactionBuffer buf(8, 100);
    buf.push(txnAt(0));
    buf.push(txnAt(0));
    buf.push(txnAt(0));
    buf.drain(100);
    buf.drain(100);
    buf.push(txnAt(100));
    EXPECT_EQ(buf.highWater(), 3u);
}

TEST(TxnBufferTest, DrainUnpacedIgnoresCredits)
{
    TransactionBuffer buf(8, 42);
    buf.push(txnAt(0));
    buf.push(txnAt(0));
    int drained = 0;
    while (buf.drainUnpaced())
        ++drained;
    EXPECT_EQ(drained, 2);
    EXPECT_TRUE(buf.empty());
}

TEST(TxnBufferTest, BoardDefaultsSustainTypicalUtilization)
{
    // At 20% arrival (one txn per 5 cycles) and 42% drain, the buffer
    // must never fill: the paper's board never posted a retry.
    TransactionBuffer buf(512, 42);
    std::uint64_t rejected = 0;
    for (Cycle c = 0; c < 100'000; c += 5) {
        while (buf.drain(c)) {
        }
        rejected += !buf.push(txnAt(c));
    }
    EXPECT_EQ(rejected, 0u);
    EXPECT_LT(buf.highWater(), 16u);
}

TEST(TxnBufferTest, AdmissibleAtIsPure)
{
    TransactionBuffer buf(8, 42);
    for (int i = 0; i < 6; ++i)
        buf.push(txnAt(0));
    const std::size_t first = buf.admissibleAt(500);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(buf.admissibleAt(500), first); // probing never mutates
    EXPECT_EQ(buf.size(), 6u);
    EXPECT_EQ(buf.retired(), 0u);
}

TEST(TxnBufferTest, AdmissibleMatchesDrainThenPush)
{
    // The probe must predict exactly how many same-cycle pushes a
    // drain(now)-then-push sequence would accept.
    for (Cycle now : {0ull, 3ull, 10ull, 250ull, 1'000'000ull}) {
        TransactionBuffer probe(8, 42);
        TransactionBuffer real(8, 42);
        for (int i = 0; i < 8; ++i) {
            probe.push(txnAt(0));
            real.push(txnAt(0));
        }
        const std::size_t predicted = probe.admissibleAt(now);
        while (real.drain(now)) {
        }
        std::size_t accepted = 0;
        while (real.push(txnAt(now)))
            ++accepted;
        EXPECT_EQ(predicted, accepted) << "now=" << now;
    }
}

TEST(TxnBufferTest, AdmissibleHonoursStallAndSlotLoss)
{
    // A retirement stall suppresses the earned span; a slot-loss fault
    // shrinks the capacity the probe reports against.
    TransactionBuffer buf(8, 100);
    for (int i = 0; i < 8; ++i)
        buf.push(txnAt(0));
    buf.injectStall(1'000);
    EXPECT_EQ(buf.admissibleAt(500), 0u); // no credits earned inside stall
    EXPECT_EQ(buf.admissibleAt(1'004), 4u);
    buf.injectSlotLoss(6, 2'000);
    // By cycle 1008 all 8 are retirable but only 2 slots exist.
    EXPECT_EQ(buf.admissibleAt(1'008), 2u);
    EXPECT_EQ(buf.admissibleAt(2'000), 8u); // fault expired
}

TEST(TxnBufferTest, AdmissibleCapsBankedCredits)
{
    // A long idle stretch banks at most capacity*100 credits; the probe
    // must apply the same cap instead of promising unbounded drain.
    TransactionBuffer buf(4, 50);
    buf.push(txnAt(0));
    EXPECT_EQ(buf.admissibleAt(1'000'000), 4u); // never above capacity
}

TEST(TxnBufferTest, SustainedOverloadEventuallyRejects)
{
    // Above 42% sustained arrival the buffer must fill and reject.
    TransactionBuffer buf(64, 42);
    std::uint64_t rejected = 0;
    for (Cycle c = 0; c < 1'000; ++c) { // 100% arrival rate
        while (buf.drain(c)) {
        }
        rejected += !buf.push(txnAt(c));
    }
    EXPECT_GT(rejected, 0u);
}

} // namespace
} // namespace memories::ies
