/**
 * @file
 * Tests for the console's scripting and export commands.
 */

#include "ies/console.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace memories::ies
{
namespace
{

class ConsoleScriptTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = ::testing::TempDir();
    }

    std::string
    writeFile(const std::string &name, const std::string &content)
    {
        const std::string path = dir_ + name;
        std::ofstream out(path);
        out << content;
        return path;
    }

    std::string
    readFile(const std::string &path)
    {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    std::string dir_;
};

TEST_F(ConsoleScriptTest, ScriptExecutesAllCommands)
{
    const auto path = writeFile("console.script",
                                "# configure one node\n"
                                "node 0 cache 2MB 4 128B\n"
                                "node 0 cpus 0,1\n"
                                "\n"
                                "init\n");
    bus::Bus6xx bus;
    Console console(bus);
    const auto out = console.execute("script " + path);
    EXPECT_TRUE(console.initialized());
    EXPECT_NE(out.find("board initialized"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ConsoleScriptTest, ScriptStopsAtFirstError)
{
    const auto path = writeFile("bad.script",
                                "node 0 cache 1KB 4 128B\n"
                                "init\n");
    bus::Bus6xx bus;
    Console console(bus);
    const auto out = console.execute("script " + path);
    EXPECT_NE(out.find("error:"), std::string::npos);
    EXPECT_FALSE(console.initialized()); // init never ran
    std::remove(path.c_str());
}

TEST_F(ConsoleScriptTest, MissingScriptIsAnError)
{
    bus::Bus6xx bus;
    Console console(bus);
    EXPECT_NE(console.execute("script /nonexistent.script")
                  .find("error:"),
              std::string::npos);
}

TEST_F(ConsoleScriptTest, SaveProtocolRoundTrips)
{
    const std::string path = dir_ + "mesi.map";
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("node 0 protocol MOESI");
    const auto reply = console.execute("save-protocol 0 " + path);
    EXPECT_NE(reply.find("MOESI"), std::string::npos);

    const auto table = protocol::loadMapFile(path);
    EXPECT_EQ(table.name(), "MOESI");
    std::remove(path.c_str());
}

TEST_F(ConsoleScriptTest, SaveProtocolAfterInitUsesLiveBoard)
{
    const std::string path = dir_ + "live.map";
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("init");
    console.execute("save-protocol 0 " + path);
    EXPECT_EQ(protocol::loadMapFile(path).name(), "MESI");
    std::remove(path.c_str());
}

TEST_F(ConsoleScriptTest, SaveProtocolBadIndex)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    EXPECT_NE(console.execute("save-protocol 5 /tmp/x.map")
                  .find("error:"),
              std::string::npos);
}

TEST_F(ConsoleScriptTest, ExportCsvWritesNodeRows)
{
    const std::string path = dir_ + "stats.csv";
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    bus::BusTransaction txn;
    txn.addr = 0x1000;
    txn.op = bus::BusOp::Read;
    txn.cpu = 0;
    bus.issue(txn);
    console.board()->drainAll();

    console.execute("export-csv " + path);
    const auto csv = readFile(path);
    EXPECT_NE(csv.find("node,refs,hits,misses"), std::string::npos);
    EXPECT_NE(csv.find(",1,0,1,"), std::string::npos); // 1 ref, 1 miss
    std::remove(path.c_str());
}

TEST_F(ConsoleScriptTest, ExportCsvRequiresBoard)
{
    bus::Bus6xx bus;
    Console console(bus);
    EXPECT_NE(console.execute("export-csv /tmp/x.csv").find("error:"),
              std::string::npos);
}

} // namespace
} // namespace memories::ies
