/**
 * @file
 * Set-sampling tests: a node tracking 1/2^k of the sets must behave
 * identically to a full directory *on the sampled sets*, skip
 * everything else, and stretch the SDRAM budget accordingly.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "ies/board.hh"

namespace memories::ies
{
namespace
{

NodeConfig
sampledNode(unsigned shift)
{
    NodeConfig cfg;
    cfg.cache = cache::CacheConfig{2 * MiB, 4, 128,
                                   cache::ReplacementPolicy::LRU};
    cfg.cpus = {0, 1, 2, 3};
    cfg.setSamplingShift = shift;
    return cfg;
}

bus::BusTransaction
readTxn(Addr addr, CpuId cpu = 0)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = bus::BusOp::Read;
    t.cpu = cpu;
    return t;
}

TEST(SamplingTest, ShiftZeroIsExact)
{
    NodeController node(0, sampledNode(0));
    node.processLocal(readTxn(0x1000), bus::SnoopResponse::None);
    EXPECT_EQ(node.unsampledRefs(), 0u);
    EXPECT_EQ(node.stats().localRefs, 1u);
}

TEST(SamplingTest, UnsampledSetsAreSkipped)
{
    // shift 2: only sets with index % 4 == 0 are tracked. Line 1
    // (addr 128) lands in set 1: skipped.
    NodeController node(0, sampledNode(2));
    node.processLocal(readTxn(128), bus::SnoopResponse::None);
    EXPECT_EQ(node.unsampledRefs(), 1u);
    EXPECT_EQ(node.stats().localRefs, 0u);
    EXPECT_EQ(node.probeState(128), protocol::LineState::Invalid);
}

TEST(SamplingTest, SampledSetsBehaveExactly)
{
    // Addresses in set 0 (line index multiple of numSets) behave as
    // in a full directory.
    NodeController node(0, sampledNode(2));
    node.processLocal(readTxn(0x0000), bus::SnoopResponse::None);
    node.processLocal(readTxn(0x0000, 1), bus::SnoopResponse::None);
    const auto s = node.stats();
    EXPECT_EQ(s.localRefs, 2u);
    EXPECT_EQ(s.localHits, 1u);
    EXPECT_EQ(node.probeState(0x0000), protocol::LineState::Exclusive);
}

TEST(SamplingTest, SampledConflictChainMatchesFullDirectory)
{
    // Same-set conflict behaviour on a sampled set must match the
    // unsampled node exactly: distinct tags, LRU victims, the lot.
    NodeController full(0, sampledNode(0));
    NodeController sampled(1, sampledNode(2));

    // 2MB 4-way 128B -> 4096 sets; same-set stride 512KB. Set 0 is
    // sampled under any shift.
    const std::uint64_t stride = 512 * KiB;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.nextBounded(16) * stride;
        full.processLocal(readTxn(addr), bus::SnoopResponse::None);
        sampled.processLocal(readTxn(addr), bus::SnoopResponse::None);
    }
    const auto a = full.stats();
    const auto b = sampled.stats();
    EXPECT_EQ(a.localHits, b.localHits);
    EXPECT_EQ(a.localMisses, b.localMisses);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.evictionsClean, b.evictionsClean);
}

TEST(SamplingTest, MissRatioEstimatorTracksFullDirectory)
{
    // Uniform traffic: the sampled estimate must sit close to the
    // full measurement.
    NodeController full(0, sampledNode(0));
    NodeController sampled(1, sampledNode(3));
    Rng rng(17);
    for (int i = 0; i < 400000; ++i) {
        const Addr addr = rng.nextBounded(1 << 16) * 128;
        const auto txn = readTxn(addr, static_cast<CpuId>(i % 4));
        full.processLocal(txn, bus::SnoopResponse::None);
        sampled.processLocal(txn, bus::SnoopResponse::None);
    }
    EXPECT_GT(sampled.unsampledRefs(), 0u);
    EXPECT_NEAR(sampled.stats().missRatio(), full.stats().missRatio(),
                0.02);
}

TEST(SamplingTest, SamplingStretchesBudgetPast8GB)
{
    // 8GB at 128B lines exactly fills the 256MB budget; shift 2 makes
    // room with 4x margin (a "32GB-equivalent" emulation).
    BoardConfig cfg;
    NodeConfig node;
    node.cache = cache::CacheConfig{8 * GiB, 8, 128,
                                    cache::ReplacementPolicy::LRU};
    node.cpus = {0, 1, 2, 3, 4, 5, 6, 7};
    node.setSamplingShift = 2;
    cfg.nodes.push_back(node);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SamplingTest, ValidationRejectsDegenerateSampling)
{
    BoardConfig cfg;
    NodeConfig node;
    node.cache = cache::CacheConfig{2 * MiB, 8, 16 * KiB,
                                    cache::ReplacementPolicy::LRU};
    node.cpus = {0};
    node.setSamplingShift = 6; // 16 sets >> 6 == 0
    cfg.nodes.push_back(node);
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg.nodes[0].setSamplingShift = 20;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SamplingTest, RemoteSnoopsRespectSampling)
{
    NodeController node(0, sampledNode(2));
    node.processLocal(readTxn(0x0000), bus::SnoopResponse::None);
    // Remote RWITM on an unsampled line: ignored.
    bus::BusTransaction remote = readTxn(128, 9);
    remote.op = bus::BusOp::Rwitm;
    EXPECT_EQ(node.snoopRemote(remote), bus::SnoopResponse::None);
    EXPECT_EQ(node.unsampledRefs(), 1u);
    // Remote RWITM on the sampled line: invalidates.
    remote.addr = 0x0000;
    node.snoopRemote(remote);
    EXPECT_EQ(node.probeState(0x0000), protocol::LineState::Invalid);
}

} // namespace
} // namespace memories::ies
