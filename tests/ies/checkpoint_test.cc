/**
 * @file
 * Directory checkpoint/restore tests: the workload-positioning
 * capability the hardware board lacked (paper §4.2 vs Embra).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.hh"
#include "common/random.hh"
#include "ies/board.hh"
#include "ies/console.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    return t;
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "board_state_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".ies";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(CheckpointTest, SaveAndRestoreRoundTripsDirectories)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(2, 4, smallCache()));
    board.plugInto(bus);

    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        bus.issue(txn(rng.nextBounded(1 << 14) * 128,
                      rng.nextBool(0.3) ? bus::BusOp::Rwitm
                                        : bus::BusOp::Read,
                      static_cast<CpuId>(rng.nextBounded(8))));
        bus.tick(5);
    }
    board.drainAll();
    board.saveState(path_);

    const auto occ0 = board.node(0).directoryOccupancy();
    const auto occ1 = board.node(1).directoryOccupancy();
    const auto probe_state = board.node(0).probeState(0x0000);

    // A second board restores into the same contents.
    MemoriesBoard restored(makeUniformBoard(2, 4, smallCache()));
    restored.loadState(path_);
    EXPECT_EQ(restored.node(0).directoryOccupancy(), occ0);
    EXPECT_EQ(restored.node(1).directoryOccupancy(), occ1);
    EXPECT_EQ(restored.node(0).probeState(0x0000), probe_state);

    // Every line of the original is present with the same state.
    board.node(0).exportDirectory(
        [&](Addr addr, cache::LineStateRaw state) {
            EXPECT_EQ(static_cast<cache::LineStateRaw>(
                          restored.node(0).probeState(addr)),
                      state);
        });
}

TEST_F(CheckpointTest, RestoreRejectsGeometryMismatch)
{
    bus::Bus6xx bus;
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    board.saveState(path_);

    MemoriesBoard wrong_count(makeUniformBoard(2, 4, smallCache()));
    EXPECT_THROW(wrong_count.loadState(path_), FatalError);

    MemoriesBoard wrong_geometry(makeUniformBoard(
        1, 8,
        cache::CacheConfig{4 * MiB, 4, 128,
                           cache::ReplacementPolicy::LRU}));
    EXPECT_THROW(wrong_geometry.loadState(path_), FatalError);
}

TEST_F(CheckpointTest, RestoreRejectsGarbageFiles)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[32] = "definitely not a state file";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    MemoriesBoard board(makeUniformBoard(1, 8, smallCache()));
    EXPECT_THROW(board.loadState(path_), FatalError);
    EXPECT_THROW(board.loadState("/nonexistent/state.ies"),
                 FatalError);
}

TEST_F(CheckpointTest, WarmRestoreSkipsColdStart)
{
    // Measure miss ratio over the same traffic window from a cold
    // board vs a warm-restored board: the restored one must hit.
    auto traffic = [](MemoriesBoard &board, bus::Bus6xx &bus) {
        Rng rng(42);
        for (int i = 0; i < 20000; ++i) {
            bus.issue(txn(rng.nextBounded(4096) * 128, bus::BusOp::Read,
                          static_cast<CpuId>(rng.nextBounded(8))));
            bus.tick(5);
        }
        board.drainAll();
    };

    bus::Bus6xx warm_bus;
    MemoriesBoard warm(makeUniformBoard(1, 8, smallCache()));
    warm.plugInto(warm_bus);
    traffic(warm, warm_bus); // warmup pass
    warm.saveState(path_);

    bus::Bus6xx cold_bus;
    MemoriesBoard cold(makeUniformBoard(1, 8, smallCache()));
    cold.plugInto(cold_bus);

    bus::Bus6xx restored_bus;
    MemoriesBoard restored(makeUniformBoard(1, 8, smallCache()));
    restored.loadState(path_);
    // The IESCKPT restore brings the warmup counters back too; clear
    // them so the miss ratio below covers the measured window only.
    restored.clearCounters();
    restored.plugInto(restored_bus);

    traffic(cold, cold_bus);
    traffic(restored, restored_bus);
    EXPECT_LT(restored.node(0).stats().missRatio(),
              cold.node(0).stats().missRatio());
    EXPECT_LT(restored.node(0).stats().missRatio(), 0.02);
}

TEST_F(CheckpointTest, ConsoleCommands)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    EXPECT_NE(console.execute("save-state " + path_).find("error:"),
              std::string::npos); // requires init
    console.execute("init");
    bus.issue(txn(0x1000, bus::BusOp::Read, 0));
    console.board()->drainAll();
    EXPECT_NE(console.execute("save-state " + path_).find("saved"),
              std::string::npos);
    console.execute("reset");
    EXPECT_EQ(console.board()->node(0).directoryOccupancy(), 0u);
    EXPECT_NE(console.execute("load-state " + path_).find("restored"),
              std::string::npos);
    EXPECT_EQ(console.board()->node(0).directoryOccupancy(), 1u);
}

} // namespace
} // namespace memories::ies
