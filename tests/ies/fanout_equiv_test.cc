/**
 * @file
 * Golden equivalence suite for the fan-out engine: a board fed through
 * ExperimentFleet must produce *bit-identical* node counters to the
 * same board plugged directly into the host bus — for every
 * configuration in the sweep, for 1/2/8 worker threads, and through
 * the offline trace-replay path.
 *
 * The serial baselines re-run the identical workload seed once per
 * configuration (the hardware board's one-config-per-run methodology);
 * the fleet runs it once for all configurations. Equality of every
 * counter in every node's CounterBank is the proof that the fan-out
 * ring preserves the committed-tenure order per board.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "host/machine.hh"
#include "ies/board.hh"
#include "ies/fanout.hh"
#include "workload/synthetic.hh"

namespace memories::ies
{
namespace
{

constexpr std::uint64_t kRefs = 120'000;
constexpr std::uint64_t kWorkloadSeed = 11;
constexpr std::uint64_t kBoardSeed = 99;

host::HostConfig
testHost()
{
    host::HostConfig cfg;
    cfg.numCpus = 8;
    // Small host L2s so plenty of traffic reaches the bus, paced to
    // the paper's 2-20% utilization band so the boards never overflow
    // their transaction buffers (overflow is the documented point of
    // serial/fleet divergence).
    cfg.l2 = cache::CacheConfig{512 * KiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.cyclesPerRef = 6;
    return cfg;
}

std::unique_ptr<workload::Workload>
testWorkload()
{
    return std::make_unique<workload::ZipfWorkload>(8, 4096, 4096, 0.8,
                                                    0.3, kWorkloadSeed);
}

/** A heterogeneous 4-configuration sweep: sizes, ways, protocols. */
std::vector<BoardConfig>
sweepConfigs()
{
    using cache::CacheConfig;
    using cache::ReplacementPolicy;
    std::vector<BoardConfig> cfgs;
    cfgs.push_back(makeUniformBoard(
        2, 4, CacheConfig{2 * MiB, 4, 128, ReplacementPolicy::LRU},
        "MESI"));
    cfgs.push_back(makeUniformBoard(
        2, 4, CacheConfig{4 * MiB, 8, 128, ReplacementPolicy::LRU},
        "MOESI"));
    cfgs.push_back(makeUniformBoard(
        2, 4, CacheConfig{8 * MiB, 1, 128, ReplacementPolicy::LRU},
        "MSI"));
    cfgs.push_back(makeUniformBoard(
        4, 2, CacheConfig{16 * MiB, 4, 128, ReplacementPolicy::LRU},
        "MESI"));
    return cfgs;
}

/** Every node counter plus directory occupancy, rendered bit-for-bit. */
std::string
fingerprint(const MemoriesBoard &board)
{
    std::ostringstream os;
    for (std::size_t n = 0; n < board.numNodes(); ++n) {
        os << "node " << n << "\n";
        board.node(n).counters().snapshot(
            [&os](const memories::CounterSample &s) {
                os << s.name << " " << s.value << "\n";
            });
        os << "occupancy " << board.node(n).directoryOccupancy()
           << "\n";
    }
    return os.str();
}

struct SerialBaseline
{
    std::vector<std::string> fingerprints; //!< one per configuration
    std::uint64_t committed = 0; //!< committed tenures per run (equal)
    std::string tracePath;       //!< committed stream of run 0
};

/** One direct-plugged run per configuration over the same workload. */
const SerialBaseline &
serialBaseline()
{
    static const SerialBaseline baseline = [] {
        SerialBaseline out;
        out.tracePath = ::testing::TempDir() + "fanout_equiv.trace";
        const auto cfgs = sweepConfigs();
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            BoardConfig cfg = cfgs[i];
            if (i == 0)
                cfg.traceCapture = true; // capture the committed stream
            auto wl = testWorkload();
            host::HostMachine machine(testHost(), *wl);
            auto board = MemoriesBoard::make(cfg, kBoardSeed);
            board->plugInto(machine.bus());
            machine.run(kRefs);
            board->drainAll();
            EXPECT_EQ(board->retriesPosted(), 0u)
                << "test traffic must stay below buffer overflow";
            out.fingerprints.push_back(fingerprint(*board));
            out.committed = board->globalCounters().valueByName(
                "global.tenures.committed");
            if (i == 0) {
                EXPECT_NE(board->captureBuffer(), nullptr);
                if (board->captureBuffer() != nullptr) {
                    EXPECT_EQ(board->captureBuffer()->dropped(), 0u);
                    board->captureBuffer()->dumpToFile(out.tracePath);
                }
            }
        }
        return out;
    }();
    return baseline;
}

class FanoutEquivTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FanoutEquivTest, LiveFleetMatchesSerialBitExact)
{
    const std::size_t workers = GetParam();
    const auto &baseline = serialBaseline();
    const auto cfgs = sweepConfigs();

    auto wl = testWorkload();
    host::HostMachine machine(testHost(), *wl);
    ExperimentFleet fleet;
    for (const auto &cfg : cfgs)
        fleet.addExperiment(cfg, kBoardSeed);
    fleet.attach(machine.bus());
    EXPECT_EQ(machine.bus().observerCount(), 1u);
    fleet.start(workers);
    machine.run(kRefs);
    fleet.finish();
    EXPECT_EQ(machine.bus().observerCount(), 0u)
        << "finish() must detach the tap";

    // The tap saw exactly the committed stream the serial boards saw.
    EXPECT_EQ(fleet.eventsPublished(), baseline.committed);
    EXPECT_EQ(fleet.tapRetryDropped(), 0u);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(fleet.overflowDrops(i), 0u) << "board " << i;
        EXPECT_EQ(fleet.eventsConsumed(i), fleet.eventsPublished())
            << "board " << i;
        EXPECT_EQ(fingerprint(fleet.board(i)), baseline.fingerprints[i])
            << "config " << i << " diverged with " << workers
            << " workers";
    }
}

TEST_P(FanoutEquivTest, OfflineReplayMatchesSerialBitExact)
{
    const std::size_t workers = GetParam();
    const auto &baseline = serialBaseline();
    const auto cfgs = sweepConfigs();

    ExperimentFleet fleet;
    for (const auto &cfg : cfgs)
        fleet.addExperiment(cfg, kBoardSeed);
    fleet.replayFile(baseline.tracePath, workers);

    EXPECT_EQ(fleet.eventsPublished(), baseline.committed);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(fleet.overflowDrops(i), 0u) << "board " << i;
        EXPECT_EQ(fingerprint(fleet.board(i)), baseline.fingerprints[i])
            << "config " << i << " diverged in offline replay with "
            << workers << " workers";
    }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, FanoutEquivTest,
                         ::testing::Values<std::size_t>(1, 2, 8));

TEST(FanoutFleetTest, BackpressureSurfacesAsCountersNotPerturbation)
{
    // A one-slot ring forces the producer to stall behind the boards on
    // every event; the host stream must be byte-identical anyway.
    FleetOptions opts;
    opts.ringCapacity = 1;
    opts.batchSize = 1;

    // L2s off: nearly every reference commits, so back-to-back commits
    // land a cycle apart and the one-slot ring cannot keep up.
    host::HostConfig host_cfg = testHost();
    host_cfg.l2.reset();

    auto wl_tapped = testWorkload();
    host::HostMachine tapped(host_cfg, *wl_tapped);
    ExperimentFleet fleet(opts);
    fleet.addExperiment(sweepConfigs()[0], kBoardSeed);
    fleet.attach(tapped.bus());
    fleet.start(1);
    tapped.run(20'000);
    fleet.finish();

    auto wl_bare = testWorkload();
    host::HostMachine bare(host_cfg, *wl_bare);
    bare.run(20'000);

    EXPECT_EQ(tapped.bus().stats().tenures, bare.bus().stats().tenures);
    EXPECT_EQ(tapped.bus().stats().retries, bare.bus().stats().retries);
    EXPECT_GT(fleet.backpressureStalls(0), 0u)
        << "a one-slot ring must have stalled the producer";
}

TEST(FanoutFleetTest, FleetStatsDumpMentionsEveryBoard)
{
    ExperimentFleet fleet;
    fleet.addExperiment(sweepConfigs()[0], kBoardSeed, "tiny");
    fleet.addExperiment(sweepConfigs()[1], kBoardSeed);
    fleet.start(2);
    fleet.publish(bus::BusTransaction{0x1000, 0, bus::BusOp::Read, 0,
                                      128, false});
    fleet.finish();
    const std::string dump = fleet.dumpStats();
    EXPECT_NE(dump.find("tiny"), std::string::npos);
    EXPECT_NE(dump.find("experiment1"), std::string::npos);
    EXPECT_EQ(fleet.eventsConsumed(0), 1u);
    EXPECT_EQ(fleet.eventsConsumed(1), 1u);
}

} // namespace
} // namespace memories::ies
