#include "ies/hotspot.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::ies
{
namespace
{

HotSpotConfig
pageConfig()
{
    HotSpotConfig cfg;
    cfg.regionBase = 0x1'0000'0000ull;
    cfg.regionBytes = 64 * MiB;
    cfg.granularityBytes = 4096;
    return cfg;
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    return t;
}

TEST(HotSpotTest, RejectsBadConfigs)
{
    auto cfg = pageConfig();
    cfg.granularityBytes = 100; // not a power of two
    EXPECT_THROW(HotSpotTracker{cfg}, FatalError);

    cfg = pageConfig();
    cfg.granularityBytes = 64; // below line basis
    EXPECT_THROW(HotSpotTracker{cfg}, FatalError);

    cfg = pageConfig();
    cfg.regionBytes = 10000; // not a multiple of granularity
    EXPECT_THROW(HotSpotTracker{cfg}, FatalError);
}

TEST(HotSpotTest, EnforcesSdramBudget)
{
    HotSpotConfig cfg;
    cfg.regionBytes = 8 * GiB;
    cfg.granularityBytes = 128; // 64M cells x 8B = 512MB > 256MB
    EXPECT_THROW(HotSpotTracker{cfg}, FatalError);
    cfg.granularityBytes = 4096; // 2M cells x 8B = 16MB: fine
    EXPECT_NO_THROW(HotSpotTracker{cfg});
}

TEST(HotSpotTest, CountsReadsAndWritesPerPage)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);

    const Addr page = pageConfig().regionBase + 5 * 4096;
    bus.issue(txn(page, bus::BusOp::Read));
    bus.issue(txn(page + 100, bus::BusOp::Read));
    bus.issue(txn(page + 200, bus::BusOp::Rwitm));

    const auto entry = tracker.countsFor(page);
    EXPECT_EQ(entry.reads, 2u);
    EXPECT_EQ(entry.writes, 1u);
    EXPECT_EQ(entry.base, page);
}

TEST(HotSpotTest, IgnoresOutOfRegionTraffic)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);
    bus.issue(txn(0x1000, bus::BusOp::Read)); // below region
    EXPECT_EQ(tracker.tracked(), 0u);
    EXPECT_EQ(tracker.untracked(), 1u);
}

TEST(HotSpotTest, IgnoresFilteredOps)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);
    bus.issue(txn(pageConfig().regionBase, bus::BusOp::IoRead));
    EXPECT_EQ(tracker.tracked(), 0u);
    EXPECT_EQ(tracker.untracked(), 0u);
}

TEST(HotSpotTest, TopNFindsHottestPages)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);

    const Addr base = pageConfig().regionBase;
    for (int i = 0; i < 50; ++i)
        bus.issue(txn(base + 7 * 4096, bus::BusOp::Read));
    for (int i = 0; i < 20; ++i)
        bus.issue(txn(base + 3 * 4096, bus::BusOp::Rwitm));
    bus.issue(txn(base + 1 * 4096, bus::BusOp::Read));

    const auto top = tracker.topN(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].base, base + 7 * 4096);
    EXPECT_EQ(top[0].total(), 50u);
    EXPECT_EQ(top[1].base, base + 3 * 4096);
}

TEST(HotSpotTest, LineGranularityResolvesWithinPage)
{
    auto cfg = pageConfig();
    cfg.granularityBytes = 128;
    cfg.regionBytes = 1 * MiB;
    HotSpotTracker tracker(cfg);
    bus::Bus6xx bus;
    tracker.plugInto(bus);

    bus.issue(txn(cfg.regionBase + 0, bus::BusOp::Read));
    bus.issue(txn(cfg.regionBase + 128, bus::BusOp::Read));
    EXPECT_EQ(tracker.countsFor(cfg.regionBase).reads, 1u);
    EXPECT_EQ(tracker.countsFor(cfg.regionBase + 128).reads, 1u);
}

TEST(HotSpotTest, WritebacksCountAsWrites)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);
    bus.issue(txn(pageConfig().regionBase, bus::BusOp::WriteBack));
    EXPECT_EQ(tracker.countsFor(pageConfig().regionBase).writes, 1u);
}

TEST(HotSpotTest, ClearZeroesTable)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);
    bus.issue(txn(pageConfig().regionBase, bus::BusOp::Read));
    tracker.clear();
    EXPECT_EQ(tracker.tracked(), 0u);
    EXPECT_TRUE(tracker.topN(10).empty());
}

TEST(HotSpotTest, PassiveOnTheBus)
{
    HotSpotTracker tracker(pageConfig());
    bus::Bus6xx bus;
    tracker.plugInto(bus);
    EXPECT_EQ(bus.issue(txn(pageConfig().regionBase, bus::BusOp::Read)),
              bus::SnoopResponse::None);
}

} // namespace
} // namespace memories::ies
