/**
 * @file
 * FleetReport: the fan-out fidelity report must count every tenure a
 * board silently lost to transaction-buffer overflow and flag such
 * boards as lossy — a fleet replay has no host to honour the retry a
 * live board would have posted, so drops are the one serial/fleet
 * divergence and must never pass unnoticed.
 */

#include "ies/analysis.hh"

#include <gtest/gtest.h>

#include <string>

#include "ies/board.hh"
#include "ies/fanout.hh"

namespace memories::ies
{
namespace
{

cache::CacheConfig
smallCache()
{
    return cache::CacheConfig{2 * MiB, 4, 128,
                              cache::ReplacementPolicy::LRU};
}

bus::BusTransaction
readAt(Addr addr, Cycle cycle)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.cycle = cycle;
    t.op = bus::BusOp::Read;
    t.cpu = 0;
    return t;
}

/**
 * Publish @p events committed reads all at bus cycle 0: the paced
 * SDRAM drain earns no credits at cycle 0, so a board with an
 * N-entry buffer accepts exactly N and drops the rest.
 */
FleetReport
runLossyFleet(std::size_t events, std::size_t tiny_buffer)
{
    ExperimentFleet fleet;
    BoardConfig lossy = makeUniformBoard(1, 4, smallCache());
    lossy.bufferEntries = tiny_buffer;
    fleet.addExperiment(lossy, 1, "tiny");

    BoardConfig roomy = makeUniformBoard(1, 4, smallCache());
    fleet.addExperiment(roomy, 1, "roomy");

    fleet.start(2);
    for (std::size_t i = 0; i < events; ++i)
        fleet.publish(readAt(Addr{i} * 128, 0));
    fleet.finish();
    return FleetReport::capture(fleet);
}

TEST(FleetReportTest, CountsOverflowDropsPerBoard)
{
    const FleetReport report = runLossyFleet(20, 4);
    EXPECT_EQ(report.published, 20u);
    EXPECT_EQ(report.tapFiltered, 0u);
    EXPECT_EQ(report.tapRetryDropped, 0u);

    ASSERT_EQ(report.boards.size(), 2u);
    EXPECT_EQ(report.boards[0].label, "tiny");
    EXPECT_EQ(report.boards[0].consumed, 20u);
    EXPECT_EQ(report.boards[0].overflowDrops, 16u); // 20 − 4 slots
    EXPECT_EQ(report.boards[1].label, "roomy");
    EXPECT_EQ(report.boards[1].consumed, 20u);
    EXPECT_EQ(report.boards[1].overflowDrops, 0u);
    EXPECT_EQ(report.totalOverflowDrops(), 16u);
}

TEST(FleetReportTest, TextFlagsOnlyLossyBoards)
{
    const FleetReport report = runLossyFleet(20, 4);
    const std::string text = report.toText();
    EXPECT_NE(text.find("tiny: consumed 20 drops 16"),
              std::string::npos);
    EXPECT_NE(text.find("** lossy: this board saw 16 fewer tenures "
                        "than the host bus **"),
              std::string::npos);
    // The roomy board's line must carry no lossy marker.
    const auto roomy_at = text.find("roomy:");
    ASSERT_NE(roomy_at, std::string::npos);
    EXPECT_EQ(text.find("lossy", roomy_at), std::string::npos);
}

TEST(FleetReportTest, CsvHasHeaderAndOneRowPerBoard)
{
    const FleetReport report = runLossyFleet(20, 4);
    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("board,consumed,overflow_drops,"
                       "backpressure_stalls,capture_dropped,"
                       "lost_inflight,health,published,"
                       "tap_filtered,tap_retry_dropped,shards,"
                       "shard_skew\n"),
              std::string::npos);
    EXPECT_NE(csv.find("tiny,20,16,"), std::string::npos);
    EXPECT_NE(csv.find("roomy,20,0,"), std::string::npos);
}

TEST(FleetReportTest, LosslessFleetReportsZeroDrops)
{
    // Same traffic, default 512-entry buffers: nothing may be lost.
    const FleetReport report = runLossyFleet(20, 512);
    EXPECT_EQ(report.totalOverflowDrops(), 0u);
    EXPECT_EQ(report.toText().find("lossy"), std::string::npos);
}

} // namespace
} // namespace memories::ies
