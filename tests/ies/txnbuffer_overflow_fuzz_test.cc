/**
 * @file
 * Randomized fill/drain fuzzing of the TransactionBuffer around its
 * 512-entry board limit.
 *
 * The retry-on-overflow path is the only active behaviour the board has
 * (board.hh passivity contract), so it gets an adversarial workout:
 * random bursts of pushes, random time advances, paced and unpaced
 * drains — checked against a plain FIFO reference model for rejection
 * decisions, drain order, high-water mark and rejection counting.
 */

#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "bus/transaction.hh"
#include "ies/txnbuffer.hh"

namespace memories::ies
{
namespace
{

constexpr std::size_t kCapacity = 512; // the board's buffer depth
constexpr unsigned kThroughput = 42;   // % of bus bandwidth (paper 3.3)

bus::BusTransaction
stamped(std::uint64_t sequence, Cycle cycle)
{
    bus::BusTransaction txn;
    // Encode the push sequence number in the address so any FIFO
    // violation is visible in the drained stream.
    txn.addr = sequence << 7;
    txn.cycle = cycle;
    txn.op = (sequence % 3 == 0) ? bus::BusOp::WriteBack
                                 : bus::BusOp::Read;
    txn.cpu = static_cast<CpuId>(sequence % 8);
    return txn;
}

class TxnBufferOverflowFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TxnBufferOverflowFuzz, RandomFillDrainMatchesFifoModel)
{
    std::mt19937_64 rng(GetParam());
    TransactionBuffer buf(kCapacity, kThroughput);
    std::deque<std::uint64_t> model; // sequence numbers in FIFO order

    Cycle now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t rejected = 0;
    std::size_t high_water = 0;
    bool saw_overflow = false;
    bool saw_recovery_after_overflow = false;

    // Push-heavy schedule (half the steps are bursts, and bursts are
    // larger than the paced drain can retire) so runs repeatedly slam
    // into the 512-entry limit and recover from it.
    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t action = rng() % 8;
        switch (action < 4 ? 0 : static_cast<int>(action - 3)) {
          case 0: { // burst of pushes at the current cycle
            const std::size_t burst = 1 + rng() % 128;
            for (std::size_t i = 0; i < burst; ++i) {
                const bool was_full = model.size() >= kCapacity;
                const bool ok = buf.push(stamped(next_seq, now));
                ASSERT_EQ(ok, !was_full)
                    << "push must fail exactly at capacity (seq "
                    << next_seq << ")";
                if (ok) {
                    model.push_back(next_seq);
                    high_water = std::max(high_water, model.size());
                    if (saw_overflow)
                        saw_recovery_after_overflow = true;
                } else {
                    ++rejected;
                    saw_overflow = true;
                }
                ++next_seq;
            }
            break;
          }
          case 1: // let bus time pass
            now += rng() % 120;
            break;
          case 2: { // paced drain of whatever is due
            while (auto txn = buf.drain(now)) {
                ASSERT_FALSE(model.empty());
                ASSERT_EQ(txn->addr >> 7, model.front())
                    << "paced drain broke FIFO order";
                model.pop_front();
            }
            break;
          }
          case 3:
          case 4: { // occasional partial unpaced drain (end-of-run)
            const std::size_t n = rng() % 32;
            for (std::size_t i = 0; i < n; ++i) {
                auto txn = buf.drainUnpaced();
                if (!txn) {
                    ASSERT_TRUE(model.empty());
                    break;
                }
                ASSERT_FALSE(model.empty());
                ASSERT_EQ(txn->addr >> 7, model.front())
                    << "unpaced drain broke FIFO order";
                model.pop_front();
            }
            break;
          }
        }
        ASSERT_EQ(buf.size(), model.size());
        ASSERT_EQ(buf.rejected(), rejected);
    }

    // Final flush: everything still buffered comes out in FIFO order.
    while (auto txn = buf.drainUnpaced()) {
        ASSERT_FALSE(model.empty());
        ASSERT_EQ(txn->addr >> 7, model.front());
        model.pop_front();
    }
    ASSERT_TRUE(model.empty());
    ASSERT_TRUE(buf.empty());
    EXPECT_EQ(buf.highWater(), high_water);

    // The fuzz schedule is tuned to cross the overflow boundary: the
    // retry path must both trigger and recover within one run.
    EXPECT_TRUE(saw_overflow) << "fuzz never filled the buffer";
    EXPECT_TRUE(saw_recovery_after_overflow)
        << "pushes after a drain following overflow must succeed again";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnBufferOverflowFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

} // namespace
} // namespace memories::ies
