#include "ies/console.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "trace/tracefile.hh"

namespace memories::ies
{
namespace
{

bus::BusTransaction
readTxn(Addr addr, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = bus::BusOp::Read;
    t.cpu = cpu;
    return t;
}

TEST(ConsoleTest, ConfiguresAndInitializesBoard)
{
    bus::Bus6xx bus;
    Console console(bus);
    EXPECT_FALSE(console.initialized());

    EXPECT_NE(console.execute("node 0 cache 64MB 4 128B LRU")
                  .find("64MB"), std::string::npos);
    console.execute("node 0 cpus 0,1,2,3");
    console.execute("node 0 protocol MESI");
    const auto reply = console.execute("init");
    EXPECT_NE(reply.find("1 node"), std::string::npos);
    EXPECT_TRUE(console.initialized());
    ASSERT_NE(console.board(), nullptr);
    EXPECT_EQ(console.board()->numNodes(), 1u);
}

TEST(ConsoleTest, StatsReflectTraffic)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    bus.issue(readTxn(0x1000, 0));
    bus.tick(1000);
    bus.issue(readTxn(0x1000, 1));
    console.board()->drainAll();

    const auto stats = console.execute("stats");
    EXPECT_NE(stats.find("refs 2"), std::string::npos);
    EXPECT_NE(stats.find("hits 1"), std::string::npos);
}

TEST(ConsoleTest, CountersCommandDumpsRawNames)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("init");
    const auto counters = console.execute("counters");
    EXPECT_NE(counters.find("node0.local.READ.hit"), std::string::npos);
    EXPECT_NE(counters.find("global.tenures.memory"),
              std::string::npos);
}

TEST(ConsoleTest, ErrorsComeBackAsText)
{
    bus::Bus6xx bus;
    Console console(bus);
    EXPECT_NE(console.execute("bogus").find("error:"),
              std::string::npos);
    EXPECT_NE(console.execute("stats").find("error:"),
              std::string::npos); // no board yet
    EXPECT_NE(console.execute("node 0 cache 1KB 4 128B").find("error:"),
              std::string::npos); // below Table 2 range
}

TEST(ConsoleTest, ConfigAfterInitIsRejected)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("init");
    EXPECT_NE(console.execute("node 0 cache 4MB 4 128B").find("error:"),
              std::string::npos);
}

TEST(ConsoleTest, ClearAndReset)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("init");
    bus.issue(readTxn(0x1000, 0));
    console.board()->drainAll();

    console.execute("clear");
    EXPECT_EQ(console.board()->node(0).stats().localRefs, 0u);
    EXPECT_EQ(console.board()->node(0).directoryOccupancy(), 1u);

    console.execute("reset");
    EXPECT_EQ(console.board()->node(0).directoryOccupancy(), 0u);
}

TEST(ConsoleTest, MultiNodeMultiProtocol)
{
    // Section 3.2: different state tables on different node
    // controllers in the same measurement.
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("node 0 protocol MESI");
    console.execute("node 1 cache 2MB 4 128B");
    console.execute("node 1 cpus 2,3");
    console.execute("node 1 protocol MOESI");
    console.execute("init");
    EXPECT_EQ(console.board()->node(0).config().protocol.name(), "MESI");
    EXPECT_EQ(console.board()->node(1).config().protocol.name(),
              "MOESI");
}

TEST(ConsoleTest, CaptureAndDumpTrace)
{
    const std::string path = ::testing::TempDir() + "console_trace.ies";
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("capture 1024");
    console.execute("init");

    bus.issue(readTxn(0x1000, 0));
    bus.issue(readTxn(0x2000, 0));
    console.board()->drainAll();

    const auto reply = console.execute("dump-trace " + path);
    EXPECT_NE(reply.find("2 records"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ConsoleTest, ShutdownDetaches)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0");
    console.execute("init");
    EXPECT_EQ(bus.snooperCount(), 1u);
    console.execute("shutdown");
    EXPECT_EQ(bus.snooperCount(), 0u);
    EXPECT_FALSE(console.initialized());
}

TEST(ConsoleTest, HelpListsCommands)
{
    bus::Bus6xx bus;
    Console console(bus);
    const auto help = console.execute("help");
    EXPECT_NE(help.find("init"), std::string::npos);
    EXPECT_NE(help.find("stats"), std::string::npos);
}

TEST(ConsoleTest, MonitorShowsLiveWindows)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    EXPECT_NE(console.execute("monitor start 1000")
                  .find("monitoring every 1000 bus cycles"),
              std::string::npos);
    EXPECT_NE(console.execute("monitor").find("no window closed yet"),
              std::string::npos);

    bus.issue(readTxn(0x1000, 0));
    bus.tick(2500); // crosses at least two window boundaries

    const auto view = console.execute("monitor");
    EXPECT_NE(view.find("window"), std::string::npos);
    EXPECT_NE(view.find("utilization"), std::string::npos);
    EXPECT_NE(view.find("node0: refs"), std::string::npos);

    EXPECT_NE(console.execute("monitor stop").find("monitor stopped"),
              std::string::npos);
    // The bus must no longer drive a sampler.
    EXPECT_NO_THROW(bus.tick(5000));
}

TEST(ConsoleTest, MonitorRequiresBoardAndSingleSession)
{
    bus::Bus6xx bus;
    Console console(bus);
    EXPECT_NE(console.execute("monitor start 1000").find("error"),
              std::string::npos);

    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");
    console.execute("monitor start 1000");
    EXPECT_NE(console.execute("monitor start 500").find("error"),
              std::string::npos);
    EXPECT_NE(console.execute("monitor stop").find("stopped"),
              std::string::npos);
    EXPECT_NE(console.execute("monitor stop").find("error"),
              std::string::npos);
}

TEST(ConsoleTest, MonitorStartsMidSessionWithoutBackfill)
{
    // Starting the monitor after bus time has advanced must not emit
    // the empty windows since cycle 0 — the first closed window begins
    // at the attach-time boundary.
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    bus.tick(10'000);
    console.execute("monitor start 1000");
    bus.issue(readTxn(0x2000, 0));
    bus.tick(1'500); // to cycle 11500: closes [10000,11000) only

    const auto view = console.execute("monitor");
    EXPECT_NE(view.find("[10000, 11000)"), std::string::npos)
        << view;
}

TEST(ConsoleTest, TraceCommandFamilyDrivesFlightRecorder)
{
    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    EXPECT_EQ(console.flightRecorder(), nullptr);
    console.execute("trace start 1024");
    ASSERT_NE(console.flightRecorder(), nullptr);

    bus.issue(readTxn(0x1000, 0));
    bus.tick(1000);
    bus.issue(readTxn(0x1000, 1));
    console.board()->drainAll();
    console.execute("trace mark phase one done");

    const auto status = console.execute("trace status");
    EXPECT_NE(status.find("recorded"), std::string::npos) << status;
    const auto shown = console.execute("trace show 64");
    EXPECT_NE(shown.find("issue"), std::string::npos) << shown;
    EXPECT_NE(shown.find("phase one done"), std::string::npos) << shown;

    const std::string dumpPath =
        ::testing::TempDir() + "console_trace_dump.iesspan";
    const std::string jsonPath =
        ::testing::TempDir() + "console_trace_dump.json";
    console.execute("trace dump " + dumpPath);
    console.execute("trace chrome " + jsonPath);
    {
        trace::LifecycleReader reader(dumpPath);
        EXPECT_GT(reader.count(), 0u);
    }
    {
        std::FILE *f = std::fopen(jsonPath.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char head[16] = {};
        EXPECT_GT(std::fread(head, 1, sizeof(head), f), 0u);
        std::fclose(f);
        EXPECT_EQ(head[0], '{');
    }
    std::remove(dumpPath.c_str());
    std::remove(jsonPath.c_str());

    console.execute("trace stop");
    EXPECT_EQ(console.flightRecorder(), nullptr);
    EXPECT_EQ(bus.flightRecorder(), nullptr);
}

TEST(ConsoleTest, TraceAutodumpWritesRingOnAnomaly)
{
    // A 2-entry transaction buffer plus back-to-back issues forces an
    // overflow anomaly; the armed autodump must leave the lifecycle
    // history on disk without any further operator action.
    const std::string dumpPath =
        ::testing::TempDir() + "console_autodump.iesspan";
    std::remove(dumpPath.c_str());

    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("buffer 2");
    console.execute("init");
    console.execute("trace start 1024");
    console.execute("trace autodump " + dumpPath);

    for (int i = 0; i < 8; ++i)
        bus.issue(readTxn(0x1000u + 128u * i, 0));

    ASSERT_NE(console.flightRecorder(), nullptr);
    EXPECT_GE(console.flightRecorder()->anomalies(), 1u);
    trace::LifecycleReader reader(dumpPath);
    EXPECT_GT(reader.count(), 0u);
    std::remove(dumpPath.c_str());
}

TEST(ConsoleTest, FaultCommandFamilyArmsAndDisarms)
{
    const std::string planPath =
        ::testing::TempDir() + "console_fault.plan";
    {
        std::FILE *f = std::fopen(planPath.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char text[] = "dropreply at 1\n";
        std::fwrite(text, 1, sizeof(text) - 1, f);
        std::fclose(f);
    }

    bus::Bus6xx bus;
    Console console(bus);
    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    // Arming requires a loaded plan; loading requires a real file.
    EXPECT_NE(console.execute("fault arm").find("error:"),
              std::string::npos);
    EXPECT_NE(console.execute("fault load /not/there.plan")
                  .find("error:"),
              std::string::npos);
    EXPECT_NE(console.execute("fault status").find("no fault plan"),
              std::string::npos);

    EXPECT_NE(console.execute("fault load " + planPath)
                  .find("fault plan loaded (1 spec)"),
              std::string::npos);
    EXPECT_NE(console.execute("fault status").find("dropreply"),
              std::string::npos);
    EXPECT_NE(console.execute("fault arm 7")
                  .find("armed (1 spec, seed 7)"),
              std::string::npos);
    ASSERT_NE(console.faultInjector(), nullptr);
    // Reloading or re-arming while armed is rejected.
    EXPECT_NE(console.execute("fault load " + planPath).find("error:"),
              std::string::npos);
    EXPECT_NE(console.execute("fault arm").find("error:"),
              std::string::npos);

    // The scheduled fault fires on the first live tenure.
    bus.issue(readTxn(0x1000, 0));
    bus.tick(1000);
    bus.issue(readTxn(0x1000, 1));
    console.board()->drainAll();
    EXPECT_EQ(console.board()->globalCounters().valueByName(
                  "global.tenures.fault_dropped"),
              1u);
    const auto status = console.execute("fault status");
    EXPECT_NE(status.find("seed 7"), std::string::npos) << status;
    EXPECT_NE(status.find("1 injected"), std::string::npos) << status;

    EXPECT_NE(console.execute("fault disarm").find("disarmed"),
              std::string::npos);
    EXPECT_EQ(console.faultInjector(), nullptr);
    // The plan survives disarm: re-arming is immediate.
    EXPECT_NE(console.execute("fault arm").find("armed"),
              std::string::npos);
    // Shutdown disarms rather than leaving a dangling snooper.
    console.execute("shutdown");
    EXPECT_EQ(console.faultInjector(), nullptr);
    std::remove(planPath.c_str());
}

TEST(ConsoleTest, HealthCommandFamilyStagesPolicyBeforeInit)
{
    bus::Bus6xx bus;
    Console console(bus);

    EXPECT_NE(console.execute("health").find("staged health policy:"),
              std::string::npos);
    console.execute("health on");
    console.execute("health degrade-window 4");
    console.execute("health quarantine-storms 3");
    EXPECT_NE(console.execute("health bogus-key 1").find("error:"),
              std::string::npos);

    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    const auto status = console.execute("health status");
    EXPECT_NE(status.find("health healthy"), std::string::npos)
        << status;
    EXPECT_NE(status.find("lost-inflight 0"), std::string::npos)
        << status;
    // The policy is frozen once the board exists.
    EXPECT_NE(console.execute("health off").find("error:"),
              std::string::npos);
    EXPECT_NE(console.execute("health degrade-window 9").find("error:"),
              std::string::npos);
}

TEST(ConsoleTest, ProfCommandFamilyDrivesProfiler)
{
    bus::Bus6xx bus;
    Console console(bus);
    // Before init, start must refuse and read-outs must explain.
    EXPECT_NE(console.execute("prof start").find("error:"),
              std::string::npos);
    EXPECT_NE(console.execute("prof").find("error:"),
              std::string::npos);

    console.execute("node 0 cache 2MB 4 128B");
    console.execute("node 0 cpus 0,1");
    console.execute("init");

    EXPECT_EQ(console.profiler(), nullptr);
    EXPECT_NE(console.execute("prof start 4096")
                  .find("profiler attached (4096 spans)"),
              std::string::npos);
    ASSERT_NE(console.profiler(), nullptr);
    EXPECT_NE(console.execute("prof start").find("error:"),
              std::string::npos);

    // Drive traffic through the batch path so the hooks fire; spread
    // the cycles out so the paced buffer actually dispatches work.
    std::vector<bus::BusTransaction> txns;
    for (std::uint64_t i = 0; i < 64; ++i) {
        auto t = readTxn(0x1000 + i * 128, i % 2);
        t.cycle = i * 100;
        txns.push_back(t);
    }
    console.board()->feedBatch(txns);
    console.board()->drainAll();

    const auto show = console.execute("prof show");
    EXPECT_NE(show.find("feed_batch"), std::string::npos) << show;
    EXPECT_NE(show.find("shard 0:"), std::string::npos) << show;

    const std::string folded = ::testing::TempDir() + "console.folded";
    EXPECT_NE(console.execute("prof dump " + folded)
                  .find("wrote folded flamegraph stacks"),
              std::string::npos);
    const std::string chrome = ::testing::TempDir() + "console.chrome";
    const auto reply = console.execute("prof chrome " + chrome);
    EXPECT_NE(reply.find("profiler spans as Chrome trace JSON"),
              std::string::npos)
        << reply;
    std::remove(folded.c_str());
    std::remove(chrome.c_str());

    EXPECT_NE(console.execute("prof stop").find("profiler detached"),
              std::string::npos);
    EXPECT_EQ(console.profiler(), nullptr);
    EXPECT_EQ(console.board()->profiler(), nullptr);
}

} // namespace
} // namespace memories::ies
