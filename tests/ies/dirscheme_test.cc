/**
 * @file
 * Directory-scheme tests: coarse-vector and limited-pointer sharer
 * representations must preserve correctness (no missed invalidation,
 * ever) while paying measured over-invalidations for their
 * imprecision.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ies/numa.hh"

namespace memories::ies
{
namespace
{

NumaConfig
numaWith(DirectoryScheme scheme)
{
    NumaConfig cfg;
    cfg.numNodes = 4;
    cfg.cpusPerNode = 2;
    cfg.l3 = cache::CacheConfig{2 * MiB, 4, 128,
                                cache::ReplacementPolicy::LRU};
    cfg.sparseEntries = 1 << 10;
    cfg.sparseAssoc = 4;
    cfg.scheme = scheme;
    return cfg;
}

bus::BusTransaction
txn(Addr addr, bus::BusOp op, CpuId cpu)
{
    bus::BusTransaction t;
    t.addr = addr;
    t.op = op;
    t.cpu = cpu;
    return t;
}

TEST(DirSchemeTest, SchemeNames)
{
    EXPECT_STREQ(directorySchemeName(DirectoryScheme::FullMap),
                 "full-map");
    EXPECT_STREQ(directorySchemeName(DirectoryScheme::CoarseVector),
                 "coarse-vector");
    EXPECT_STREQ(directorySchemeName(DirectoryScheme::LimitedPointer),
                 "limited-pointer");
}

TEST(DirSchemeTest, CoarseGroupValidation)
{
    auto cfg = numaWith(DirectoryScheme::CoarseVector);
    cfg.coarseGroupNodes = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.coarseGroupNodes = 5;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.coarseGroupNodes = 2;
    EXPECT_NO_THROW(cfg.validate());
}

class SchemeCorrectness
    : public ::testing::TestWithParam<DirectoryScheme>
{
};

TEST_P(SchemeCorrectness, WriteInvalidatesEverySharerNoMatterWhat)
{
    // Correctness: after a write by node 2, no other node's L3 may
    // still hold the line — under ANY representation.
    NumaEmulator numa(numaWith(GetParam()));
    bus::Bus6xx bus;
    numa.plugInto(bus);

    bus.issue(txn(0x2000, bus::BusOp::Read, 0)); // node 0
    bus.issue(txn(0x2000, bus::BusOp::Read, 2)); // node 1
    bus.issue(txn(0x2000, bus::BusOp::Read, 6)); // node 3
    bus.issue(txn(0x2000, bus::BusOp::Rwitm, 4)); // node 2 writes

    EXPECT_FALSE(numa.l3Resident(0, 0x2000));
    EXPECT_FALSE(numa.l3Resident(1, 0x2000));
    EXPECT_FALSE(numa.l3Resident(3, 0x2000));
    EXPECT_TRUE(numa.l3Resident(2, 0x2000));
}

TEST_P(SchemeCorrectness, SparseEvictionPurgesEverySharer)
{
    auto cfg = numaWith(GetParam());
    cfg.sparseEntries = 4;
    cfg.sparseAssoc = 4;
    NumaEmulator numa(cfg);
    bus::Bus6xx bus;
    numa.plugInto(bus);

    const Addr victim = 0; // home 0
    bus.issue(txn(victim, bus::BusOp::Read, 0));
    bus.issue(txn(victim, bus::BusOp::Read, 2));
    // Fill home 0's single sparse set until the victim is evicted.
    const Addr stride = 4 * 4096; // same home
    for (int i = 1; i <= 4; ++i)
        bus.issue(txn(i * stride, bus::BusOp::Read, 0));

    EXPECT_FALSE(numa.l3Resident(0, victim));
    EXPECT_FALSE(numa.l3Resident(1, victim));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeCorrectness,
    ::testing::Values(DirectoryScheme::FullMap,
                      DirectoryScheme::CoarseVector,
                      DirectoryScheme::LimitedPointer));

TEST(DirSchemeTest, FullMapNeverOverInvalidates)
{
    NumaEmulator numa(numaWith(DirectoryScheme::FullMap));
    bus::Bus6xx bus;
    numa.plugInto(bus);
    bus.issue(txn(0x2000, bus::BusOp::Read, 0));
    bus.issue(txn(0x2000, bus::BusOp::Read, 2));
    bus.issue(txn(0x2000, bus::BusOp::Rwitm, 4));
    EXPECT_EQ(numa.stats().overInvalidations, 0u);
    EXPECT_EQ(numa.stats().writeInvalidations, 2u);
}

TEST(DirSchemeTest, CoarseVectorOverInvalidatesGroupMates)
{
    // Nodes 0 and 1 share a group: a line held only by node 0 gets an
    // invalidation aimed at the whole group — node 1's is wasted.
    auto cfg = numaWith(DirectoryScheme::CoarseVector);
    cfg.coarseGroupNodes = 2;
    NumaEmulator numa(cfg);
    bus::Bus6xx bus;
    numa.plugInto(bus);

    bus.issue(txn(0x2000, bus::BusOp::Read, 0));  // node 0 only
    bus.issue(txn(0x2000, bus::BusOp::Rwitm, 4)); // node 2 writes
    const auto s = numa.stats();
    EXPECT_EQ(s.writeInvalidations, 1u);  // node 0 actually held it
    EXPECT_EQ(s.overInvalidations, 1u);   // node 1 did not
}

TEST(DirSchemeTest, LimitedPointerExactForSingleSharer)
{
    NumaEmulator numa(numaWith(DirectoryScheme::LimitedPointer));
    bus::Bus6xx bus;
    numa.plugInto(bus);
    bus.issue(txn(0x2000, bus::BusOp::Read, 2));  // node 1 only
    bus.issue(txn(0x2000, bus::BusOp::Rwitm, 4)); // node 2 writes
    const auto s = numa.stats();
    EXPECT_EQ(s.writeInvalidations, 1u);
    EXPECT_EQ(s.overInvalidations, 0u); // pointer was exact
}

TEST(DirSchemeTest, LimitedPointerBroadcastsAfterOverflow)
{
    NumaEmulator numa(numaWith(DirectoryScheme::LimitedPointer));
    bus::Bus6xx bus;
    numa.plugInto(bus);
    bus.issue(txn(0x2000, bus::BusOp::Read, 0)); // node 0
    bus.issue(txn(0x2000, bus::BusOp::Read, 2)); // node 1: overflow
    bus.issue(txn(0x2000, bus::BusOp::Rwitm, 6)); // node 3 writes
    const auto s = numa.stats();
    // Broadcast reached nodes 0,1,2: two real, one wasted (node 2).
    EXPECT_EQ(s.writeInvalidations, 2u);
    EXPECT_EQ(s.overInvalidations, 1u);
}

} // namespace
} // namespace memories::ies
