#include "workload/splash.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::workload
{
namespace
{

SplashParams
tinyParams()
{
    SplashParams p;
    p.threads = 4;
    p.footprintBytes = 64 * MiB;
    p.sharedBytes = 4 * MiB;
    p.windowBytes = 1 * MiB;
    p.windowAdvanceRefs = 1000;
    return p;
}

TEST(SplashTest, RejectsDegenerateConfigs)
{
    SplashParams p = tinyParams();
    p.threads = 0;
    EXPECT_THROW(SplashWorkload{p}, FatalError);

    p = tinyParams();
    p.sharedBytes = p.footprintBytes;
    EXPECT_THROW(SplashWorkload{p}, FatalError);

    p = tinyParams();
    p.windowAdvanceRefs = 0;
    EXPECT_THROW(SplashWorkload{p}, FatalError);
}

TEST(SplashTest, AddressesStayInFootprint)
{
    SplashWorkload wl(tinyParams());
    for (int i = 0; i < 20000; ++i) {
        const auto ref = wl.next(i % 4);
        EXPECT_GE(ref.addr, workloadBaseAddr);
        EXPECT_LT(ref.addr, workloadBaseAddr + 64 * MiB);
    }
}

TEST(SplashTest, SharedRegionTouchedByAllThreads)
{
    SplashParams p = tinyParams();
    p.sharedFrac = 0.5;
    SplashWorkload wl(p);
    std::vector<int> shared_hits(4, 0);
    for (int i = 0; i < 20000; ++i) {
        const unsigned tid = i % 4;
        const auto ref = wl.next(tid);
        if (ref.addr < workloadBaseAddr + p.sharedBytes)
            ++shared_hits[tid];
    }
    for (int h : shared_hits)
        EXPECT_GT(h, 1500);
}

TEST(SplashTest, PartitionAccessesRespectWindow)
{
    SplashParams p = tinyParams();
    p.sharedFrac = 0.0;
    p.windowAdvanceRefs = 1u << 30; // window never advances
    SplashWorkload wl(p);
    const std::uint64_t partition =
        (p.footprintBytes - p.sharedBytes) / p.threads;
    const Addr base = workloadBaseAddr + p.sharedBytes;
    for (int i = 0; i < 5000; ++i) {
        const auto ref = wl.next(0);
        EXPECT_GE(ref.addr, base);
        EXPECT_LT(ref.addr, base + partition);
        // Window pinned at base: offsets stay within windowBytes.
        EXPECT_LT(ref.addr - base, p.windowBytes);
    }
}

TEST(SplashTest, WindowAdvancesExposeNewData)
{
    SplashParams p = tinyParams();
    p.sharedFrac = 0.0;
    p.seqFrac = 0.0;
    p.windowBytes = 64 * KiB;
    p.windowAdvanceRefs = 100;
    SplashWorkload wl(p);
    Addr max_seen = 0;
    for (int i = 0; i < 100; ++i)
        max_seen = std::max(max_seen, wl.next(0).addr);
    const Addr early_max = max_seen;
    for (int i = 0; i < 5000; ++i)
        max_seen = std::max(max_seen, wl.next(0).addr);
    EXPECT_GT(max_seen, early_max + p.windowBytes);
}

TEST(SplashTest, PaperSuiteHasFiveApps)
{
    const auto suite = paperSplashSuite(8, 1.0 / 64.0);
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "FMM");
    EXPECT_EQ(suite[1].name, "FFT");
    EXPECT_EQ(suite[2].name, "OCEAN");
    EXPECT_EQ(suite[3].name, "WATER");
    EXPECT_EQ(suite[4].name, "BARNES");
}

TEST(SplashTest, PaperFootprintsMatchTable5)
{
    // Table 5: FMM 8.34GB, FFT 12.58GB, Ocean 14.5GB, Water 1.38GB,
    // Barnes 3.1GB. Our generators must land within ~15%.
    const auto suite = paperSplashSuite(8, 1.0);
    const double expected_gb[] = {8.34, 12.58, 14.5, 1.38, 3.1};
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const double gb =
            static_cast<double>(suite[i].footprintBytes) / (1ull << 30);
        EXPECT_NEAR(gb, expected_gb[i], expected_gb[i] * 0.15)
            << suite[i].name;
    }
}

TEST(SplashTest, ScaleShrinksFootprints)
{
    const auto full = fftParams(24, 8, 1.0);
    const auto scaled = fftParams(24, 8, 1.0 / 16.0);
    EXPECT_NEAR(static_cast<double>(scaled.footprintBytes),
                static_cast<double>(full.footprintBytes) / 16.0,
                static_cast<double>(full.footprintBytes) * 0.01);
}

TEST(SplashTest, Splash2SuiteIsMuchSmaller)
{
    const auto small = splash2SizeSuite(8, 1.0);
    const auto large = paperSplashSuite(8, 1.0);
    for (std::size_t i = 0; i < small.size(); ++i)
        EXPECT_LT(small[i].footprintBytes, large[i].footprintBytes / 10)
            << small[i].name;
}

TEST(SplashTest, FmmSharesMoreThanFft)
{
    // The paper singles out FMM's intervention traffic; its shared
    // write activity must exceed FFT's by construction.
    const auto fmm = fmmParams(4'000'000, 8, 1.0 / 64.0);
    const auto fft = fftParams(28, 8, 1.0 / 64.0);
    EXPECT_GT(fmm.sharedFrac * fmm.sharedWriteFrac,
              3 * fft.sharedFrac * fft.sharedWriteFrac);
}

TEST(SplashTest, WindowClampedToPartition)
{
    SplashParams p = tinyParams();
    p.windowBytes = 1 * GiB; // larger than the partition
    SplashWorkload wl(p);
    EXPECT_LE(wl.params().windowBytes,
              (p.footprintBytes - p.sharedBytes) / p.threads);
}

TEST(SplashTest, RefsPerInstructionPositive)
{
    for (const auto &params : paperSplashSuite(8, 1.0 / 64.0)) {
        SplashWorkload wl(params);
        EXPECT_GT(wl.refsPerInstruction(), 0.0);
        EXPECT_LE(wl.refsPerInstruction(), 1.0);
    }
}

} // namespace
} // namespace memories::workload
