/**
 * @file
 * Determinism property: every workload type must generate an
 * identical reference stream for an identical seed, and different
 * streams for different seeds — the case studies compare cache
 * configurations over identical traffic.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>

#include "host/machine.hh"
#include "ies/fanout.hh"
#include "workload/dss.hh"
#include "workload/oltp.hh"
#include "workload/splash.hh"
#include "workload/synthetic.hh"
#include "workload/web.hh"
#include "workload/workload.hh"

namespace memories::workload
{
namespace
{

using Factory = std::function<std::unique_ptr<Workload>(std::uint64_t)>;

struct NamedFactory
{
    const char *name;
    Factory make;
};

std::vector<NamedFactory>
factories()
{
    return {
        {"uniform",
         [](std::uint64_t seed) {
             return std::make_unique<UniformWorkload>(4, 8 * MiB, 0.3,
                                                      seed);
         }},
        {"zipf",
         [](std::uint64_t seed) {
             return std::make_unique<ZipfWorkload>(4, 1 << 12, 4096,
                                                   0.8, 0.3, seed);
         }},
        {"strided",
         [](std::uint64_t seed) {
             return std::make_unique<StridedWorkload>(4, 8 * MiB, 128,
                                                      0.3, seed);
         }},
        {"oltp",
         [](std::uint64_t seed) {
             OltpParams p;
             p.threads = 4;
             p.dbBytes = 64 * MiB;
             p.journaling = true;
             p.journalPeriodRefs = 5000;
             p.journalBurstRefs = 500;
             p.seed = seed;
             return std::make_unique<OltpWorkload>(p);
         }},
        {"dss",
         [](std::uint64_t seed) {
             DssParams p;
             p.threads = 4;
             p.factBytes = 64 * MiB;
             p.dimBytes = 8 * MiB;
             p.seed = seed;
             return std::make_unique<DssWorkload>(p);
         }},
        {"splash",
         [](std::uint64_t seed) {
             auto p = fmmParams(100'000, 4, 1.0 / 8.0);
             p.seed = seed;
             return std::make_unique<SplashWorkload>(p);
         }},
        {"web",
         [](std::uint64_t seed) {
             WebParams p;
             p.threads = 4;
             p.docBytes = 64 * MiB;
             p.seed = seed;
             return std::make_unique<WebWorkload>(p);
         }},
    };
}

class DeterminismTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DeterminismTest, SameSeedSameStream)
{
    const auto factory = factories()[GetParam()];
    auto a = factory.make(42);
    auto b = factory.make(42);
    for (int i = 0; i < 20000; ++i) {
        const unsigned tid = i % 4;
        const auto ra = a->next(tid);
        const auto rb = b->next(tid);
        ASSERT_EQ(ra.addr, rb.addr)
            << factory.name << " diverged at ref " << i;
        ASSERT_EQ(ra.write, rb.write)
            << factory.name << " write flag diverged at ref " << i;
    }
}

TEST_P(DeterminismTest, DifferentSeedsDiverge)
{
    const auto factory = factories()[GetParam()];
    auto a = factory.make(1);
    auto b = factory.make(2);
    int same = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const unsigned tid = i % 4;
        same += a->next(tid).addr == b->next(tid).addr;
    }
    // Strided is cursor-driven (seed only affects the write flags), so
    // allow full address overlap there; everything else must diverge.
    if (std::string(factory.name) != "strided") {
        EXPECT_LT(same, n / 2) << factory.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DeterminismTest,
                         ::testing::Range<std::size_t>(0, 7));

/**
 * Run one workload through an ExperimentFleet with @p workers threads
 * and render every board counter (fleet-level determinism must hold
 * all the way down to the emulated directories, not just the reference
 * stream).
 */
std::string
fleetFingerprint(std::size_t workers, std::uint64_t seed)
{
    auto wl = factories()[1].make(seed); // zipf: shared hot blocks
    host::HostConfig host_cfg;
    host_cfg.numCpus = 4;
    host_cfg.l2 = cache::CacheConfig{256 * KiB, 4, 128,
                                     cache::ReplacementPolicy::LRU};
    host_cfg.cyclesPerRef = 6; // stay in the paper's utilization band
    host::HostMachine machine(host_cfg, *wl);

    ies::ExperimentFleet fleet;
    for (std::uint64_t mb : {2, 4, 8}) {
        fleet.addExperiment(
            ies::makeUniformBoard(
                2, 2,
                cache::CacheConfig{mb * MiB, 4, 128,
                                   cache::ReplacementPolicy::LRU}),
            seed);
    }
    fleet.attach(machine.bus());
    fleet.start(workers);
    machine.run(60'000);
    fleet.finish();

    std::ostringstream os;
    for (std::size_t b = 0; b < fleet.numExperiments(); ++b) {
        os << "board " << b << "\n";
        for (std::size_t n = 0; n < fleet.board(b).numNodes(); ++n) {
            fleet.board(b).node(n).counters().snapshot(
                [&os](const memories::CounterSample &s) {
                    os << s.name << " " << s.value << "\n";
                });
        }
    }
    return os.str();
}

/**
 * Two fleet runs with the same seed must produce identical counters
 * even with different worker counts — this is what catches any
 * iteration-order dependence hiding in the fan-out ring.
 */
TEST(FleetDeterminismTest, SameSeedSameCountersAcrossWorkerCounts)
{
    const std::string one = fleetFingerprint(1, 42);
    const std::string two = fleetFingerprint(2, 42);
    const std::string three = fleetFingerprint(3, 42);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, three);
}

TEST(FleetDeterminismTest, SameSeedSameCountersAcrossRepeats)
{
    EXPECT_EQ(fleetFingerprint(2, 7), fleetFingerprint(2, 7));
}

TEST(FleetDeterminismTest, DifferentSeedsDiverge)
{
    EXPECT_NE(fleetFingerprint(2, 1), fleetFingerprint(2, 2));
}

} // namespace
} // namespace memories::workload
