#include "workload/mix.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/oltp.hh"
#include "workload/synthetic.hh"

namespace memories::workload
{
namespace
{

std::unique_ptr<Workload>
uniform(unsigned threads, std::uint64_t footprint, std::uint64_t seed)
{
    return std::make_unique<UniformWorkload>(threads, footprint, 0.2,
                                             seed);
}

TEST(MixTest, RejectsDegenerateConfigs)
{
    EXPECT_THROW(
        MixWorkload mix(std::vector<std::unique_ptr<Workload>>{}),
        FatalError);

    std::vector<std::unique_ptr<Workload>> too_many;
    too_many.push_back(uniform(12, 1 * MiB, 1));
    too_many.push_back(uniform(12, 1 * MiB, 2));
    EXPECT_THROW(MixWorkload mix(std::move(too_many)), FatalError);
}

TEST(MixTest, ThreadsSumAcrossParts)
{
    std::vector<std::unique_ptr<Workload>> parts;
    parts.push_back(uniform(3, 1 * MiB, 1));
    parts.push_back(uniform(5, 2 * MiB, 2));
    MixWorkload mix(std::move(parts));
    EXPECT_EQ(mix.threads(), 8u);
    EXPECT_EQ(mix.footprintBytes(), 3 * MiB);
    EXPECT_EQ(mix.parts(), 2u);
}

TEST(MixTest, ThreadsRouteToTheirPart)
{
    std::vector<std::unique_ptr<Workload>> parts;
    parts.push_back(uniform(2, 1 * MiB, 1));
    parts.push_back(uniform(2, 1 * MiB, 2));
    MixWorkload mix(std::move(parts));
    EXPECT_EQ(&mix.partOf(0), &mix.partOf(1));
    EXPECT_EQ(&mix.partOf(2), &mix.partOf(3));
    EXPECT_NE(&mix.partOf(0), &mix.partOf(2));
}

TEST(MixTest, PartsOccupyDisjointAddressWindows)
{
    std::vector<std::unique_ptr<Workload>> parts;
    parts.push_back(uniform(2, 4 * MiB, 1));
    parts.push_back(uniform(2, 4 * MiB, 2));
    MixWorkload mix(std::move(parts));
    for (int i = 0; i < 5000; ++i) {
        const auto a = mix.next(0).addr; // part 0
        const auto b = mix.next(2).addr; // part 1
        EXPECT_LT(a, Addr{1} << 40);
        EXPECT_GE(b, Addr{1} << 40);
        EXPECT_LT(b, Addr{2} << 40);
    }
}

TEST(MixTest, NameListsParts)
{
    std::vector<std::unique_ptr<Workload>> parts;
    OltpParams oltp;
    oltp.threads = 4;
    oltp.dbBytes = 64 * MiB;
    parts.push_back(std::make_unique<OltpWorkload>(oltp));
    parts.push_back(uniform(4, 1 * MiB, 3));
    MixWorkload mix(std::move(parts));
    EXPECT_NE(mix.name().find("tpcc-like"), std::string::npos);
    EXPECT_NE(mix.name().find("uniform"), std::string::npos);
}

TEST(MixTest, RefsPerInstructionIsThreadWeighted)
{
    // OLTP (0.30) on 4 threads + uniform (0.35) on 4 threads -> 0.325.
    std::vector<std::unique_ptr<Workload>> parts;
    OltpParams oltp;
    oltp.threads = 4;
    oltp.dbBytes = 64 * MiB;
    parts.push_back(std::make_unique<OltpWorkload>(oltp));
    parts.push_back(uniform(4, 1 * MiB, 3));
    MixWorkload mix(std::move(parts));
    EXPECT_NEAR(mix.refsPerInstruction(), 0.325, 1e-9);
}

} // namespace
} // namespace memories::workload
