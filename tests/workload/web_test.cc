#include "workload/web.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::workload
{
namespace
{

WebParams
smallParams()
{
    WebParams p;
    p.threads = 4;
    p.docBytes = 64 * MiB;
    p.metadataBytes = 1 * MiB;
    return p;
}

TEST(WebTest, RejectsDegenerateConfigs)
{
    auto p = smallParams();
    p.threads = 0;
    EXPECT_THROW(WebWorkload{p}, FatalError);

    p = smallParams();
    p.docBytes = 64 * KiB; // too few documents
    EXPECT_THROW(WebWorkload{p}, FatalError);

    p = smallParams();
    p.connectionFrac = 0.7;
    p.metadataFrac = 0.4; // sums past 1
    EXPECT_THROW(WebWorkload{p}, FatalError);
}

TEST(WebTest, AddressesStayInFootprint)
{
    WebWorkload wl(smallParams());
    const auto limit = workloadBaseAddr + wl.footprintBytes() +
                       4 * smallParams().meanDocBytes;
    for (int i = 0; i < 50000; ++i) {
        const auto ref = wl.next(i % 4);
        EXPECT_GE(ref.addr, workloadBaseAddr);
        EXPECT_LT(ref.addr, limit);
    }
}

TEST(WebTest, DocumentStreamingIsSequential)
{
    auto p = smallParams();
    p.connectionFrac = 0.0;
    p.metadataFrac = 0.0;
    WebWorkload wl(p);
    Addr prev = wl.next(0).addr;
    int sequential = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const Addr cur = wl.next(0).addr;
        sequential += cur == prev + 64;
        prev = cur;
    }
    // Nearly every reference advances the stream; breaks only at
    // request boundaries.
    EXPECT_GT(sequential, n * 8 / 10);
}

TEST(WebTest, RequestsAdvanceWithStreaming)
{
    auto p = smallParams();
    p.connectionFrac = 0.0;
    p.metadataFrac = 0.0;
    WebWorkload wl(p);
    const auto before = wl.requestsServed();
    for (int i = 0; i < 100000; ++i)
        wl.next(0);
    EXPECT_GT(wl.requestsServed(), before + 10);
}

TEST(WebTest, PopularDocumentsDominate)
{
    auto p = smallParams();
    p.connectionFrac = 0.0;
    p.metadataFrac = 0.0;
    p.theta = 0.9;
    WebWorkload wl(p);
    const Addr doc_base = workloadBaseAddr + p.metadataBytes +
                          p.threads * p.connectionBytes;
    const Addr hot_end = doc_base + (p.docBytes / 100);
    std::uint64_t hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hot += wl.next(i % 4).addr < hot_end;
    // Top ~1% of the cache draws far more than 1% of traffic.
    EXPECT_GT(hot, static_cast<std::uint64_t>(n) / 8);
}

TEST(WebTest, ConnectionStateIsThreadPrivate)
{
    auto p = smallParams();
    p.connectionFrac = 1.0;
    p.metadataFrac = 0.0;
    WebWorkload wl(p);
    const Addr conn_base = workloadBaseAddr + p.metadataBytes;
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 200; ++i) {
            const auto ref = wl.next(t);
            EXPECT_GE(ref.addr, conn_base + t * p.connectionBytes);
            EXPECT_LT(ref.addr, conn_base + (t + 1) * p.connectionBytes);
        }
    }
}

TEST(WebTest, DocumentReadsAreNeverWrites)
{
    auto p = smallParams();
    p.connectionFrac = 0.0;
    p.metadataFrac = 0.0;
    WebWorkload wl(p);
    for (int i = 0; i < 5000; ++i)
        EXPECT_FALSE(wl.next(i % 4).write);
}

TEST(WebTest, MetadataSeesWrites)
{
    auto p = smallParams();
    p.connectionFrac = 0.0;
    p.metadataFrac = 1.0;
    p.metadataWriteFrac = 0.5;
    WebWorkload wl(p);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += wl.next(i % 4).write;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.5, 0.05);
}

} // namespace
} // namespace memories::workload
