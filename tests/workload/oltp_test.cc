#include "workload/oltp.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::workload
{
namespace
{

OltpParams
smallParams()
{
    OltpParams p;
    p.threads = 4;
    p.dbBytes = 64 * MiB;
    return p;
}

TEST(OltpTest, RejectsDegenerateConfigs)
{
    OltpParams p = smallParams();
    p.threads = 0;
    EXPECT_THROW(OltpWorkload{p}, FatalError);

    p = smallParams();
    p.dbBytes = 4096;
    EXPECT_THROW(OltpWorkload{p}, FatalError);

    p = smallParams();
    p.sharedFrac = 1.5;
    EXPECT_THROW(OltpWorkload{p}, FatalError);
}

TEST(OltpTest, AddressesStayInFootprint)
{
    OltpWorkload wl(smallParams());
    for (int i = 0; i < 20000; ++i) {
        const auto ref = wl.next(i % 4);
        EXPECT_GE(ref.addr, workloadBaseAddr);
        EXPECT_LT(ref.addr, workloadBaseAddr + 64 * MiB);
    }
}

TEST(OltpTest, SharedPoolIsSharedAcrossThreads)
{
    // Every thread must touch the shared pool (front of the address
    // map); private partitions must not overlap.
    OltpParams p = smallParams();
    p.sharedFrac = 0.5;
    OltpWorkload wl(p);
    const Addr shared_end =
        workloadBaseAddr +
        static_cast<Addr>((64 * MiB / 4096) * p.sharedPoolFrac) * 4096;

    std::vector<std::uint64_t> shared_hits(4, 0);
    for (int i = 0; i < 40000; ++i) {
        const unsigned tid = i % 4;
        const auto ref = wl.next(tid);
        if (ref.addr < shared_end)
            ++shared_hits[tid];
    }
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(shared_hits[t], 2000u) << "thread " << t;
}

TEST(OltpTest, PrivateRegionsAreThreadAffine)
{
    OltpParams p = smallParams();
    p.sharedFrac = 0.0; // everything private
    OltpWorkload wl(p);
    const std::uint64_t shared_pages =
        static_cast<std::uint64_t>((p.dbBytes / p.pageBytes) *
                                   p.sharedPoolFrac);
    const std::uint64_t private_pages =
        (p.dbBytes / p.pageBytes - shared_pages) / p.threads;
    const Addr private_base =
        workloadBaseAddr + shared_pages * p.pageBytes;

    for (int i = 0; i < 10000; ++i) {
        const unsigned tid = i % 4;
        const auto ref = wl.next(tid);
        const Addr lo =
            private_base + tid * private_pages * p.pageBytes;
        const Addr hi = lo + private_pages * p.pageBytes;
        EXPECT_GE(ref.addr, lo);
        EXPECT_LT(ref.addr, hi);
    }
}

TEST(OltpTest, WriteFractionRoughlyRespected)
{
    OltpParams p = smallParams();
    p.writeFrac = 0.25;
    OltpWorkload wl(p);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += wl.next(i % 4).write;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.25, 0.03);
}

TEST(OltpTest, JournalingBurstsAreWritesBelowDatabase)
{
    OltpParams p = smallParams();
    p.journaling = true;
    p.journalPeriodRefs = 1000;
    p.journalBurstRefs = 100;
    p.journalBytes = 1 * MiB;
    OltpWorkload wl(p);

    int journal_refs = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool in_burst = wl.inJournalBurst();
        const auto ref = wl.next(i % 4);
        if (in_burst) {
            ++journal_refs;
            EXPECT_TRUE(ref.write);
            EXPECT_LT(ref.addr, workloadBaseAddr);
            EXPECT_GE(ref.addr, workloadBaseAddr - p.journalBytes);
        }
    }
    // 100 of every 1000 refs are journal activity.
    EXPECT_NEAR(journal_refs / 10000.0, 0.1, 0.02);
}

TEST(OltpTest, JournalCursorAdvancesMonotonically)
{
    OltpParams p = smallParams();
    p.journaling = true;
    p.journalPeriodRefs = 100;
    p.journalBurstRefs = 100; // always in burst
    p.journalBytes = 64 * MiB;
    OltpWorkload wl(p);
    Addr prev = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto ref = wl.next(0);
        if (i > 0) {
            EXPECT_GT(ref.addr, prev); // append-only until wrap
        }
        prev = ref.addr;
    }
}

TEST(OltpTest, JournalingDisabledMeansNoBursts)
{
    OltpWorkload wl(smallParams());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(wl.inJournalBurst());
        wl.next(0);
    }
}

TEST(OltpTest, FootprintIncludesJournal)
{
    OltpParams p = smallParams();
    EXPECT_EQ(OltpWorkload(p).footprintBytes(), p.dbBytes);
    p.journaling = true;
    EXPECT_EQ(OltpWorkload(p).footprintBytes(),
              p.dbBytes + p.journalBytes);
}

} // namespace
} // namespace memories::workload
