#include "workload/synthetic.hh"

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"

namespace memories::workload
{
namespace
{

TEST(UniformWorkloadTest, RejectsDegenerateConfig)
{
    EXPECT_THROW(UniformWorkload(0, 1 * MiB, 0.2), FatalError);
    EXPECT_THROW(UniformWorkload(4, 0, 0.2), FatalError);
}

TEST(UniformWorkloadTest, AddressesStayInFootprint)
{
    UniformWorkload wl(4, 1 * MiB, 0.3);
    for (int i = 0; i < 10000; ++i) {
        const auto ref = wl.next(i % 4);
        EXPECT_GE(ref.addr, workloadBaseAddr);
        EXPECT_LT(ref.addr, workloadBaseAddr + 1 * MiB);
    }
}

TEST(UniformWorkloadTest, WriteFractionRespected)
{
    UniformWorkload wl(1, 1 * MiB, 0.25, 42);
    int writes = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        writes += wl.next(0).write;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.25, 0.02);
}

TEST(UniformWorkloadTest, DeterministicAcrossRuns)
{
    UniformWorkload a(2, 1 * MiB, 0.3, 7), b(2, 1 * MiB, 0.3, 7);
    for (int i = 0; i < 1000; ++i) {
        const auto ra = a.next(i % 2), rb = b.next(i % 2);
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.write, rb.write);
    }
}

TEST(UniformWorkloadTest, ThreadsAreIndependentStreams)
{
    UniformWorkload wl(2, 64 * MiB, 0.0, 9);
    std::set<Addr> t0, t1;
    for (int i = 0; i < 100; ++i) {
        t0.insert(wl.next(0).addr);
        t1.insert(wl.next(1).addr);
    }
    // Two independent uniform streams over 64MB share ~no addresses.
    std::set<Addr> both;
    for (Addr a : t0)
        if (t1.count(a))
            both.insert(a);
    EXPECT_LT(both.size(), 3u);
}

TEST(ZipfWorkloadTest, HotBlockDominates)
{
    ZipfWorkload wl(1, 10000, 4096, 0.9, 0.2, 11);
    std::uint64_t hot = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const auto ref = wl.next(0);
        hot += ref.addr < workloadBaseAddr + 100 * 4096;
    }
    // Top 1% of blocks should draw far more than 1% of accesses.
    EXPECT_GT(hot, static_cast<std::uint64_t>(n) / 10);
}

TEST(ZipfWorkloadTest, FootprintIsBlocksTimesBytes)
{
    ZipfWorkload wl(2, 1000, 4096, 0.5, 0.2);
    EXPECT_EQ(wl.footprintBytes(), 1000u * 4096u);
}

TEST(StridedWorkloadTest, SequentialWithinPartition)
{
    StridedWorkload wl(2, 1 * MiB, 128, 0.0, 3);
    const Addr first = wl.next(0).addr;
    const Addr second = wl.next(0).addr;
    EXPECT_EQ(second, first + 128);
}

TEST(StridedWorkloadTest, PartitionsAreDisjoint)
{
    StridedWorkload wl(4, 1 * MiB, 128, 0.0);
    const std::uint64_t partition = 1 * MiB / 4;
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 100; ++i) {
            const auto ref = wl.next(t);
            EXPECT_GE(ref.addr, workloadBaseAddr + t * partition);
            EXPECT_LT(ref.addr, workloadBaseAddr + (t + 1) * partition);
        }
    }
}

TEST(StridedWorkloadTest, WrapsAtPartitionEnd)
{
    StridedWorkload wl(1, 1024, 128, 0.0); // 8 strides per partition
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i)
        seen.insert(wl.next(0).addr);
    EXPECT_LE(seen.size(), 8u); // revisits, never escapes
}

TEST(StridedWorkloadTest, RejectsStrideBeyondPartition)
{
    EXPECT_THROW(StridedWorkload(8, 1024, 512, 0.0), FatalError);
}

} // namespace
} // namespace memories::workload
