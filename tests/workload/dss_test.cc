#include "workload/dss.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::workload
{
namespace
{

DssParams
smallParams()
{
    DssParams p;
    p.threads = 4;
    p.factBytes = 64 * MiB;
    p.dimBytes = 8 * MiB;
    return p;
}

TEST(DssTest, RejectsDegenerateConfigs)
{
    DssParams p = smallParams();
    p.threads = 0;
    EXPECT_THROW(DssWorkload{p}, FatalError);

    p = smallParams();
    p.factBytes = 64; // partition < stride
    EXPECT_THROW(DssWorkload{p}, FatalError);
}

TEST(DssTest, AddressesStayInFootprint)
{
    DssWorkload wl(smallParams());
    for (int i = 0; i < 20000; ++i) {
        const auto ref = wl.next(i % 4);
        EXPECT_GE(ref.addr, workloadBaseAddr);
        EXPECT_LT(ref.addr, workloadBaseAddr + 72 * MiB);
    }
}

TEST(DssTest, ScansAreSequentialReads)
{
    DssParams p = smallParams();
    p.scanFrac = 1.0;
    DssWorkload wl(p);
    Addr prev = 0;
    for (int i = 0; i < 100; ++i) {
        const auto ref = wl.next(0);
        EXPECT_FALSE(ref.write);
        if (i > 0) {
            EXPECT_EQ(ref.addr, prev + p.scanStride);
        }
        prev = ref.addr;
    }
}

TEST(DssTest, ScanPartitionsAreDisjoint)
{
    DssParams p = smallParams();
    p.scanFrac = 1.0;
    DssWorkload wl(p);
    const std::uint64_t partition = p.factBytes / p.threads;
    const Addr fact_base = workloadBaseAddr + p.dimBytes;
    for (unsigned t = 0; t < p.threads; ++t) {
        for (int i = 0; i < 50; ++i) {
            const auto ref = wl.next(t);
            EXPECT_GE(ref.addr, fact_base + t * partition);
            EXPECT_LT(ref.addr, fact_base + (t + 1) * partition);
        }
    }
}

TEST(DssTest, ProbesLandInDimensionTables)
{
    DssParams p = smallParams();
    p.scanFrac = 0.0;
    DssWorkload wl(p);
    for (int i = 0; i < 5000; ++i) {
        const auto ref = wl.next(i % 4);
        EXPECT_LT(ref.addr, workloadBaseAddr + p.dimBytes);
    }
}

TEST(DssTest, ProbesAreSkewed)
{
    DssParams p = smallParams();
    p.scanFrac = 0.0;
    p.theta = 0.9;
    DssWorkload wl(p);
    std::uint64_t top = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const auto ref = wl.next(i % 4);
        top += ref.addr < workloadBaseAddr + p.dimBytes / 100;
    }
    EXPECT_GT(top, static_cast<std::uint64_t>(n) / 10);
}

TEST(DssTest, ReadMostly)
{
    DssWorkload wl(smallParams());
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += wl.next(i % 4).write;
    EXPECT_LT(writes / static_cast<double>(n), 0.05);
}

TEST(DssTest, FootprintSumsTables)
{
    const auto p = smallParams();
    EXPECT_EQ(DssWorkload(p).footprintBytes(),
              p.factBytes + p.dimBytes);
}

} // namespace
} // namespace memories::workload
