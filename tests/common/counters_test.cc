#include "common/counters.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories
{
namespace
{

TEST(Counter40Test, StartsAtZero)
{
    Counter40 c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter40Test, CountsIncrements)
{
    Counter40 c;
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter40Test, WrapsAt40Bits)
{
    // The board's counters are exactly 40 bits wide (paper section 3):
    // an increment past 2^40-1 must wrap, not saturate.
    Counter40 c;
    c.add(Counter40::mask);
    EXPECT_EQ(c.value(), Counter40::mask);
    c.add();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter40Test, LargeAddWrapsModulo)
{
    Counter40 c;
    c.add((std::uint64_t{1} << 40) + 7);
    EXPECT_EQ(c.value(), 7u);
}

TEST(Counter40Test, ClearResets)
{
    Counter40 c;
    c.add(100);
    c.clear();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter40Test, HoldsThirtyHoursAtTypicalUtilization)
{
    // Sanity-check the paper's sizing claim: at 20% utilization of a
    // 100MHz bus, a single event-class counter (an event class sees at
    // most about half the transactions) holds more than 30 hours.
    const double events_per_second = 1e8 * 0.20 * 0.5;
    const double seconds_to_wrap =
        static_cast<double>(std::uint64_t{1} << 40) / events_per_second;
    EXPECT_GT(seconds_to_wrap, 30.0 * 3600.0);
}

TEST(CounterBankTest, AddAndBump)
{
    CounterBank bank;
    auto h = bank.add("reads");
    bank.bump(h);
    bank.bump(h, 9);
    EXPECT_EQ(bank.value(h), 10u);
    EXPECT_EQ(bank.valueByName("reads"), 10u);
}

TEST(CounterBankTest, DuplicateNameReturnsSameHandle)
{
    CounterBank bank;
    auto h1 = bank.add("x");
    auto h2 = bank.add("x");
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(bank.size(), 1u);
}

TEST(CounterBankTest, HasAndHandle)
{
    CounterBank bank;
    bank.add("a");
    EXPECT_TRUE(bank.has("a"));
    EXPECT_FALSE(bank.has("b"));
    EXPECT_THROW(bank.handle("b"), FatalError);
}

TEST(CounterBankTest, ClearAllZeroesEverything)
{
    CounterBank bank;
    auto a = bank.add("a");
    auto b = bank.add("b");
    bank.bump(a, 5);
    bank.bump(b, 7);
    bank.clearAll();
    EXPECT_EQ(bank.value(a), 0u);
    EXPECT_EQ(bank.value(b), 0u);
}

TEST(CounterBankTest, DumpContainsNamesAndValues)
{
    CounterBank bank;
    bank.bump(bank.add("hits"), 3);
    const std::string dump = bank.dump();
    EXPECT_NE(dump.find("hits 3"), std::string::npos);
}

TEST(CounterBankTest, NamePreserved)
{
    CounterBank bank;
    auto h = bank.add("node0.local.READ.hit");
    EXPECT_EQ(bank.name(h), "node0.local.READ.hit");
}

TEST(Counter40Test, DeltaIsExactAcrossWrap)
{
    // A sampler reading 40-bit values across a wrap must see the true
    // movement: old value near the top, new value past zero.
    const std::uint64_t older = Counter40::mask - 4;
    const std::uint64_t newer = 10;
    EXPECT_EQ(Counter40::delta(newer, older), 15u);
    EXPECT_EQ(Counter40::delta(older, older), 0u);
    EXPECT_EQ(Counter40::delta(Counter40::mask, 0), Counter40::mask);
}

TEST(CounterBankTest, SnapshotReturnsRegistrationOrder)
{
    CounterBank bank;
    auto a = bank.add("alpha");
    bank.add("beta");
    bank.bump(a, 7);

    const std::vector<CounterSample> samples = bank.snapshot();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].name, "alpha");
    EXPECT_EQ(samples[0].handle, a);
    EXPECT_EQ(samples[0].value, 7u);
    EXPECT_EQ(samples[1].name, "beta");
    EXPECT_EQ(samples[1].value, 0u);
}

TEST(CounterBankTest, SnapshotVisitorSeesEveryCounter)
{
    CounterBank bank;
    bank.bump(bank.add("x"), 1);
    bank.bump(bank.add("y"), 2);
    std::uint64_t sum = 0;
    std::size_t count = 0;
    bank.snapshot([&](const CounterSample &s) {
        sum += s.value;
        ++count;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(sum, 3u);
}

TEST(CounterBankTest, SnapshotValuesAreWrapped40Bit)
{
    CounterBank bank;
    auto h = bank.add("wrapping");
    bank.bump(h, Counter40::mask);
    bank.bump(h, 2);
    const auto samples = bank.snapshot();
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].value, 1u);
}

TEST(CounterBankTest, AbsorbFoldsDeltasAndClearsThem)
{
    CounterBank bank;
    const auto hits = bank.add("hits");
    const auto misses = bank.add("misses");
    bank.bump(hits, 10);

    std::vector<Counter40> deltas(bank.size());
    deltas[hits].add(5);
    deltas[misses].add(3);
    bank.absorb(deltas);

    EXPECT_EQ(bank.value(hits), 15u);
    EXPECT_EQ(bank.value(misses), 3u);
    EXPECT_EQ(deltas[hits].value(), 0u);
    EXPECT_EQ(deltas[misses].value(), 0u);
}

TEST(CounterBankTest, AbsorbWrapsAt40BitsWhereNaiveSumDoesNot)
{
    // Merge-on-read regression: folding per-shard deltas into a bank
    // sitting near the 40-bit ceiling must wrap exactly as if every
    // event had bumped the bank directly. A naive 64-bit accumulation
    // of the same history keeps the high bits and reads back a
    // different (larger) value — the two must disagree for this test
    // to mean anything.
    CounterBank bank;
    const auto h = bank.add("wrapping");
    bank.bump(h, Counter40::mask - 1); // 2^40 - 2 events so far

    std::vector<Counter40> shardDelta(bank.size());
    shardDelta[h].add(7); // 7 more events observed by a shard

    const std::uint64_t naiveSum = bank.value(h) + shardDelta[h].value();
    bank.absorb(shardDelta);

    // (2^40 - 2 + 7) mod 2^40 == 5.
    EXPECT_EQ(bank.value(h), 5u);
    EXPECT_NE(bank.value(h), naiveSum);
    EXPECT_EQ(naiveSum, Counter40::mask + 6); // the bug absorb avoids
}

TEST(CounterBankTest, DumpMatchesSnapshotFormatting)
{
    // dump() is now a formatter over snapshot(); the legacy line shape
    // "name value\n" must be preserved for console users.
    CounterBank bank;
    bank.bump(bank.add("hits"), 3);
    bank.bump(bank.add("misses"), 4);
    EXPECT_EQ(bank.dump(), "hits 3\nmisses 4\n");
}

} // namespace
} // namespace memories
