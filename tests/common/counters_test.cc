#include "common/counters.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories
{
namespace
{

TEST(Counter40Test, StartsAtZero)
{
    Counter40 c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter40Test, CountsIncrements)
{
    Counter40 c;
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter40Test, WrapsAt40Bits)
{
    // The board's counters are exactly 40 bits wide (paper section 3):
    // an increment past 2^40-1 must wrap, not saturate.
    Counter40 c;
    c.add(Counter40::mask);
    EXPECT_EQ(c.value(), Counter40::mask);
    c.add();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter40Test, LargeAddWrapsModulo)
{
    Counter40 c;
    c.add((std::uint64_t{1} << 40) + 7);
    EXPECT_EQ(c.value(), 7u);
}

TEST(Counter40Test, ClearResets)
{
    Counter40 c;
    c.add(100);
    c.clear();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter40Test, HoldsThirtyHoursAtTypicalUtilization)
{
    // Sanity-check the paper's sizing claim: at 20% utilization of a
    // 100MHz bus, a single event-class counter (an event class sees at
    // most about half the transactions) holds more than 30 hours.
    const double events_per_second = 1e8 * 0.20 * 0.5;
    const double seconds_to_wrap =
        static_cast<double>(std::uint64_t{1} << 40) / events_per_second;
    EXPECT_GT(seconds_to_wrap, 30.0 * 3600.0);
}

TEST(CounterBankTest, AddAndBump)
{
    CounterBank bank;
    auto h = bank.add("reads");
    bank.bump(h);
    bank.bump(h, 9);
    EXPECT_EQ(bank.value(h), 10u);
    EXPECT_EQ(bank.valueByName("reads"), 10u);
}

TEST(CounterBankTest, DuplicateNameReturnsSameHandle)
{
    CounterBank bank;
    auto h1 = bank.add("x");
    auto h2 = bank.add("x");
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(bank.size(), 1u);
}

TEST(CounterBankTest, HasAndHandle)
{
    CounterBank bank;
    bank.add("a");
    EXPECT_TRUE(bank.has("a"));
    EXPECT_FALSE(bank.has("b"));
    EXPECT_THROW(bank.handle("b"), FatalError);
}

TEST(CounterBankTest, ClearAllZeroesEverything)
{
    CounterBank bank;
    auto a = bank.add("a");
    auto b = bank.add("b");
    bank.bump(a, 5);
    bank.bump(b, 7);
    bank.clearAll();
    EXPECT_EQ(bank.value(a), 0u);
    EXPECT_EQ(bank.value(b), 0u);
}

TEST(CounterBankTest, DumpContainsNamesAndValues)
{
    CounterBank bank;
    bank.bump(bank.add("hits"), 3);
    const std::string dump = bank.dump();
    EXPECT_NE(dump.find("hits 3"), std::string::npos);
}

TEST(CounterBankTest, NamePreserved)
{
    CounterBank bank;
    auto h = bank.add("node0.local.READ.hit");
    EXPECT_EQ(bank.name(h), "node0.local.READ.hit");
}

} // namespace
} // namespace memories
