#include "common/random.hh"

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"

namespace memories
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsUsable)
{
    Rng rng(0);
    EXPECT_NE(rng.next() | rng.next() | rng.next(), 0u);
}

TEST(RngTest, NextBoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, NextBoundedCoversRange)
{
    Rng rng(11);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBounded(8)];
    EXPECT_EQ(seen.size(), 8u);
    for (const auto &[value, count] : seen)
        EXPECT_GT(count, 800) << "value " << value << " underrepresented";
}

TEST(RngDeathTest, NextBoundedZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBounded(0), "nextBounded");
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, NextBoolMatchesProbability)
{
    Rng rng(5);
    int trues = 0;
    for (int i = 0; i < 100000; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(trues / 100000.0, 0.25, 0.02);
}

TEST(ZipfTest, RejectsDegenerateArguments)
{
    EXPECT_THROW(ZipfSampler(0, 0.5), FatalError);
    EXPECT_THROW(ZipfSampler(10, 1.0), FatalError);
    EXPECT_THROW(ZipfSampler(10, -0.1), FatalError);
}

TEST(ZipfTest, SamplesStayInRange)
{
    ZipfSampler zipf(1000, 0.8);
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(ZipfTest, RankZeroIsHottest)
{
    ZipfSampler zipf(10000, 0.9);
    Rng rng(13);
    std::uint64_t rank0 = 0, rank_mid = 0;
    for (int i = 0; i < 200000; ++i) {
        const auto r = zipf.sample(rng);
        rank0 += r == 0;
        rank_mid += r >= 5000 && r < 5001;
    }
    EXPECT_GT(rank0, 50u * std::max<std::uint64_t>(rank_mid, 1));
}

TEST(ZipfTest, ThetaZeroIsNearUniform)
{
    ZipfSampler zipf(100, 0.0);
    Rng rng(17);
    std::uint64_t low_half = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        low_half += zipf.sample(rng) < 50;
    EXPECT_NEAR(low_half / static_cast<double>(n), 0.5, 0.05);
}

TEST(ZipfTest, SkewConcentratesMass)
{
    // Higher theta concentrates more probability on the top ranks.
    Rng rng_a(19), rng_b(19);
    ZipfSampler mild(100000, 0.5), heavy(100000, 0.95);
    std::uint64_t mild_top = 0, heavy_top = 0;
    for (int i = 0; i < 50000; ++i) {
        mild_top += mild.sample(rng_a) < 100;
        heavy_top += heavy.sample(rng_b) < 100;
    }
    EXPECT_GT(heavy_top, mild_top * 2);
}

TEST(ZipfTest, HugePopulationConstructsQuickly)
{
    // Billion-item pools (the TPC-C page space) must not take O(n).
    ZipfSampler zipf(2'000'000'000ull, 0.8);
    Rng rng(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(zipf.sample(rng), 2'000'000'000ull);
}

} // namespace
} // namespace memories
