/**
 * @file
 * Additional IntervalSeries and Histogram behaviour pins: chunked
 * recording (how the benches feed counter deltas) and boundary
 * bucketing.
 */

#include "common/stats.hh"

#include <gtest/gtest.h>

namespace memories
{
namespace
{

TEST(IntervalSeriesChunkTest, OversizedChunkClosesOneInterval)
{
    // A single record() larger than the interval closes exactly one
    // point covering the whole chunk - the documented console-side
    // semantics when polling cumulative counters coarsely.
    IntervalSeries series(10);
    series.record(5, 25);
    EXPECT_EQ(series.points().size(), 1u);
    EXPECT_DOUBLE_EQ(series.points()[0], 0.2);
}

TEST(IntervalSeriesChunkTest, ExactBoundaryClosesInterval)
{
    IntervalSeries series(10);
    series.record(2, 10);
    ASSERT_EQ(series.points().size(), 1u);
    EXPECT_DOUBLE_EQ(series.points()[0], 0.2);
    series.finish();
    EXPECT_EQ(series.points().size(), 1u); // nothing pending
}

TEST(IntervalSeriesChunkTest, AccumulatesAcrossSmallRecords)
{
    IntervalSeries series(100);
    for (int i = 0; i < 99; ++i)
        series.record(0, 1);
    EXPECT_TRUE(series.points().empty());
    series.record(1, 1);
    ASSERT_EQ(series.points().size(), 1u);
    EXPECT_DOUBLE_EQ(series.points()[0], 0.01);
}

TEST(HistogramBoundaryTest, LowerEdgeInclusiveUpperExclusive)
{
    Histogram h(0.0, 10.0, 10);
    h.record(0.0);
    h.record(9.9999);
    h.record(10.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(HistogramBoundaryTest, SingleBucketCatchesRange)
{
    Histogram h(0.0, 1.0, 1);
    h.record(0.5);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(HistogramBoundaryTest, EmptyHistogramStats)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

} // namespace
} // namespace memories
