#include "common/logging.hh"

#include <gtest/gtest.h>

namespace memories
{
namespace
{

TEST(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(LoggingTest, FatalMessageConcatenates)
{
    try {
        fatal("size ", 42, " out of range [", 1, ", ", 8, "]");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "size 42 out of range [1, 8]");
    }
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    setLoggingQuiet(true);
    EXPECT_NO_THROW(warn("suspicious ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
    setLoggingQuiet(false);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(MEMORIES_PANIC("internal bug ", 7), "internal bug 7");
}

} // namespace
} // namespace memories
