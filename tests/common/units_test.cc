#include "common/units.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/types.hh"

namespace memories
{
namespace
{

TEST(UnitsTest, ParsesPlainBytes)
{
    EXPECT_EQ(parseByteSize("128"), 128u);
    EXPECT_EQ(parseByteSize("128B"), 128u);
}

TEST(UnitsTest, ParsesBinaryUnits)
{
    EXPECT_EQ(parseByteSize("2KB"), 2 * KiB);
    EXPECT_EQ(parseByteSize("64MB"), 64 * MiB);
    EXPECT_EQ(parseByteSize("8GB"), 8 * GiB);
    EXPECT_EQ(parseByteSize("16KiB"), 16 * KiB);
}

TEST(UnitsTest, RejectsGarbage)
{
    EXPECT_THROW(parseByteSize(""), FatalError);
    EXPECT_THROW(parseByteSize("MB"), FatalError);
    EXPECT_THROW(parseByteSize("12XB"), FatalError);
}

TEST(UnitsTest, FormatPicksLargestExactUnit)
{
    EXPECT_EQ(formatByteSize(8 * GiB), "8GB");
    EXPECT_EQ(formatByteSize(64 * MiB), "64MB");
    EXPECT_EQ(formatByteSize(2 * KiB), "2KB");
    EXPECT_EQ(formatByteSize(100), "100B");
    EXPECT_EQ(formatByteSize(1536), "1536B"); // not exactly 1.5KB
}

TEST(UnitsTest, RoundTrip)
{
    for (std::uint64_t v : {128ull, 2048ull, 64ull * MiB, 8ull * GiB})
        EXPECT_EQ(parseByteSize(formatByteSize(v)), v);
}

TEST(UnitsTest, FormatSecondsRanges)
{
    EXPECT_NE(formatSeconds(3.28e-3).find("ms"), std::string::npos);
    EXPECT_NE(formatSeconds(1.0).find("s"), std::string::npos);
    EXPECT_NE(formatSeconds(1000.0).find("min"), std::string::npos);
    EXPECT_NE(formatSeconds(13 * 3600.0).find("hours"),
              std::string::npos);
    EXPECT_NE(formatSeconds(3 * 86400.0).find("days"), std::string::npos);
}

} // namespace
} // namespace memories
