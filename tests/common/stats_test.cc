#include "common/stats.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories
{
namespace
{

TEST(RatioTest, ZeroDenominatorIsZero)
{
    EXPECT_EQ(ratio(5, 0), 0.0);
}

TEST(RatioTest, ComputesFraction)
{
    EXPECT_DOUBLE_EQ(ratio(1, 4), 0.25);
}

TEST(HistogramTest, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
}

TEST(HistogramTest, BucketsValues)
{
    Histogram h(0.0, 10.0, 10);
    h.record(0.5);
    h.record(5.5);
    h.record(5.6);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 2u);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(HistogramTest, UnderflowOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.record(-1.0);
    h.record(10.0);
    h.record(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, MeanMinMax)
{
    Histogram h(0.0, 100.0, 10);
    h.record(10.0);
    h.record(30.0);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(IntervalSeriesTest, RejectsZeroInterval)
{
    EXPECT_THROW(IntervalSeries(0), FatalError);
}

TEST(IntervalSeriesTest, EmitsPerIntervalRatios)
{
    IntervalSeries series(10);
    for (int i = 0; i < 10; ++i)
        series.record(1, 1); // all hits
    for (int i = 0; i < 10; ++i)
        series.record(0, 1); // all misses
    ASSERT_EQ(series.points().size(), 2u);
    EXPECT_DOUBLE_EQ(series.points()[0], 1.0);
    EXPECT_DOUBLE_EQ(series.points()[1], 0.0);
}

TEST(IntervalSeriesTest, FinishFlushesPartial)
{
    IntervalSeries series(100);
    series.record(3, 6);
    series.finish();
    ASSERT_EQ(series.points().size(), 1u);
    EXPECT_DOUBLE_EQ(series.points()[0], 0.5);
}

TEST(IntervalSeriesTest, FinishOnEmptyAddsNothing)
{
    IntervalSeries series(10);
    series.finish();
    EXPECT_TRUE(series.points().empty());
}

TEST(SparklineTest, EmptyInput)
{
    EXPECT_EQ(sparkline({}), "");
}

TEST(SparklineTest, FlatSeriesRendersLow)
{
    const auto s = sparkline({1.0, 1.0, 1.0});
    EXPECT_EQ(s, "___");
}

TEST(SparklineTest, RisingSeriesEndsHigh)
{
    const auto s = sparkline({0.0, 0.5, 1.0});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.front(), '_');
    EXPECT_EQ(s.back(), '#');
}

} // namespace
} // namespace memories
