#include "common/bitops.hh"

#include <gtest/gtest.h>

namespace memories
{
namespace
{

TEST(BitopsTest, IsPowerOf2RejectsZero)
{
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(BitopsTest, IsPowerOf2AcceptsPowers)
{
    for (unsigned shift = 0; shift < 64; ++shift)
        EXPECT_TRUE(isPowerOf2(std::uint64_t{1} << shift)) << shift;
}

TEST(BitopsTest, IsPowerOf2RejectsComposites)
{
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(6));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_FALSE(isPowerOf2(1000));
    EXPECT_FALSE(isPowerOf2((std::uint64_t{1} << 40) + 1));
}

TEST(BitopsTest, Log2iExactPowers)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(128), 7u);
    EXPECT_EQ(log2i(std::uint64_t{1} << 40), 40u);
}

TEST(BitopsTest, Log2iFloorsNonPowers)
{
    EXPECT_EQ(log2i(3), 1u);
    EXPECT_EQ(log2i(127), 6u);
    EXPECT_EQ(log2i(129), 7u);
}

TEST(BitopsTest, Log2iZeroIsZero)
{
    EXPECT_EQ(log2i(0), 0u);
}

TEST(BitopsTest, CeilPowerOf2)
{
    EXPECT_EQ(ceilPowerOf2(0), 1u);
    EXPECT_EQ(ceilPowerOf2(1), 1u);
    EXPECT_EQ(ceilPowerOf2(2), 2u);
    EXPECT_EQ(ceilPowerOf2(3), 4u);
    EXPECT_EQ(ceilPowerOf2(1000), 1024u);
}

TEST(BitopsTest, AlignDownAndUp)
{
    EXPECT_EQ(alignDown(0x12345, 0x100), 0x12300u);
    EXPECT_EQ(alignUp(0x12345, 0x100), 0x12400u);
    EXPECT_EQ(alignDown(0x12300, 0x100), 0x12300u);
    EXPECT_EQ(alignUp(0x12300, 0x100), 0x12300u);
}

TEST(BitopsTest, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(~std::uint64_t{0}, 0, 64), ~std::uint64_t{0});
}

TEST(BitopsTest, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(8), 0xffu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
}

class BitopsRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitopsRoundTrip, AlignIsIdempotent)
{
    const std::uint64_t addr = GetParam();
    for (std::uint64_t align : {128ull, 4096ull, 65536ull}) {
        const auto down = alignDown(addr, align);
        EXPECT_EQ(alignDown(down, align), down);
        EXPECT_LE(down, addr);
        EXPECT_LT(addr - down, align);
    }
}

INSTANTIATE_TEST_SUITE_P(Addresses, BitopsRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           0xdeadbeefull,
                                           0x123456789abcull,
                                           ~std::uint64_t{0} - 65536));

} // namespace
} // namespace memories
