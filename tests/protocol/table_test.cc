#include "protocol/table.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::protocol
{
namespace
{

using bus::BusOp;
using bus::SnoopResponse;

TEST(ProtocolTableTest, DefaultIsIdentity)
{
    ProtocolTable t;
    for (auto state : {LineState::Invalid, LineState::Shared,
                       LineState::Modified}) {
        const auto &rq =
            t.requester(BusOp::Read, state, SnoopSummary::None);
        EXPECT_EQ(rq.next, state);
        EXPECT_FALSE(rq.allocate);
        const auto &sn = t.snooper(BusOp::Rwitm, state);
        EXPECT_EQ(sn.next, state);
        EXPECT_EQ(sn.response, SnoopResponse::None);
    }
}

TEST(ProtocolTableTest, SetAndGetRequester)
{
    ProtocolTable t;
    t.setRequester(BusOp::Read, LineState::Invalid, SnoopSummary::None,
                   RequesterEntry{LineState::Exclusive, true});
    const auto &e =
        t.requester(BusOp::Read, LineState::Invalid, SnoopSummary::None);
    EXPECT_EQ(e.next, LineState::Exclusive);
    EXPECT_TRUE(e.allocate);
    // Neighbouring entries untouched.
    EXPECT_EQ(t.requester(BusOp::Read, LineState::Invalid,
                          SnoopSummary::Shared).next,
              LineState::Invalid);
}

TEST(ProtocolTableTest, SetAndGetSnooper)
{
    ProtocolTable t;
    t.setSnooper(BusOp::Rwitm, LineState::Modified,
                 SnooperEntry{LineState::Invalid,
                              SnoopResponse::Modified});
    const auto &e = t.snooper(BusOp::Rwitm, LineState::Modified);
    EXPECT_EQ(e.next, LineState::Invalid);
    EXPECT_EQ(e.response, SnoopResponse::Modified);
}

TEST(ProtocolTableTest, SummarizeCollapsesRetry)
{
    EXPECT_EQ(summarize(SnoopResponse::None), SnoopSummary::None);
    EXPECT_EQ(summarize(SnoopResponse::Shared), SnoopSummary::Shared);
    EXPECT_EQ(summarize(SnoopResponse::Modified),
              SnoopSummary::Modified);
    EXPECT_EQ(summarize(SnoopResponse::Retry), SnoopSummary::None);
}

TEST(ProtocolTableTest, ValidateRejectsAllocateToInvalid)
{
    ProtocolTable t;
    t.setRequester(BusOp::Read, LineState::Invalid, SnoopSummary::None,
                   RequesterEntry{LineState::Invalid, true});
    EXPECT_THROW(t.validate(), memories::FatalError);
}

TEST(ProtocolTableTest, ValidateRejectsSnooperResurrection)
{
    ProtocolTable t;
    t.setSnooper(BusOp::Read, LineState::Invalid,
                 SnooperEntry{LineState::Shared, SnoopResponse::None});
    EXPECT_THROW(t.validate(), memories::FatalError);
}

TEST(ProtocolTableTest, ValidateAcceptsBuiltins)
{
    EXPECT_NO_THROW(makeMsiTable().validate());
    EXPECT_NO_THROW(makeMesiTable().validate());
    EXPECT_NO_THROW(makeMoesiTable().validate());
}

TEST(ProtocolTableTest, BuiltinLookupByName)
{
    EXPECT_EQ(makeBuiltinTable("MSI").name(), "MSI");
    EXPECT_EQ(makeBuiltinTable("MESI").name(), "MESI");
    EXPECT_EQ(makeBuiltinTable("MOESI").name(), "MOESI");
    EXPECT_THROW(makeBuiltinTable("MERSI"), memories::FatalError);
}

} // namespace
} // namespace memories::protocol
