#include "protocol/table.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace memories::protocol
{
namespace
{

using bus::BusOp;
using bus::SnoopResponse;

TEST(MapFileTest, ParsesMinimalTable)
{
    const auto t = parseMapText(
        "protocol TEST\n"
        "requester READ I none -> E alloc\n"
        "snooper READ M -> S modified\n");
    EXPECT_EQ(t.name(), "TEST");
    EXPECT_EQ(t.requester(BusOp::Read, LineState::Invalid,
                          SnoopSummary::None).next,
              LineState::Exclusive);
    EXPECT_TRUE(t.requester(BusOp::Read, LineState::Invalid,
                            SnoopSummary::None).allocate);
    EXPECT_EQ(t.snooper(BusOp::Read, LineState::Modified).response,
              SnoopResponse::Modified);
}

TEST(MapFileTest, WildcardsExpand)
{
    const auto t = parseMapText(
        "requester RWITM * * -> M alloc\n");
    for (auto st : {LineState::Invalid, LineState::Shared,
                    LineState::Modified}) {
        for (auto sn : {SnoopSummary::None, SnoopSummary::Shared,
                        SnoopSummary::Modified}) {
            EXPECT_EQ(t.requester(BusOp::Rwitm, st, sn).next,
                      LineState::Modified);
        }
    }
}

TEST(MapFileTest, LaterLinesOverrideEarlier)
{
    const auto t = parseMapText(
        "requester READ * * -> S alloc\n"
        "requester READ I none -> E alloc\n");
    EXPECT_EQ(t.requester(BusOp::Read, LineState::Invalid,
                          SnoopSummary::None).next,
              LineState::Exclusive);
    EXPECT_EQ(t.requester(BusOp::Read, LineState::Invalid,
                          SnoopSummary::Shared).next,
              LineState::Shared);
}

TEST(MapFileTest, CommentsAndBlanksIgnored)
{
    const auto t = parseMapText(
        "# a comment line\n"
        "\n"
        "requester READ I none -> S alloc  # trailing comment\n");
    EXPECT_EQ(t.requester(BusOp::Read, LineState::Invalid,
                          SnoopSummary::None).next,
              LineState::Shared);
}

TEST(MapFileTest, SyntaxErrorsNameTheLine)
{
    try {
        parseMapText("requester READ I none E alloc\n");
        FAIL() << "expected FatalError";
    } catch (const memories::FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 1"),
                  std::string::npos);
    }
}

TEST(MapFileTest, UnknownDirectiveIsFatal)
{
    EXPECT_THROW(parseMapText("observer READ I -> S none\n"),
                 memories::FatalError);
}

TEST(MapFileTest, UnknownOpIsFatal)
{
    EXPECT_THROW(parseMapText("requester LOAD I none -> S alloc\n"),
                 memories::FatalError);
}

TEST(MapFileTest, UnknownFlagIsFatal)
{
    EXPECT_THROW(
        parseMapText("requester READ I none -> S prefetch\n"),
        memories::FatalError);
}

TEST(MapFileTest, ParsedTablesAreValidated)
{
    // Allocating into Invalid is caught at parse time.
    EXPECT_THROW(parseMapText("requester READ I none -> I alloc\n"),
                 memories::FatalError);
}

TEST(MapFileTest, BuiltinsRoundTripThroughMapText)
{
    for (const auto &original :
         {makeMsiTable(), makeMesiTable(), makeMoesiTable()}) {
        const auto reparsed = parseMapText(original.toMapText());
        EXPECT_EQ(reparsed.name(), original.name());
        for (std::size_t op = 0; op < bus::numBusOps; ++op) {
            const auto bop = static_cast<BusOp>(op);
            if (!bus::isMemoryOp(bop))
                continue;
            for (std::size_t s = 0; s < numLineStates; ++s) {
                const auto st = static_cast<LineState>(s);
                const auto &sn_a = original.snooper(bop, st);
                const auto &sn_b = reparsed.snooper(bop, st);
                EXPECT_EQ(sn_a.next, sn_b.next);
                EXPECT_EQ(sn_a.response, sn_b.response);
                for (std::size_t r = 0; r < numSnoopSummaries; ++r) {
                    const auto sum = static_cast<SnoopSummary>(r);
                    const auto &rq_a = original.requester(bop, st, sum);
                    const auto &rq_b = reparsed.requester(bop, st, sum);
                    EXPECT_EQ(rq_a.next, rq_b.next);
                    EXPECT_EQ(rq_a.allocate, rq_b.allocate);
                }
            }
        }
    }
}

TEST(MapFileTest, LoadFromDisk)
{
    const std::string path = ::testing::TempDir() + "proto.map";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const std::string text =
            "protocol DISK\nrequester READ I none -> E alloc\n";
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    const auto t = loadMapFile(path);
    EXPECT_EQ(t.name(), "DISK");
    std::remove(path.c_str());
}

TEST(MapFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(loadMapFile("/nonexistent/proto.map"),
                 memories::FatalError);
}

} // namespace
} // namespace memories::protocol
