#include "protocol/table.hh"

#include <gtest/gtest.h>

namespace memories::protocol
{
namespace
{

using bus::BusOp;
using bus::SnoopResponse;

constexpr LineState I = LineState::Invalid;
constexpr LineState S = LineState::Shared;
constexpr LineState E = LineState::Exclusive;
constexpr LineState M = LineState::Modified;
constexpr LineState O = LineState::Owned;

TEST(MesiTest, ReadMissAloneFillsExclusive)
{
    const auto t = makeMesiTable();
    const auto &e = t.requester(BusOp::Read, I, SnoopSummary::None);
    EXPECT_EQ(e.next, E);
    EXPECT_TRUE(e.allocate);
}

TEST(MesiTest, ReadMissSharedFillsShared)
{
    const auto t = makeMesiTable();
    EXPECT_EQ(t.requester(BusOp::Read, I, SnoopSummary::Shared).next, S);
    EXPECT_EQ(t.requester(BusOp::Read, I, SnoopSummary::Modified).next,
              S);
}

TEST(MesiTest, ReadHitKeepsState)
{
    const auto t = makeMesiTable();
    for (auto st : {S, E, M}) {
        const auto &e = t.requester(BusOp::Read, st, SnoopSummary::None);
        EXPECT_EQ(e.next, st);
    }
}

TEST(MesiTest, RwitmAlwaysEndsModified)
{
    const auto t = makeMesiTable();
    for (auto st : {I, S, E, M}) {
        for (auto sn : {SnoopSummary::None, SnoopSummary::Shared,
                        SnoopSummary::Modified}) {
            EXPECT_EQ(t.requester(BusOp::Rwitm, st, sn).next, M);
        }
    }
}

TEST(MesiTest, DClaimUpgradesSharedToModified)
{
    const auto t = makeMesiTable();
    EXPECT_EQ(t.requester(BusOp::DClaim, S, SnoopSummary::None).next, M);
}

TEST(MesiTest, SnoopReadDowngradesModifiedToShared)
{
    const auto t = makeMesiTable();
    const auto &e = t.snooper(BusOp::Read, M);
    EXPECT_EQ(e.next, S);
    EXPECT_EQ(e.response, SnoopResponse::Modified);
}

TEST(MesiTest, SnoopReadOnExclusiveShares)
{
    const auto t = makeMesiTable();
    const auto &e = t.snooper(BusOp::Read, E);
    EXPECT_EQ(e.next, S);
    EXPECT_EQ(e.response, SnoopResponse::Shared);
}

TEST(MesiTest, SnoopRwitmInvalidatesEverything)
{
    const auto t = makeMesiTable();
    for (auto st : {S, E, M})
        EXPECT_EQ(t.snooper(BusOp::Rwitm, st).next, I);
    EXPECT_EQ(t.snooper(BusOp::Rwitm, M).response,
              SnoopResponse::Modified);
    EXPECT_EQ(t.snooper(BusOp::Rwitm, S).response,
              SnoopResponse::Shared);
}

TEST(MesiTest, WritebackAbsorbsDirtyLine)
{
    const auto t = makeMesiTable();
    const auto &e = t.requester(BusOp::WriteBack, I, SnoopSummary::None);
    EXPECT_EQ(e.next, M);
    EXPECT_TRUE(e.allocate);
}

TEST(MesiTest, FlushInvalidatesLocally)
{
    const auto t = makeMesiTable();
    for (auto st : {S, E, M})
        EXPECT_EQ(t.requester(BusOp::Flush, st, SnoopSummary::None).next,
                  I);
}

TEST(MesiTest, CleanDowngradesDirty)
{
    const auto t = makeMesiTable();
    EXPECT_EQ(t.requester(BusOp::Clean, M, SnoopSummary::None).next, S);
    EXPECT_EQ(t.snooper(BusOp::Clean, M).next, S);
}

TEST(MsiTest, ReadMissAloneFillsShared)
{
    const auto t = makeMsiTable();
    EXPECT_EQ(t.requester(BusOp::Read, I, SnoopSummary::None).next, S);
}

TEST(MsiTest, SnoopReadOnModifiedGoesShared)
{
    const auto t = makeMsiTable();
    EXPECT_EQ(t.snooper(BusOp::Read, M).next, S);
}

TEST(MoesiTest, SnoopReadOnModifiedGoesOwned)
{
    const auto t = makeMoesiTable();
    const auto &e = t.snooper(BusOp::Read, M);
    EXPECT_EQ(e.next, O);
    EXPECT_EQ(e.response, SnoopResponse::Modified);
}

TEST(MoesiTest, OwnedKeepsSupplyingData)
{
    const auto t = makeMoesiTable();
    const auto &e = t.snooper(BusOp::Read, O);
    EXPECT_EQ(e.next, O);
    EXPECT_EQ(e.response, SnoopResponse::Modified);
}

TEST(MoesiTest, SnoopRwitmInvalidatesOwned)
{
    const auto t = makeMoesiTable();
    const auto &e = t.snooper(BusOp::Rwitm, O);
    EXPECT_EQ(e.next, I);
    EXPECT_EQ(e.response, SnoopResponse::Modified);
}

TEST(BuiltinInvariantsTest, SnooperNeverResurrectsInvalid)
{
    for (const auto &t :
         {makeMsiTable(), makeMesiTable(), makeMoesiTable()}) {
        for (std::size_t op = 0; op < bus::numBusOps; ++op) {
            const auto &e =
                t.snooper(static_cast<BusOp>(op), I);
            EXPECT_EQ(e.next, I);
            EXPECT_EQ(e.response, SnoopResponse::None);
        }
    }
}

TEST(BuiltinInvariantsTest, InvalidatingOpsLeaveNoSharers)
{
    for (const auto &t :
         {makeMsiTable(), makeMesiTable(), makeMoesiTable()}) {
        for (auto op : {BusOp::Rwitm, BusOp::DClaim, BusOp::WriteKill,
                        BusOp::Kill, BusOp::Flush}) {
            for (auto st : {S, E, M, O})
                EXPECT_EQ(t.snooper(op, st).next, I)
                    << t.name() << " " << bus::busOpName(op);
        }
    }
}

} // namespace
} // namespace memories::protocol
