#include "protocol/state.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memories::protocol
{
namespace
{

TEST(LineStateTest, InvalidIsZero)
{
    // The tag store treats raw state 0 as "frame empty"; Invalid must
    // stay pinned to 0.
    EXPECT_EQ(static_cast<int>(LineState::Invalid), 0);
}

TEST(LineStateTest, NamesRoundTrip)
{
    for (std::size_t i = 0; i < numLineStates; ++i) {
        const auto s = static_cast<LineState>(i);
        EXPECT_EQ(lineStateFromName(lineStateName(s)), s);
    }
}

TEST(LineStateTest, UnknownNameIsFatal)
{
    EXPECT_THROW(lineStateFromName("X"), memories::FatalError);
    EXPECT_THROW(lineStateFromName(""), memories::FatalError);
}

TEST(LineStateTest, DirtyStates)
{
    EXPECT_TRUE(isDirtyState(LineState::Modified));
    EXPECT_TRUE(isDirtyState(LineState::Owned));
    EXPECT_FALSE(isDirtyState(LineState::Shared));
    EXPECT_FALSE(isDirtyState(LineState::Exclusive));
    EXPECT_FALSE(isDirtyState(LineState::Invalid));
}

TEST(LineStateTest, ValidStates)
{
    EXPECT_FALSE(isValidState(LineState::Invalid));
    EXPECT_TRUE(isValidState(LineState::Shared));
    EXPECT_TRUE(isValidState(LineState::Exclusive));
    EXPECT_TRUE(isValidState(LineState::Modified));
    EXPECT_TRUE(isValidState(LineState::Owned));
}

} // namespace
} // namespace memories::protocol
